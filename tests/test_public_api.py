"""Public API surface: everything advertised in ``__all__`` exists and is
documented."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.autograd",
    "repro.nn",
    "repro.optim",
    "repro.models",
    "repro.data",
    "repro.training",
    "repro.pruning",
    "repro.analysis",
    "repro.experiments",
    "repro.parallel",
    "repro.queue",
    "repro.observe",
    "repro.serve",
    "repro.utils",
]


class TestApiSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_symbols_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), package
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings(self, package):
        mod = importlib.import_module(package)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, package

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("package", PACKAGES[1:])
    def test_public_callables_have_docstrings(self, package):
        mod = importlib.import_module(package)
        undocumented = [
            name
            for name in mod.__all__
            if callable(getattr(mod, name)) and not getattr(mod, name).__doc__
        ]
        assert not undocumented, f"{package}: {undocumented}"
