"""Zoo fault tolerance: safe corrupt-archive unlinking, degraded builds
with dependency skips, manifest-driven resume, and chaos contention."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.experiments import SMOKE, ZooSpec
from repro.experiments import zoo
from repro.pruning import PruneRun
from repro.resilience import FailureManifest, chaos, resume_zoo
from repro.resilience.failures import KIND_DEPENDENCY, KIND_EXCEPTION
from repro.utils.serialization import save_state

MICRO = SMOKE.with_(
    n_train=48, n_test=24, image_size=8, num_classes=4, base_width=2,
    parent_epochs=1, retrain_epochs=0, target_ratios=(0.4,), n_repetitions=1,
)

SPEC = ZooSpec("cifar", "resnet20", "wt", 0)


@pytest.fixture(autouse=True)
def chaos_isolation(monkeypatch):
    """Each test controls its own fault plan: clear any ambient
    ``REPRO_CHAOS`` (the nightly chaos job exports one) and never leak
    a configured plan to the next test."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.OWNER_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()


class TestUnlinkUnderLockOnly:
    """Regression: the lock-free fast path must never unlink a corrupt
    archive — the corrupt read races a concurrent publisher's atomic
    ``os.replace``, so the unlink can destroy the *fresh* archive."""

    def test_load_cached_state_default_keeps_corrupt_file(self, tmp_path):
        path = tmp_path / "artifact.npz"
        path.write_bytes(b"garbage, not an npz archive")
        assert zoo._load_cached_state(path) is None
        assert path.exists()  # fast path: miss reported, file untouched

    def test_load_cached_state_unlinks_when_told(self, tmp_path):
        path = tmp_path / "artifact.npz"
        path.write_bytes(b"garbage, not an npz archive")
        assert zoo._load_cached_state(path, unlink_corrupt=True) is None
        assert not path.exists()  # lock-held path may clear the way

    def test_load_cached_state_valid_archive_survives_both_modes(self, tmp_path):
        import numpy as np

        path = tmp_path / "artifact.npz"
        save_state(path, {"w": np.arange(3.0)}, {"spec": "x"})
        assert zoo._load_cached_state(path, unlink_corrupt=True) is not None
        assert path.exists()

    def test_load_cached_run_default_keeps_corrupt_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.get_prune_run(SPEC, MICRO)
        path = zoo.artifact_path(SPEC, MICRO)
        path.write_bytes(path.read_bytes()[:64])  # truncate: corrupt
        assert zoo._load_cached_run(path) is None
        assert path.exists()
        assert zoo._load_cached_run(path, unlink_corrupt=True) is None
        assert not path.exists()


class TestDegradedBuild:
    def test_dead_parent_skips_dependants_and_persists_manifest(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # Kill every parent cell deterministically; prune cells must be
        # skipped as dependency failures, not retrained inline.
        chaos.configure(exception_rate=1.0, seed=5, only_keys=("-parent-",))
        specs = [ZooSpec("cifar", "resnet20", m, 0) for m in ("wt", "ft")]
        timing = zoo.build_zoo(specs, MICRO, jobs=1, on_error="collect", max_retries=0)
        chaos.disable()

        assert timing.degraded
        assert "FAILED" in timing.summary()
        by_kind = {}
        for f in timing.failures:
            by_kind.setdefault(f.kind, []).append(f)
        assert len(by_kind[KIND_EXCEPTION]) == 1  # the parent cell
        assert by_kind[KIND_EXCEPTION][0].error_type == "ChaosError"
        assert len(by_kind[KIND_DEPENDENCY]) == 2  # both prune methods
        for f in by_kind[KIND_DEPENDENCY]:
            assert "parent cell" in f.message and f.attempts == 0
            assert f.payload["kind"] == "zoo"
        # No artifact was trained, and no cell pretended to succeed.
        assert not list(tmp_path.glob("*.npz"))
        assert timing.cells == []

        manifest = FailureManifest.load(timing.manifest_path)
        assert manifest.label == "build_zoo"
        assert len(manifest) == 3
        assert manifest.total_cells == 3
        assert manifest.scale_digest == MICRO.digest()

    def test_resume_recomputes_exactly_the_failed_cells(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        chaos.configure(exception_rate=1.0, seed=5, only_keys=("-ft-",))
        specs = [ZooSpec("cifar", "resnet20", m, 0) for m in ("wt", "ft")]
        degraded = zoo.build_zoo(
            specs, MICRO, jobs=1, on_error="collect", max_retries=0
        )
        chaos.disable()

        # Parent and wt survived and were published; only ft died.
        assert [f.key for f in degraded.failures] == [
            ZooSpec("cifar", "resnet20", "ft", 0).key(MICRO)
        ]
        assert len(list(tmp_path.glob("*.npz"))) == 2

        trainings = []
        real_prune = zoo._train_prune_run
        monkeypatch.setattr(
            zoo,
            "_train_prune_run",
            lambda spec, scale: trainings.append(spec) or real_prune(spec, scale),
        )
        resumed = resume_zoo(degraded.manifest_path, MICRO, jobs=1)
        assert not resumed.degraded
        # Only the ft cell was retrained; the parent probe was a cache hit.
        assert [s.method_name for s in trainings] == ["ft"]
        parent_cell, ft_cell = resumed.cells
        assert parent_cell.cached and not ft_cell.cached
        assert len(list(tmp_path.glob("*.npz"))) == 3
        PruneRun.load(zoo.artifact_path(ZooSpec("cifar", "resnet20", "ft", 0), MICRO))

    def test_resume_rejects_scale_mismatch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        chaos.configure(exception_rate=1.0, seed=5, only_keys=("-ft-",))
        degraded = zoo.build_zoo(
            [ZooSpec("cifar", "resnet20", "ft", 0)], MICRO, jobs=1,
            on_error="collect", max_retries=0,
        )
        chaos.disable()
        other_scale = MICRO.with_(n_train=64)
        with pytest.raises(ValueError, match="different cache namespace"):
            resume_zoo(degraded.manifest_path, other_scale, jobs=1)

    def test_manifest_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        chaos.configure(exception_rate=1.0, seed=5, only_keys=("-ft-",))
        elsewhere = tmp_path / "manifests"
        elsewhere.mkdir()
        timing = zoo.build_zoo(
            [ZooSpec("cifar", "resnet20", "ft", 0)], MICRO, jobs=1,
            on_error="collect", max_retries=0, manifest_dir=elsewhere,
        )
        chaos.disable()
        assert timing.manifest_path.startswith(str(elsewhere))


def _append_line(path, line: str) -> None:
    """O_APPEND write: atomic for short lines, safe across processes."""
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        os.write(fd, (line + "\n").encode())
    finally:
        os.close(fd)


def _contention_worker(barrier, log_path):
    """Race the siblings onto one truncated prune artifact."""
    barrier.wait(timeout=60)
    run = zoo.get_prune_run(SPEC, MICRO)
    _append_line(log_path, f"ok:{run.parent_test_error}")


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="contention test instruments the zoo via fork-inherited monkeypatches",
)
class TestChaosContention:
    def test_racing_builders_converge_on_one_retrain(self, tmp_path, monkeypatch):
        """Satellite: N concurrent builders race one truncated artifact
        while chaos holds every acquired lock; they must converge to
        exactly one retraining run and one valid archive."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        zoo.get_prune_run(SPEC, MICRO)  # valid build, then tear it
        path = zoo.artifact_path(SPEC, MICRO)
        chaos.tear_file(path)

        train_log = tmp_path / "train.log"
        real_parent, real_prune = zoo._train_parent, zoo._train_prune_run

        def counting_parent(spec, scale):
            _append_line(train_log, f"parent:{spec.key(scale)}")
            return real_parent(spec, scale)

        def counting_prune(spec, scale):
            _append_line(train_log, f"prune:{spec.key(scale)}")
            return real_prune(spec, scale)

        monkeypatch.setattr(zoo, "_train_parent", counting_parent)
        monkeypatch.setattr(zoo, "_train_prune_run", counting_prune)

        # Lock starvation widens the window between the corrupt fast-path
        # read and the under-lock re-check; forked children inherit the
        # exported REPRO_CHAOS plan with fresh per-key counters.
        chaos.configure(lock_hold_rate=1.0, lock_hold_seconds=0.1, seed=3)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        procs = [
            ctx.Process(target=_contention_worker, args=(barrier, train_log))
            for _ in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=180)
            assert p.exitcode == 0
        chaos.disable()

        lines = train_log.read_text().splitlines()
        # The torn prune artifact was retrained exactly once; the parent
        # (still valid on disk) was never retrained.
        assert len([l for l in lines if l.startswith("prune:")]) == 1
        assert len([l for l in lines if l.startswith("parent:")]) == 0
        # All racers observed one identical, valid archive.
        oks = [l for l in lines if l.startswith("ok:")]
        assert len(oks) == 3 and len(set(oks)) == 1
        PruneRun.load(path)
