"""Experiment scale config and the cached model zoo."""

import numpy as np
import pytest

from repro.experiments import SMOKE, ExperimentScale, ZooSpec
from repro.experiments import zoo
from repro.experiments.memo import memoize


class TestScale:
    def test_digest_stable(self):
        assert ExperimentScale().digest() == ExperimentScale().digest()

    def test_digest_changes_with_training_fields(self):
        base = ExperimentScale()
        assert base.digest() != base.with_(n_train=base.n_train + 1).digest()
        assert base.digest() != base.with_(lr=base.lr * 2).digest()
        assert base.digest() != base.with_(target_ratios=(0.5,)).digest()

    def test_digest_ignores_analysis_fields(self):
        """Tuning the analysis protocol must never invalidate trained zoo
        artifacts."""
        base = ExperimentScale()
        assert base.digest() == base.with_(delta=0.01).digest()
        assert base.digest() == base.with_(n_repetitions=1).digest()
        assert base.digest() == base.with_(noise_levels=(0.0, 0.9)).digest()
        assert base.digest() == base.with_(backselect_images=1).digest()

    def test_with_returns_new(self):
        base = ExperimentScale()
        other = base.with_(n_test=7)
        assert other.n_test == 7
        assert base.n_test != 7

    def test_seed_for_distinct_reps(self):
        s = ExperimentScale()
        assert s.seed_for(0) != s.seed_for(1)

    def test_smoke_is_frozen(self):
        with pytest.raises(Exception):
            SMOKE.n_train = 1  # type: ignore[misc]

    def test_presets_valid(self):
        from repro.experiments import FULL

        for preset in (SMOKE, FULL):
            assert 0 < min(preset.target_ratios) <= max(preset.target_ratios) < 1
            assert list(preset.target_ratios) == sorted(preset.target_ratios)
            assert preset.n_repetitions >= 1
            assert 0 < preset.delta < 0.1
            assert preset.noise_levels[0] == 0.0
        assert FULL.n_train > SMOKE.n_train
        assert FULL.digest() != SMOKE.digest()


class TestZooSpec:
    def test_key_includes_all_identity(self):
        scale = ExperimentScale()
        a = ZooSpec("cifar", "resnet20", "wt", 0, False).key(scale)
        assert ZooSpec("cifar", "resnet20", "wt", 1, False).key(scale) != a
        assert ZooSpec("cifar", "resnet20", "ft", 0, False).key(scale) != a
        assert ZooSpec("cifar", "resnet20", "wt", 0, True).key(scale) != a
        assert ZooSpec("imagenet", "resnet20", "wt", 0, False).key(scale) != a

    def test_parent_key_method_agnostic(self):
        scale = ExperimentScale()
        assert "parent" in ZooSpec(method_name=None).key(scale)

    def test_method_name_canonicalized_at_construction(self):
        """Any accepted spec spelling shares one artifact cache key."""
        scale = ExperimentScale()
        a = ZooSpec("cifar", "resnet20", "WT", 0, False)
        b = ZooSpec("cifar", "resnet20", "wt(steps=1)", 0, False)
        assert a.method_name == b.method_name == "wt"
        assert a.key(scale) == b.key(scale)
        assert a == b  # frozen-dataclass equality follows canonicalization

    def test_distinct_hyperparams_distinct_keys(self):
        scale = ExperimentScale()
        a = ZooSpec("cifar", "resnet20", "lowrank", 0, False)
        b = ZooSpec("cifar", "resnet20", "lowrank(rank_frac=0.25)", 0, False)
        assert a.key(scale) != b.key(scale)

    def test_unknown_method_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown pruning method"):
            ZooSpec("cifar", "resnet20", "frobnicate", 0, False)


class TestSuites:
    def test_make_suite_tasks(self):
        scale = ExperimentScale(n_train=32, n_test=16)
        cifar = zoo.make_suite("cifar", scale)
        imagenet = zoo.make_suite("imagenet", scale)
        voc = zoo.make_suite("voc", scale)
        assert cifar.num_classes == scale.num_classes
        assert imagenet.num_classes == 2 * scale.num_classes
        assert voc.is_segmentation

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError, match="unknown task"):
            zoo.make_suite("mnist", ExperimentScale())

    def test_model_repetition_changes_init(self):
        scale = ExperimentScale(n_train=32, n_test=16)
        suite = zoo.make_suite("cifar", scale)
        a = zoo.make_model(ZooSpec(repetition=0), suite, scale)
        b = zoo.make_model(ZooSpec(repetition=1), suite, scale)
        pa = dict(a.named_parameters())["stem.weight"].data
        pb = dict(b.named_parameters())["stem.weight"].data
        assert not np.allclose(pa, pb)


class TestCaching:
    def test_parent_state_cached_on_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        scale = ExperimentScale(
            n_train=48, n_test=24, parent_epochs=1, retrain_epochs=1, base_width=2,
            target_ratios=(0.5,), n_repetitions=1,
        )
        spec = ZooSpec("cifar", "resnet20", None, 0)
        state1 = zoo.get_parent_state(spec, scale)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        state2 = zoo.get_parent_state(spec, scale)
        for key in state1:
            np.testing.assert_array_equal(state1[key], state2[key])

    def test_prune_run_requires_method(self):
        with pytest.raises(ValueError, match="method_name"):
            zoo.get_prune_run(ZooSpec(method_name=None), ExperimentScale())

    def test_prune_run_cached_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        scale = ExperimentScale(
            n_train=48, n_test=24, parent_epochs=1, retrain_epochs=0, base_width=2,
            target_ratios=(0.4,), n_repetitions=1,
        )
        spec = ZooSpec("cifar", "resnet20", "wt", 0)
        run1 = zoo.get_prune_run(spec, scale)
        run2 = zoo.get_prune_run(spec, scale)
        np.testing.assert_allclose(run1.ratios, run2.ratios)
        assert run1.meta["model"] == "resnet20"

    def test_clear_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "x.npz").write_bytes(b"")
        zoo.clear_cache()
        assert not list(tmp_path.glob("*.npz"))


class TestMemoize:
    def test_caches_by_args(self):
        calls = []

        @memoize
        def fn(a, b=1):
            calls.append((a, b))
            return a + b

        assert fn(1) == 2
        assert fn(1) == 2
        assert fn(1, b=2) == 3
        assert len(calls) == 2

    def test_list_args_normalized(self):
        calls = []

        @memoize
        def fn(items):
            calls.append(1)
            return sum(items)

        assert fn([1, 2]) == 3
        assert fn([1, 2]) == 3
        assert len(calls) == 1

    def test_cache_clear(self):
        calls = []

        @memoize
        def fn():
            calls.append(1)
            return 0

        fn()
        fn.cache_clear()
        fn()
        assert len(calls) == 2

    def test_nested_lists_normalized(self):
        """Nested containers must hash to the same key as their tuple form."""
        calls = []

        @memoize
        def fn(groups):
            calls.append(1)
            return sum(x for g in groups for x in g)

        assert fn([[1, 2], [3]]) == 6
        assert fn(([1, 2], (3,))) == 6
        assert fn((((1, 2)), [3])) == 6
        assert len(calls) == 1

    def test_dict_args_normalized(self):
        calls = []

        @memoize
        def fn(config):
            calls.append(1)
            return len(config)

        assert fn({"a": [1, 2], "b": {"c": 3}}) == 2
        assert fn({"b": {"c": 3}, "a": (1, 2)}) == 2  # key order irrelevant
        assert len(calls) == 1
        assert fn({"a": [1, 2], "b": {"c": 4}}) == 2  # nested value differs
        assert len(calls) == 2

    def test_set_args_normalized(self):
        calls = []

        @memoize
        def fn(names):
            calls.append(1)
            return len(names)

        assert fn({"x", "y"}) == 2
        assert fn(frozenset(("y", "x"))) == 2
        assert len(calls) == 1

    def test_dict_and_items_tuple_do_not_collide(self):
        calls = []

        @memoize
        def fn(value):
            calls.append(1)
            return 0

        fn({"a": 1})
        fn((("a", 1),))
        assert len(calls) == 2

    def test_ignore_excludes_kwarg_from_key(self):
        calls = []

        @memoize(ignore=("jobs",))
        def fn(a, jobs=None):
            calls.append(jobs)
            return a

        assert fn(1, jobs=1) == 1
        assert fn(1, jobs=4) == 1  # cache hit despite different jobs
        assert calls == [1]
        assert fn(2, jobs=4) == 2
        assert len(calls) == 2

    def test_normalize_canonicalizes_before_keying(self):
        from repro.pruning import canonical_spec

        calls = []

        @memoize(normalize={"method_name": canonical_spec})
        def fn(task, method_name):
            calls.append(method_name)
            return method_name

        assert fn("cifar", "WT") == "wt"  # body sees the canonical form
        assert fn("cifar", "wt(steps=1)") == "wt"  # cache hit, same entry
        assert fn("cifar", method_name="wt") == "wt"  # kwarg spelling too
        assert calls == ["wt"]
        assert fn("cifar", "wt(steps=2)") == "wt(steps=2)"
        assert len(calls) == 2
