"""End-to-end micro-scale runs of every experiment entry point.

These use a deliberately tiny scale (1-epoch training, 2 checkpoints, one
repetition) — they verify plumbing and result structure, not science; the
benchmarks exercise the calibrated scale.
"""

import numpy as np
import pytest

from repro import experiments as ex


@pytest.fixture(scope="module")
def micro(tmp_path_factory):
    """Micro scale + isolated cache shared by this module."""
    import os

    cache = tmp_path_factory.mktemp("zoo")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    scale = ex.SMOKE.with_(
        n_train=96,
        n_test=48,
        image_size=8,
        num_classes=4,
        base_width=2,
        parent_epochs=1,
        retrain_epochs=1,
        target_ratios=(0.4, 0.8),
        n_repetitions=1,
        noise_levels=(0.0, 0.3),
        noise_trials=1,
        noise_images=16,
        backselect_images=1,
        backselect_pixels_per_step=32,
    )
    yield scale
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


CORRUPTIONS = ["gaussian_noise", "jpeg"]


class TestPruneCurves:
    def test_result_structure(self, micro):
        res = ex.prune_curve_experiment("cifar", "resnet20", "wt", micro)
        assert res.errors.shape == (1, 2)
        assert res.flop_reductions.shape == (1, 2)
        assert (np.diff(res.flop_reductions[0]) > 0).all()
        assert res.accuracy_drop.shape == (2,)

    def test_summary_row(self, micro):
        res = ex.prune_curve_experiment("cifar", "resnet20", "wt", micro)
        row = ex.prune_summary_row(res, delta=1.0)  # everything commensurate
        assert row.prune_ratio == pytest.approx(res.ratios.max())
        assert row.commensurate

    def test_summary_row_fallback(self, micro):
        res = ex.prune_curve_experiment("cifar", "resnet20", "wt", micro)
        row = ex.prune_summary_row(res, delta=-1.0)  # nothing commensurate
        assert not row.commensurate


class TestNoiseStudies:
    def test_noise_potential(self, micro):
        res = ex.noise_potential_experiment("cifar", "resnet20", "wt", micro)
        assert res.potentials.shape == (1, 2)
        assert res.mean.shape == (2,)
        assert (res.potentials >= 0).all() and (res.potentials <= 1).all()

    def test_noise_similarity(self, micro):
        res = ex.noise_similarity_experiment("cifar", "resnet20", "wt", micro)
        assert res.match_rates.shape == (2, 2)  # (ckpts, levels)
        assert res.separate_match_rates.shape == (2,)
        assert (res.match_rates <= 1).all() and (res.match_rates >= 0).all()
        assert (res.l2_distances >= 0).all()


class TestBackselect:
    def test_heatmap(self, micro):
        res = ex.backselect_heatmap_experiment(
            "cifar", "resnet20", "wt", micro, n_pruned=2
        )
        m = len(res.labels)
        assert res.heatmap.shape == (m, m)
        assert res.labels[0].startswith("parent")
        assert res.labels[-1] == "separate"
        assert (res.heatmap >= 0).all() and (res.heatmap <= 1).all()


class TestCorruptionStudies:
    def test_potential(self, micro):
        res = ex.corruption_potential_experiment(
            "cifar", "resnet20", "wt", micro, corruptions=CORRUPTIONS
        )
        assert res.distributions == ["nominal", "shifted", *CORRUPTIONS]
        assert res.potentials.shape == (1, 4)
        assert res.potential_of("jpeg").shape == (1,)
        assert len(res.curves["nominal"]) == 1

    def test_excess_error(self, micro):
        res = ex.corruption_excess_error_experiment(
            "cifar", "resnet20", "wt", micro, corruptions=CORRUPTIONS
        )
        assert res.differences.shape == (1, 2)
        lo, hi = res.slope_ci
        assert lo <= hi

    def test_delta_sweep_monotone_in_delta(self, micro):
        res = ex.delta_sweep_experiment(
            "cifar", "resnet20", "wt", micro, deltas=(0.0, 0.5), corruptions=["jpeg"]
        )
        mean = res.mean()
        assert mean.shape == (2, 3)
        assert (mean[1] >= mean[0]).all()  # larger delta never reduces potential


class TestSeveritySweep:
    def test_structure_and_range(self, micro):
        from repro.experiments.corruption_study import severity_sweep_experiment

        res = severity_sweep_experiment(
            "cifar", "resnet20", "wt", micro, corruption="gaussian_noise",
            severities=(1, 5),
        )
        assert res.potentials.shape == (1, 2)
        assert (res.potentials >= 0).all() and (res.potentials <= 1).all()
        assert res.corruption == "gaussian_noise"


class TestRobustStudies:
    def test_robust_potential_split(self, micro):
        res = ex.robust_potential_experiment("cifar", "resnet20", "wt", micro)
        train_m = res.train_dist_potentials()
        test_m = res.test_dist_potentials()
        assert train_m.shape[1] == len(res.protocol.train_corruptions) + 1
        assert test_m.shape[1] == len(res.protocol.test_corruptions) + 1

    def test_robust_excess_error(self, micro):
        res = ex.robust_excess_error_experiment("cifar", "resnet20", "wt", micro)
        assert res.differences.shape[1] == 2


class TestTables:
    def test_pr_fr_table(self, micro):
        rows, text = ex.pr_fr_table("cifar", ["resnet20"], ["wt"], micro)
        assert len(rows) == 1
        assert "PR (%)" in text and "resnet20" in text

    def test_overparam_table_nominal(self, micro):
        rows, text = ex.overparam_table("cifar", ["resnet20"], ["wt"], micro)
        assert len(rows) == 1
        assert rows[0].train_dist.average_mean >= rows[0].train_dist.minimum_mean - 1e-9
        assert "nominal training" in text

    def test_overparam_table_robust(self, micro):
        rows, text = ex.overparam_table("cifar", ["resnet20"], ["wt"], micro, robust=True)
        assert "robust training" in text


class TestSegmentationTask:
    def test_voc_prune_curve(self, micro):
        res = ex.prune_curve_experiment("voc", "deeplab_small", "wt", micro)
        assert res.errors.shape == (1, 2)
        assert np.isfinite(res.errors).all()
