"""The ``python -m repro`` command-line interface."""

import os

import pytest

from repro.__main__ import main


@pytest.fixture
def micro_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestCLI:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    @pytest.fixture
    def tiny_cli(self, micro_env, monkeypatch):
        """Point the CLI at a micro scale so commands run in seconds."""
        import repro.experiments as ex
        import repro.__main__ as cli

        tiny = ex.SMOKE.with_(
            n_train=64, n_test=32, image_size=8, num_classes=4, base_width=2,
            parent_epochs=1, retrain_epochs=0, target_ratios=(0.5,), n_repetitions=1,
        )
        monkeypatch.setattr(cli, "_scale", lambda args: tiny)
        return tiny

    def test_curve_command_micro(self, tiny_cli, capsys):
        assert main(["curve", "--model", "resnet20", "--method", "wt"]) == 0
        out = capsys.readouterr().out
        assert "parent test error" in out
        assert "commensurate operating point" in out

    @pytest.mark.parametrize("method", ["lowrank", "uniform", "random"])
    def test_curve_command_new_families(self, tiny_cli, capsys, method):
        """Acceptance: every new registry family produces a prune curve
        end-to-end through the CLI."""
        assert main(["curve", "--model", "resnet20", "--method", method]) == 0
        out = capsys.readouterr().out
        assert method.upper() in out
        assert "commensurate operating point" in out

    def test_curve_command_spec_string_with_hyperparams(self, tiny_cli, capsys):
        assert main(
            ["curve", "--model", "resnet20", "--method", "lowrank(rank_frac=0.25)"]
        ) == 0
        assert "LOWRANK(RANK_FRAC=0.25)" in capsys.readouterr().out

    def test_curve_command_rejects_unknown_method(self, tiny_cli, capsys):
        with pytest.raises(SystemExit):
            main(["curve", "--method", "frobnicate"])
        assert "registered methods" in capsys.readouterr().err

    def test_potential_command_micro(self, tiny_cli, capsys):
        assert main(["potential", "--model", "resnet20", "--method", "wt"]) == 0
        out = capsys.readouterr().out
        assert "Prune potential" in out
        assert "nominal" in out

    def test_tables_command_micro(self, tiny_cli, capsys):
        assert main(["tables", "--model", "resnet20", "--methods", "wt,ft"]) == 0
        out = capsys.readouterr().out
        assert "PR/FR at commensurate accuracy" in out
        assert "train vs test distribution" in out
        assert "WT" in out and "FT" in out

    def test_tables_defaults_to_registry(self, monkeypatch):
        """Without --methods the tables enumerate every registered method."""
        import repro.__main__ as cli
        from repro.pruning import available_methods

        seen = []

        def fake_table(task, models, methods, scale, **knobs):
            from repro.experiments.summary_tables import resolve_method_names

            seen.append(resolve_method_names(methods))
            return [], ""

        monkeypatch.setattr("repro.experiments.pr_fr_table", fake_table)
        monkeypatch.setattr("repro.experiments.overparam_table", fake_table)
        assert main(["tables"]) == 0
        assert seen == [available_methods(), available_methods()]

    def test_methods_command_lists_registry(self, capsys):
        from repro.pruning import available_methods

        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in available_methods():
            assert name in out


class TestResilienceCLI:
    def test_resume_missing_manifest_fails_cleanly(self, micro_env, capsys):
        assert main(["zoo", "--resume", "/nonexistent/manifest.json"]) == 2
        assert "no failure manifest" in capsys.readouterr().err

    def test_resume_unreadable_manifest_fails_cleanly(
        self, micro_env, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("{ torn mid-wri")
        assert main(["zoo", "--resume", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_degraded_prints_manifest_pointer(self, capsys):
        from repro.__main__ import _report_degraded
        from repro.parallel import GridTiming
        from repro.resilience import CellFailure

        timing = GridTiming(
            label="curve",
            jobs=1,
            wall_seconds=0.1,
            failures=[
                CellFailure(
                    key="rep0", index=0, kind="exception",
                    error_type="ChaosError", message="injected", attempts=2,
                )
            ],
            manifest_path="/tmp/failures-curve.json",
        )
        _report_degraded(timing)
        out = capsys.readouterr().out
        assert "FAILED rep0: exception ChaosError: injected (2 attempts)" in out
        assert "failure manifest: /tmp/failures-curve.json" in out

    def test_report_degraded_silent_when_clean(self, capsys):
        from repro.__main__ import _report_degraded
        from repro.parallel import GridTiming

        _report_degraded(GridTiming(label="curve", jobs=1, wall_seconds=0.1))
        _report_degraded(None)
        assert capsys.readouterr().out == ""
