"""The ``python -m repro`` command-line interface."""

import os

import pytest

from repro.__main__ import main


@pytest.fixture
def micro_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestCLI:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    @pytest.fixture
    def tiny_cli(self, micro_env, monkeypatch):
        """Point the CLI at a micro scale so commands run in seconds."""
        import repro.experiments as ex
        import repro.__main__ as cli

        tiny = ex.SMOKE.with_(
            n_train=64, n_test=32, image_size=8, num_classes=4, base_width=2,
            parent_epochs=1, retrain_epochs=0, target_ratios=(0.5,), n_repetitions=1,
        )
        monkeypatch.setattr(cli, "_scale", lambda args: tiny)
        return tiny

    def test_curve_command_micro(self, tiny_cli, capsys):
        assert main(["curve", "--model", "resnet20", "--method", "wt"]) == 0
        out = capsys.readouterr().out
        assert "parent test error" in out
        assert "commensurate operating point" in out

    def test_potential_command_micro(self, tiny_cli, capsys):
        assert main(["potential", "--model", "resnet20", "--method", "wt"]) == 0
        out = capsys.readouterr().out
        assert "Prune potential" in out
        assert "nominal" in out

    def test_tables_command_micro(self, tiny_cli, capsys):
        assert main(["tables", "--model", "resnet20"]) == 0
        out = capsys.readouterr().out
        assert "PR/FR at commensurate accuracy" in out
        assert "train vs test distribution" in out
