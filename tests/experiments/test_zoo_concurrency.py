"""Concurrent zoo builders: one training run per artifact, corrupt = miss."""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.experiments import SMOKE, ZooSpec
from repro.experiments import zoo
from repro.utils.serialization import load_state, save_state

MICRO = SMOKE.with_(
    n_train=48, n_test=24, image_size=8, num_classes=4, base_width=2,
    parent_epochs=1, retrain_epochs=0, target_ratios=(0.4,), n_repetitions=1,
)

SPEC = ZooSpec("cifar", "resnet20", "wt", 0)


def _append_line(path, line: str) -> None:
    """O_APPEND write: atomic for short lines, safe across processes."""
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        os.write(fd, (line + "\n").encode())
    finally:
        os.close(fd)


def _racing_worker(barrier, out_path):
    """Grab the same prune run as the sibling process and dump its states."""
    barrier.wait(timeout=60)
    run = zoo.get_prune_run(SPEC, MICRO)
    arrays = {f"parent/{k}": v for k, v in run.parent_state.items()}
    arrays.update({f"ckpt0/{k}": v for k, v in run.checkpoints[0].state.items()})
    save_state(out_path, arrays, {"parent_test_error": run.parent_test_error})


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="race test instruments the zoo via fork-inherited monkeypatches",
)
class TestRacingBuilders:
    def test_single_training_run_and_identical_states(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        train_log = tmp_path / "train.log"

        real_parent, real_prune = zoo._train_parent, zoo._train_prune_run

        def counting_parent(spec, scale):
            _append_line(train_log, f"parent:{spec.key(scale)}")
            return real_parent(spec, scale)

        def counting_prune(spec, scale):
            _append_line(train_log, f"prune:{spec.key(scale)}")
            return real_prune(spec, scale)

        # Forked children inherit the instrumented module.
        monkeypatch.setattr(zoo, "_train_parent", counting_parent)
        monkeypatch.setattr(zoo, "_train_prune_run", counting_prune)

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        outs = [tmp_path / "a.npz", tmp_path / "b.npz"]
        procs = [
            ctx.Process(target=_racing_worker, args=(barrier, out)) for out in outs
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=180)
            assert p.exitcode == 0

        # Exactly one training run per artifact across both processes.
        lines = train_log.read_text().splitlines()
        assert len([l for l in lines if l.startswith("parent:")]) == 1
        assert len([l for l in lines if l.startswith("prune:")]) == 1

        # Both racers observed the same artifact, bit for bit.
        arrays_a, meta_a = load_state(outs[0])
        arrays_b, meta_b = load_state(outs[1])
        assert meta_a == meta_b
        assert sorted(arrays_a) == sorted(arrays_b)
        for key in arrays_a:
            np.testing.assert_array_equal(arrays_a[key], arrays_b[key])


class TestCorruptArtifactRecovery:
    def test_corrupt_parent_is_retrained(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        parent_spec = ZooSpec("cifar", "resnet20", None, 0)
        path = zoo.artifact_path(parent_spec, MICRO)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage, not an npz archive")

        trainings = []
        real_train = zoo._train_parent
        monkeypatch.setattr(
            zoo,
            "_train_parent",
            lambda spec, scale: trainings.append(spec) or real_train(spec, scale),
        )
        state = zoo.get_parent_state(parent_spec, MICRO)
        assert len(trainings) == 1  # corrupt archive counted as a miss
        assert state  # and a fresh artifact was produced
        arrays, _ = load_state(path)  # now valid on disk
        assert sorted(arrays) == sorted(state)

        # Second call: straight cache hit, no retraining.
        zoo.get_parent_state(parent_spec, MICRO)
        assert len(trainings) == 1

    def test_corrupt_prune_run_is_retrained(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run1 = zoo.get_prune_run(SPEC, MICRO)
        path = zoo.artifact_path(SPEC, MICRO)
        path.write_bytes(path.read_bytes()[:64])  # truncate: corrupt archive

        run2 = zoo.get_prune_run(SPEC, MICRO)
        np.testing.assert_allclose(run1.ratios, run2.ratios)
        np.testing.assert_allclose(run1.test_errors, run2.test_errors)
        for key in run1.parent_state:
            np.testing.assert_array_equal(run1.parent_state[key], run2.parent_state[key])


class TestBuildZoo:
    def test_dependency_aware_fanout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        specs = [ZooSpec("cifar", "resnet20", m, 0) for m in ("wt", "ft")]
        timing = zoo.build_zoo(specs, MICRO, jobs=2)
        # 1 shared parent + 2 prune runs; parent listed (and built) first.
        assert len(timing.cells) == 3
        assert "parent" in timing.cells[0].key
        assert not any(c.cached for c in timing.cells)
        assert len(list(tmp_path.glob("*.npz"))) == 3

        again = zoo.build_zoo(specs, MICRO, jobs=1)
        assert all(c.cached for c in again.cells)

    def test_jobs_equivalence(self, tmp_path, monkeypatch):
        """jobs=1 and jobs=2 produce identical artifact keys and contents."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        zoo.build_zoo([SPEC], MICRO, jobs=1)
        serial = {p.name: p for p in (tmp_path / "serial").glob("*.npz")}

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        zoo.build_zoo([SPEC], MICRO, jobs=2)
        par = {p.name: p for p in (tmp_path / "parallel").glob("*.npz")}

        assert sorted(serial) == sorted(par)  # identical artifact keys
        for name in serial:
            a, _ = load_state(serial[name])
            b, _ = load_state(par[name])
            assert sorted(a) == sorted(b)
            for key in a:
                np.testing.assert_array_equal(a[key], b[key])


class TestExperimentJobsEquivalence:
    def test_parallel_grid_matches_serial(self, tmp_path, monkeypatch):
        """Experiment results are identical regardless of the worker count."""
        from repro.experiments.corruption_study import corruption_potential_experiment

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        corruptions = ["gaussian_noise", "brightness"]
        serial = corruption_potential_experiment(
            "cifar", "resnet20", "wt", MICRO, corruptions=corruptions, jobs=1
        )
        corruption_potential_experiment.cache_clear()
        parallel = corruption_potential_experiment(
            "cifar", "resnet20", "wt", MICRO, corruptions=corruptions, jobs=2
        )
        corruption_potential_experiment.cache_clear()

        assert serial.distributions == parallel.distributions
        np.testing.assert_array_equal(serial.potentials, parallel.potentials)
        for name in serial.distributions:
            for c_serial, c_parallel in zip(serial.curves[name], parallel.curves[name]):
                np.testing.assert_array_equal(c_serial.errors, c_parallel.errors)
                assert c_serial.parent_error == c_parallel.parent_error
        assert parallel.timing is not None and parallel.timing.jobs == 2
