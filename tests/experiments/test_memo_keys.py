"""Memo cache keys are pure functions of call values — stable across
processes and sessions, never dependent on object identity or hash seeds."""

import subprocess
import sys

from repro.experiments import SMOKE
from repro.experiments.memo import cache_key, memoize

# One representative call signature: every container kind the normalizer
# handles plus a frozen-dataclass scale, as real experiment calls pass.
KEY_SNIPPET = """
from repro.experiments import SMOKE
from repro.experiments.memo import cache_key

key = cache_key(
    ("cifar", ["resnet20", "vgg16"], SMOKE),
    {
        "methods": ("wt", "ft"),
        "corruptions": {"gaussian_noise", "brightness"},
        "options": {"delta": 0.01, "robust": False},
        "jobs": 4,
    },
    ignore=("jobs",),
)
print(repr(key))
"""


def _subprocess_key() -> str:
    out = subprocess.run(
        [sys.executable, "-c", KEY_SNIPPET],
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


class TestCacheKeyStability:
    def test_key_identical_across_processes(self):
        """The exact key of this process reproduces in a fresh interpreter.

        Guards against identity- or hash-seed-dependent key material (id(),
        unsorted set iteration, default object repr), any of which would
        break cache hits between a driver and its pool workers.
        """
        local = repr(
            cache_key(
                ("cifar", ["resnet20", "vgg16"], SMOKE),
                {
                    "methods": ("wt", "ft"),
                    "corruptions": {"gaussian_noise", "brightness"},
                    "options": {"delta": 0.01, "robust": False},
                    "jobs": 4,
                },
                ignore=("jobs",),
            )
        )
        assert local == _subprocess_key()
        # And a second fresh interpreter (different hash seed) agrees too.
        assert _subprocess_key() == _subprocess_key()

    def test_key_is_value_based(self):
        a = cache_key((["x", "y"], {"k": [1, 2]}), {"s": {2, 1}})
        b = cache_key((("x", "y"), {"k": (1, 2)}), {"s": frozenset((1, 2))})
        assert a == b

    def test_ignore_drops_knob(self):
        assert cache_key((), {"jobs": 1}, ignore=("jobs",)) == cache_key(
            (), {"jobs": 8}, ignore=("jobs",)
        )
        assert cache_key((), {"jobs": 1}) != cache_key((), {"jobs": 8})

    def test_scale_variants_key_differently(self):
        assert cache_key((SMOKE,), {}) != cache_key(
            (SMOKE.with_(n_repetitions=7),), {}
        )

    def test_memoize_uses_cache_key(self):
        calls = []

        @memoize
        def fn(items):
            calls.append(items)
            return len(calls)

        assert fn(["a", "b"]) == fn(("a", "b")) == 1
        assert len(calls) == 1
