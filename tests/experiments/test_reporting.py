"""Reporting helpers."""

import pytest

from repro.experiments.reporting import curve_line, percent, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"
        assert len(s) == 4

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_pinned_scale(self):
        s = sparkline([0.5], lo=0.0, hi=1.0)
        assert s in "▃▄▅"

    def test_out_of_range_clipped(self):
        s = sparkline([2.0], lo=0.0, hi=1.0)
        assert s == "█"


class TestCurveLine:
    def test_contains_label_and_endpoints(self):
        line = curve_line("potential", [0.1, 0.9], [0.8, 0.2])
        assert "potential" in line
        assert "0.80" in line and "0.20" in line

    def test_empty_series_renders_labelled_row(self):
        line = curve_line("potential", [], [])
        assert "potential" in line
        assert "no data" in line

    def test_empty_generator_renders_labelled_row(self):
        line = curve_line("gen", iter([]), iter([]))
        assert "no data" in line


class TestPercent:
    def test_formats(self):
        assert percent(0.849) == "84.9%"
        assert percent(0.005, 2) == "0.50%"
