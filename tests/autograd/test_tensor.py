"""Tensor core behaviour: construction, backward, grad mode, detach."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_int_data_becomes_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.size == 24
        assert t.ndim == 3

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_backward_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError, match="grad shape"):
            y.backward(np.zeros(3))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x should give dy/dx = 4x, not 2x.
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        (a + a).backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_deep_chain_does_not_recurse(self):
        # The iterative topo sort must handle graphs deeper than the
        # recursion limit.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_for_constant_inputs(self):
        x = Tensor([1.0])  # requires_grad False
        y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None


class TestGradMode:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._prev == ()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestDetachCopy:
    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        z = y * 3.0
        assert not z.requires_grad

    def test_detach_shares_data(self):
        x = Tensor([1.0], requires_grad=True)
        assert x.detach().data is x.data

    def test_copy_is_independent(self):
        x = Tensor([1.0], requires_grad=True)
        c = x.copy()
        c.data[0] = 99.0
        assert x.data[0] == 1.0
        assert c.requires_grad


class TestNumpyInterop:
    def test_radd_with_ndarray(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = np.array([1.0, 1.0], dtype=np.float32) + x
        assert isinstance(y, Tensor)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_rsub_scalar(self):
        x = Tensor([1.0], requires_grad=True)
        y = 5.0 - x
        y.backward()
        np.testing.assert_allclose(x.grad, [-1.0])
        np.testing.assert_allclose(y.data, [4.0])

    def test_rtruediv_scalar(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 / x
        y.backward()
        np.testing.assert_allclose(y.data, [0.5])
        np.testing.assert_allclose(x.grad, [-0.25])
