"""Autograd edge cases: dtypes, degenerate shapes, graph pathologies."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, no_grad
from repro.autograd import ops


class TestDegenerateShapes:
    def test_empty_tensor_sum(self):
        x = Tensor(np.zeros((0, 3)), requires_grad=True)
        y = x.sum()
        assert y.item() == 0.0
        y.backward()
        assert x.grad.shape == (0, 3)

    def test_single_element_ops(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        ((x * x).log() * x.exp()).sum().backward()
        assert np.isfinite(x.grad).all()

    def test_batch_of_one_conv(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32), requires_grad=True)
        F.conv2d(x, w, padding=1).sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape

    def test_1x1_spatial_conv(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 1, 1)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 3, 1, 1)).astype(np.float32))
        out = F.conv2d(x, w)
        assert out.shape == (2, 4, 1, 1)

    def test_kernel_equals_input_size(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 3, 3)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)).astype(np.float32))
        assert F.conv2d(x, w).shape == (1, 4, 1, 1)


class TestDtypePropagation:
    def test_float32_stays_float32(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        y = (x * 2.0 + 1.0).relu()
        assert y.dtype == np.float32
        y.sum().backward()
        assert x.grad.dtype == np.float32

    def test_mixed_op_with_python_scalar(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        assert (x + 1).dtype == np.float32


class TestGraphPathologies:
    def test_reuse_tensor_in_multiple_graphs(self):
        x = Tensor([1.0], requires_grad=True)
        a = (x * 2.0).sum()
        b = (x * 3.0).sum()
        a.backward()
        b.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_on_nonscalar_with_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 2.0
        y.backward(np.full((2, 2), 0.5))
        np.testing.assert_allclose(x.grad, np.ones((2, 2)))

    def test_no_grad_inside_graph_detaches_subtree(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * 2.0
        with no_grad():
            z = y * 10.0  # constant w.r.t. graph
        w = y + z.detach()
        w.backward()
        np.testing.assert_allclose(x.grad, [2.0])

    def test_getitem_then_concat_roundtrip_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = ops.concatenate([x[0:1], x[1:2]], axis=0)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))


class TestNumericalStability:
    def test_cross_entropy_huge_logits(self):
        logits = Tensor(np.array([[1000.0, -1000.0]]), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_log_softmax_extreme(self):
        out = F.log_softmax(Tensor(np.array([[500.0, -500.0, 0.0]])))
        assert np.isfinite(out.data).all()

    def test_batchnorm_zero_variance_channel(self):
        x = Tensor(np.ones((4, 2, 3, 3), dtype=np.float32), requires_grad=True)
        rm, rv = np.zeros(2, dtype=np.float32), np.ones(2, dtype=np.float32)
        out = F.batch_norm(
            x, Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=True
        )
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert np.isfinite(x.grad).all()
