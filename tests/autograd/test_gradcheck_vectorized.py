"""The vectorized numerical-gradient path, plus gradcheck coverage for ops
that earlier suites exercised only through value checks (reflected
operators, dropout) or not at all."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck
from repro.autograd.gradcheck import (
    _batched_gradient,
    _loop_gradient,
    numerical_gradient,
    randn_tensor,
)
from repro.autograd.tensor import no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestVectorizedNumericalGradient:
    def test_batched_matches_loop_elementwise(self, rng):
        a, b = randn_tensor(rng, 5, 7), randn_tensor(rng, 5, 7)
        fn = lambda a, b: (a * b).tanh()
        fast = numerical_gradient(fn, [a, b], 0)
        with no_grad():
            loop = _loop_gradient(fn, [a, b], 0, 1e-5)
        np.testing.assert_array_equal(fast, loop)

    def test_batched_matches_loop_matmul(self, rng):
        a, b = randn_tensor(rng, 4, 3), randn_tensor(rng, 3, 5)
        fn = lambda a, b: a @ b
        for wrt in (0, 1):
            fast = numerical_gradient(fn, [a, b], wrt)
            with no_grad():
                loop = _loop_gradient(fn, [a, b], wrt, 1e-5)
            np.testing.assert_allclose(fast, loop, atol=1e-9)

    def test_batched_path_engages(self, rng):
        a = randn_tensor(rng, 4, 4)
        with no_grad():
            out = _batched_gradient(lambda a: a.exp(), [a], 0, 1e-5, chunk=128)
        assert out is not None and out.shape == (4, 4)

    def test_internal_reduction_falls_back(self, rng):
        # A closure that pre-sums collapses the perturbation axis, so the
        # batched path must detect the shape mismatch and bail.
        a = randn_tensor(rng, 3, 3)
        with no_grad():
            assert _batched_gradient(lambda a: a.sum(), [a], 0, 1e-5, 128) is None

    def test_axis_mixing_falls_back_to_correct_result(self, rng):
        # fn reads across the perturbation axis (a[0]); shape detection
        # cannot catch it, but the spot-check recomputation must.
        a = randn_tensor(rng, 6, 5)
        fn = lambda a: a * a[0]
        fast = numerical_gradient(fn, [a], 0)
        with no_grad():
            loop = _loop_gradient(fn, [a], 0, 1e-5)
        np.testing.assert_allclose(fast, loop, atol=1e-9)

    def test_chunking_covers_all_scalars(self, rng):
        a = randn_tensor(rng, 9, 5)  # 45 scalars, chunk 8 -> 6 chunks
        fast = numerical_gradient(lambda a: a.sigmoid(), [a], 0, chunk=8)
        with no_grad():
            loop = _loop_gradient(lambda a: a.sigmoid(), [a], 0, 1e-5)
        np.testing.assert_array_equal(fast, loop)

    def test_gradcheck_accepts_unreduced_outputs(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng, 3, 4)
        assert gradcheck(lambda a, b: a * b + b, [a, b])


class TestReflectedOperatorGrads:
    """scalar <op> Tensor dispatches through __r*__; previously unchecked."""

    def test_radd(self, rng):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: 2.5 + a, [a])

    def test_rsub(self, rng):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: 1.5 - a, [a])

    def test_rmul(self, rng):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: 3.0 * a, [a])

    def test_rtruediv(self, rng):
        a = Tensor(rng.uniform(1.0, 2.0, (3, 4)), requires_grad=True)
        gradcheck(lambda a: 2.0 / a, [a])


class TestDropoutGradcheck:
    def test_dropout_gradcheck_fixed_rng(self, rng):
        # A fresh identically-seeded generator per call keeps the mask
        # constant across the finite-difference evaluations.
        x = randn_tensor(rng, 4, 6)
        gradcheck(
            lambda x: F.dropout(x, 0.4, np.random.default_rng(3), training=True),
            [x],
        )
