"""Finite-difference verification of every primitive op's gradient."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd import ops
from repro.autograd.gradcheck import randn_tensor


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestArithmeticGrads:
    def test_add(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng, 3, 4)
        gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng, 4)
        gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_broadcast_keepdim(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng, 3, 1)
        gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_sub(self, rng):
        a, b = randn_tensor(rng, 2, 3), randn_tensor(rng, 2, 3)
        gradcheck(lambda a, b: (a - b).sum(), [a, b])

    def test_mul(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng, 3, 4)
        gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_mul_broadcast_scalar_tensor(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng)
        gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = randn_tensor(rng, 3, 4)
        b = Tensor(rng.uniform(1.0, 2.0, (3, 4)), requires_grad=True)
        gradcheck(lambda a, b: (a / b).sum(), [a, b])

    def test_neg(self, rng):
        a = randn_tensor(rng, 5)
        gradcheck(lambda a: (-a).sum(), [a])

    def test_power(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        gradcheck(lambda a: (a**3.0).sum(), [a])

    def test_power_rejects_tensor_exponent(self, rng):
        a = randn_tensor(rng, 2)
        with pytest.raises(TypeError):
            ops.power(a, a)


class TestMatmulGrads:
    def test_2d_2d(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng, 4, 5)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_2d_1d(self, rng):
        a, b = randn_tensor(rng, 3, 4), randn_tensor(rng, 4)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_1d_1d(self, rng):
        a, b = randn_tensor(rng, 4), randn_tensor(rng, 4)
        gradcheck(lambda a, b: a @ b, [a, b])

    def test_batched(self, rng):
        a, b = randn_tensor(rng, 2, 3, 4), randn_tensor(rng, 2, 4, 5)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])


class TestElementwiseGrads:
    def test_exp(self, rng):
        gradcheck(lambda a: a.exp().sum(), [randn_tensor(rng, 3, 3)])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, (3, 3)), requires_grad=True)
        gradcheck(lambda a: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, (3, 3)), requires_grad=True)
        gradcheck(lambda a: a.sqrt().sum(), [a])

    def test_relu_away_from_kink(self, rng):
        a = Tensor(rng.uniform(0.1, 1.0, (3, 3)) * rng.choice([-1, 1], (3, 3)))
        a.requires_grad = True
        gradcheck(lambda a: a.relu().sum(), [a])

    def test_tanh(self, rng):
        gradcheck(lambda a: a.tanh().sum(), [randn_tensor(rng, 3, 3)])

    def test_sigmoid(self, rng):
        gradcheck(lambda a: a.sigmoid().sum(), [randn_tensor(rng, 3, 3)])

    def test_abs_away_from_zero(self, rng):
        a = Tensor(rng.uniform(0.1, 1.0, (4,)) * rng.choice([-1, 1], (4,)))
        a.requires_grad = True
        gradcheck(lambda a: a.abs().sum(), [a])

    def test_maximum(self, rng):
        a, b = randn_tensor(rng, 6), randn_tensor(rng, 6)
        gradcheck(lambda a, b: ops.maximum(a, b).sum(), [a, b])

    def test_clip_interior(self, rng):
        a = Tensor(rng.uniform(-0.4, 0.4, (5,)), requires_grad=True)
        gradcheck(lambda a: ops.clip(a, -0.5, 0.5).sum(), [a])


class TestReductionGrads:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum(self, rng, axis, keepdims):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: a.sum(axis=axis, keepdims=keepdims).sum(), [a])

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), (-1, False)])
    def test_mean(self, rng, axis, keepdims):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: a.mean(axis=axis, keepdims=keepdims).sum(), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max(self, rng, axis):
        # Distinct values keep the max differentiable.
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(np.float64), requires_grad=True)
        gradcheck(lambda a: a.max(axis=axis).sum(), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        a.max(axis=1).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])


class TestShapeGrads:
    def test_reshape(self, rng):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: a.reshape(2, 6).sum(), [a])

    def test_reshape_tuple_arg(self, rng):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: a.reshape((12,)).sum(), [a])

    def test_transpose_default(self, rng):
        a = randn_tensor(rng, 3, 4)
        gradcheck(lambda a: (a.T * Tensor(np.arange(12.0).reshape(4, 3))).sum(), [a])

    def test_transpose_axes(self, rng):
        a = randn_tensor(rng, 2, 3, 4)
        weights = Tensor(np.arange(24.0).reshape(4, 2, 3))
        gradcheck(lambda a: (a.transpose(2, 0, 1) * weights).sum(), [a])

    def test_getitem_slice(self, rng):
        a = randn_tensor(rng, 4, 5)
        gradcheck(lambda a: a[1:3, ::2].sum(), [a])

    def test_getitem_int_index(self, rng):
        a = randn_tensor(rng, 4, 5)
        gradcheck(lambda a: a[2].sum(), [a])

    def test_getitem_fancy_repeated_index_accumulates(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        a[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0])

    def test_concatenate(self, rng):
        a, b = randn_tensor(rng, 2, 3), randn_tensor(rng, 4, 3)
        gradcheck(lambda a, b: ops.concatenate([a, b], axis=0).sum(), [a, b])

    def test_concatenate_axis1(self, rng):
        a, b = randn_tensor(rng, 2, 3), randn_tensor(rng, 2, 5)
        gradcheck(lambda a, b: ops.concatenate([a, b], axis=1).sum(), [a, b])

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            ops.concatenate([])

    def test_pad2d(self, rng):
        a = randn_tensor(rng, 2, 3, 4, 4)
        gradcheck(lambda a: ops.pad2d(a, 2).sum(), [a])

    def test_pad2d_zero_is_identity(self, rng):
        a = randn_tensor(rng, 1, 1, 2, 2)
        assert ops.pad2d(a, 0) is a

    def test_pad2d_negative_raises(self, rng):
        with pytest.raises(ValueError):
            ops.pad2d(randn_tensor(rng, 1, 1, 2, 2), -1)
