"""Fused kernels: value checks against reference implementations plus
gradchecks across geometry configurations."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck
from repro.autograd.functional import conv_output_size
from repro.autograd.gradcheck import randn_tensor


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def reference_conv2d(x, w, b, stride, padding):
    """Naive direct convolution for value comparison."""
    n, c, h, ww = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (ww + 2 * padding - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,fchw->nf", patch, w)
    if b is not None:
        out += b.reshape(1, f, 1, 1)
    return out


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(8, 3, 1, 1, 8), (8, 3, 2, 1, 4), (7, 3, 1, 0, 5), (5, 5, 1, 0, 1)],
    )
    def test_values(self, size, kernel, stride, padding, expected):
        assert conv_output_size(size, kernel, stride, padding) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_gradcheck(self, rng, stride, padding):
        x = randn_tensor(rng, 2, 2, 5, 5)
        w = randn_tensor(rng, 3, 2, 3, 3)
        b = randn_tensor(rng, 3)
        gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=stride, padding=padding).sum(),
            [x, w, b],
        )

    def test_gradcheck_1x1_kernel(self, rng):
        x = randn_tensor(rng, 2, 3, 4, 4)
        w = randn_tensor(rng, 5, 3, 1, 1)
        gradcheck(lambda x, w: F.conv2d(x, w).sum(), [x, w])

    def test_no_bias(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1)
        ref = reference_conv2d(x, w, None, 1, 1)
        np.testing.assert_allclose(out.data, ref, rtol=1e-5, atol=1e-6)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_non_4d_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((3, 4, 4))), Tensor(np.zeros((2, 3, 3, 3))))


class TestLinear:
    def test_matches_numpy(self, rng):
        x, w, b = rng.standard_normal((4, 3)), rng.standard_normal((5, 3)), rng.standard_normal(5)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-6)

    def test_gradcheck(self, rng):
        x, w, b = randn_tensor(rng, 4, 3), randn_tensor(rng, 5, 3), randn_tensor(rng, 5)
        gradcheck(lambda x, w, b: F.linear(x, w, b).sum(), [x, w, b])


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5, 7], [13, 15]]]])

    def test_max_pool_grad_goes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, [1, 1, 3, 3], [1, 3, 1, 3]] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.permutation(2 * 2 * 36).reshape(2, 2, 6, 6).astype(np.float64), requires_grad=True)
        gradcheck(lambda x: F.max_pool2d(x, 2).sum(), [x])

    def test_max_pool_overlapping_stride(self, rng):
        x = Tensor(rng.permutation(25).reshape(1, 1, 5, 5).astype(np.float64), requires_grad=True)
        gradcheck(lambda x: F.max_pool2d(x, 3, stride=1).sum(), [x])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_avg_pool_gradcheck(self, rng):
        gradcheck(lambda x: F.avg_pool2d(x, 2).sum(), [randn_tensor(rng, 2, 3, 4, 4)])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 5))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), rtol=1e-6)
        gradcheck(lambda x: F.global_avg_pool2d(x).sum(), [randn_tensor(rng, 2, 3, 4, 4)])

    def test_upsample_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = F.upsample_nearest2d(Tensor(x), 2)
        np.testing.assert_allclose(
            out.data, [[[[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]]]]
        )

    def test_upsample_gradcheck(self, rng):
        gradcheck(lambda x: F.upsample_nearest2d(x, 3).sum(), [randn_tensor(rng, 1, 2, 3, 3)])

    def test_upsample_invalid_scale(self, rng):
        with pytest.raises(ValueError):
            F.upsample_nearest2d(randn_tensor(rng, 1, 1, 2, 2), 0)


class TestBatchNorm:
    def test_train_normalizes(self, rng):
        x = rng.standard_normal((16, 4, 3, 3)) * 5 + 2
        gamma, beta = np.ones(4), np.zeros(4)
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm(Tensor(x), Tensor(gamma), Tensor(beta), rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = rng.standard_normal((64, 3, 4, 4)) + 3.0
        rm, rv = np.zeros(3), np.ones(3)
        F.batch_norm(Tensor(x), Tensor(np.ones(3)), Tensor(np.zeros(3)), rm, rv, training=True, momentum=1.0)
        np.testing.assert_allclose(rm, x.mean(axis=(0, 2, 3)), rtol=1e-5)

    def test_eval_uses_running_stats(self, rng):
        x = rng.standard_normal((4, 2, 3, 3))
        rm, rv = np.array([1.0, -1.0]), np.array([4.0, 0.25])
        out = F.batch_norm(
            Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv, training=False, eps=0.0
        )
        expected = (x - rm.reshape(1, 2, 1, 1)) / np.sqrt(rv.reshape(1, 2, 1, 1))
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_2d_input(self, rng):
        x = rng.standard_normal((8, 5))
        rm, rv = np.zeros(5), np.ones(5)
        out = F.batch_norm(Tensor(x), Tensor(np.ones(5)), Tensor(np.zeros(5)), rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-6)

    def test_3d_raises(self):
        with pytest.raises(ValueError):
            F.batch_norm(
                Tensor(np.zeros((2, 3, 4))), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                np.zeros(3), np.ones(3), training=True,
            )

    @pytest.mark.parametrize("training", [True, False])
    def test_gradcheck(self, rng, training):
        x = randn_tensor(rng, 5, 3, 2, 2)
        g = randn_tensor(rng, 3, scale=0.5)
        b = randn_tensor(rng, 3)
        rm, rv = np.zeros(3), np.ones(3)
        gradcheck(
            lambda x, g, b: F.batch_norm(x, g, b, rm.copy(), rv.copy(), training=training),
            [x, g, b],
        )


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, rtol=1e-6)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), rtol=1e-5
        )

    def test_softmax_gradcheck(self, rng):
        gradcheck(lambda x: (F.softmax(x) ** 2.0).sum(), [randn_tensor(rng, 3, 5)])

    def test_log_softmax_gradcheck(self, rng):
        x = randn_tensor(rng, 3, 5)
        weights = Tensor(rng.standard_normal((3, 5)))
        gradcheck(lambda x: (F.log_softmax(x) * weights).sum(), [x])

    def test_cross_entropy_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_cross_entropy_gradcheck(self, rng):
        lo = randn_tensor(rng, 6, 4)
        gradcheck(lambda lo: F.cross_entropy(lo, np.array([0, 1, 2, 3, 0, 1])), [lo])

    def test_cross_entropy_grad_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        targets = np.array([0, 2])
        F.cross_entropy(logits, targets).backward()
        probs = F.softmax(logits.detach()).data
        onehot = np.eye(3)[targets]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 2, rtol=1e-5, atol=1e-6)

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        assert F.dropout(x, 0.5, rng, training=False) is x

    def test_p_zero_is_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_grad_masked_like_forward(self, rng):
        x = Tensor(np.ones((8, 8)), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        out.sum().backward()
        np.testing.assert_allclose((x.grad > 0), (out.data > 0))
