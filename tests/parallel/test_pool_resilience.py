"""Fault-tolerant parallel_map: validation, retries, collect mode, crashes."""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel import MapOutcome, WorkerError, WorkerPool, parallel_map
from repro.resilience import KIND_CRASH, KIND_EXCEPTION, KIND_TIMEOUT, RetryPolicy
from repro.resilience import chaos

#: Zero-sleep policy so retry tests don't wait out real backoff delays.
FAST = RetryPolicy(max_retries=2, base_delay=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def ambient_chaos_off(monkeypatch):
    """These tests assert exact failure counts, so ambient REPRO_CHAOS
    (exported by the nightly chaos CI job) must not inject extra faults."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.OWNER_ENV, raising=False)
    chaos.disable()
    yield


def _ident(x):
    return x


def _boom_on_two(x):
    if x == 2:
        raise ValueError(f"bad item {x}")
    return x * 10


def _flaky(args):
    """Raise a transient OSError until a marker file exists (cross-process)."""
    marker, x = args
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("tried")
        raise OSError("transient filesystem hiccup")
    return x * 10


def _always_oserror(x):
    raise OSError("permanently flaky")


def _crash_once(args):
    """Hard-kill the worker on first sight of the marker's absence."""
    marker, x = args
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashing")
        os._exit(23)
    return x * 10


def _sleep_forever(x):
    if x == 1:
        time.sleep(60)
    return x


class TestValidation:
    def test_fn_must_be_callable(self):
        with pytest.raises(ValueError, match="fn must be callable"):
            parallel_map("not a function", [1, 2])

    @pytest.mark.parametrize("chunksize", [0, -1, -100])
    def test_chunksize_must_be_positive(self, chunksize):
        with pytest.raises(ValueError, match="chunksize must be >= 1"):
            parallel_map(_ident, [1, 2], jobs=2, chunksize=chunksize)

    @pytest.mark.parametrize("chunksize", [1.5, "2", True])
    def test_chunksize_must_be_a_real_int(self, chunksize):
        with pytest.raises(ValueError, match="chunksize must be an int"):
            parallel_map(_ident, [1, 2], jobs=2, chunksize=chunksize)

    def test_on_error_vocabulary(self):
        with pytest.raises(ValueError, match="on_error"):
            parallel_map(_ident, [1, 2], on_error="ignore")

    def test_keys_length_mismatch(self):
        with pytest.raises(ValueError, match="keys has 2 entries for 3 items"):
            parallel_map(_ident, [1, 2, 3], keys=["a", "b"])

    def test_keys_callable(self, tmp_path):
        out = parallel_map(
            _boom_on_two,
            [1, 2, 3],
            jobs=1,
            on_error="collect",
            max_retries=0,
            keys=lambda x: f"cell/{x}",
        )
        assert out.failures[0].key == "cell/2"


class TestCollectSerial:
    def test_partial_results_with_holes(self):
        out = parallel_map(
            _boom_on_two, [1, 2, 3], jobs=1, on_error="collect", max_retries=0
        )
        assert isinstance(out, MapOutcome)
        assert out.results == [10, None, 30]
        assert not out.ok
        assert out.failed_indices == [1]
        assert out.successes() == [10, 30]
        assert out.retries == 0
        (failure,) = out.failures
        assert failure.kind == KIND_EXCEPTION
        assert failure.error_type == "ValueError"
        assert failure.message == "bad item 2"
        assert failure.attempts == 1
        assert not failure.retryable  # deterministic: never retried
        assert "_boom_on_two" in failure.remote_traceback

    def test_unordered_collect_drops_holes(self):
        out = parallel_map(
            _boom_on_two,
            [1, 2, 3],
            jobs=1,
            ordered=False,
            on_error="collect",
            max_retries=0,
        )
        assert sorted(out.results) == [10, 30]

    def test_all_ok_outcome(self):
        out = parallel_map(_ident, [1, 2], jobs=1, on_error="collect")
        assert out.ok and out.results == [1, 2] and not out.failures

    def test_transient_failure_retried_to_success(self, tmp_path):
        out = parallel_map(
            _flaky,
            [(str(tmp_path / "marker"), 4)],
            jobs=1,
            on_error="collect",
            retry_policy=FAST,
        )
        assert out.ok
        assert out.results == [40]
        assert out.retries == 1

    def test_budget_exhaustion_records_attempts(self, tmp_path):
        out = parallel_map(
            _always_oserror,
            [7],
            jobs=1,
            on_error="collect",
            retry_policy=FAST,
            max_retries=1,
        )
        (failure,) = out.failures
        assert failure.attempts == 2  # first try + one retry
        assert failure.retryable
        assert out.retries == 1

    def test_raise_mode_propagates_after_retries(self, tmp_path):
        with pytest.raises(OSError, match="permanently flaky"):
            parallel_map(
                _always_oserror, [7], jobs=1, retry_policy=FAST, max_retries=1
            )

    def test_env_retry_budget_honoured(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "0")
        out = parallel_map(
            _flaky,
            [(str(tmp_path / "marker"), 4)],
            jobs=1,
            on_error="collect",
        )
        assert not out.ok and out.failures[0].attempts == 1


class TestCollectParallel:
    def test_partial_results_with_holes(self):
        out = parallel_map(
            _boom_on_two,
            [1, 2, 3, 4],
            jobs=2,
            chunksize=1,
            on_error="collect",
            max_retries=0,
        )
        assert out.results == [10, None, 30, 40]
        assert out.failed_indices == [1]
        assert out.failures[0].kind == KIND_EXCEPTION
        assert out.failures[0].error_type == "ValueError"

    def test_raise_mode_wraps_in_worker_error(self):
        with pytest.raises(WorkerError, match="bad item 2"):
            parallel_map(_boom_on_two, [1, 2, 3, 4], jobs=2, chunksize=1)

    def test_crash_recovers_via_retry(self, tmp_path):
        out = parallel_map(
            _crash_once,
            [(str(tmp_path / "marker"), 4)] + [(str(tmp_path / "ok"), 5)],
            jobs=2,
            chunksize=1,
            on_error="collect",
            retry_policy=FAST,
        )
        # Marker "ok" never exists either — both cells crash once, then
        # succeed on their retry in a fresh worker.
        assert out.ok
        assert out.results == [40, 50]
        assert out.retries == 2

    def test_crash_exhausting_budget_is_a_crash_failure(self):
        # Two items: a single-item map would take the in-process serial
        # path, where _crash_always would kill the test runner itself.
        out = parallel_map(
            _crash_always,
            [0, 1],
            jobs=2,
            chunksize=1,
            on_error="collect",
            retry_policy=FAST,
            max_retries=1,
        )
        assert out.results == [None, None]
        assert len(out.failures) == 2
        for failure in out.failures:
            assert failure.kind == KIND_CRASH
            assert failure.error_type == "WorkerCrashError"
            assert "exited with code 23" in failure.message
            assert failure.attempts == 2
            assert failure.retryable  # crashes always retryable, just spent

    @pytest.mark.tier2
    def test_timeout_reaps_the_hung_worker(self):
        t0 = time.monotonic()
        out = parallel_map(
            _sleep_forever,
            [0, 1, 2],
            jobs=2,
            chunksize=1,
            on_error="collect",
            timeout=1.0,
            max_retries=0,
        )
        assert time.monotonic() - t0 < 30  # did not wait out the sleep
        assert out.results == [0, None, 2]
        (failure,) = out.failures
        assert failure.kind == KIND_TIMEOUT
        assert failure.error_type == "TimeoutError"
        assert "deadline" in failure.message


def _crash_always(x):
    os._exit(23)


class TestWorkerPoolResilience:
    def test_pool_carries_collect_mode(self):
        pool = WorkerPool(jobs=1, on_error="collect", max_retries=0)
        out = pool.map(_boom_on_two, [1, 2, 3])
        assert isinstance(out, MapOutcome)
        assert out.failed_indices == [1]

    def test_per_call_override(self):
        pool = WorkerPool(jobs=1, on_error="collect", max_retries=0)
        with pytest.raises(ValueError, match="bad item 2"):
            pool.map(_boom_on_two, [1, 2, 3], on_error="raise")
