"""The worker pool: chunking, ordering, error propagation, serial fallback."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.parallel import (
    WorkerError,
    WorkerPool,
    default_chunksize,
    parallel_map,
    resolve_jobs,
    resolve_start_method,
)
from repro.parallel.pool import _chunked


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x


_SIDE_EFFECTS: list[int] = []


def _record(x):
    _SIDE_EFFECTS.append(x)
    return x


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "5")
        assert resolve_jobs(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cpus(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_NUM_WORKERS"):
            resolve_jobs(None)


class TestStartMethod:
    def test_resolves_to_available(self):
        assert resolve_start_method() in multiprocessing.get_all_start_methods()

    def test_env_override(self, monkeypatch):
        method = multiprocessing.get_all_start_methods()[0]
        monkeypatch.setenv("REPRO_MP_START", method)
        assert resolve_start_method() == method

    def test_unavailable_raises(self):
        with pytest.raises(ValueError, match="unavailable"):
            resolve_start_method("frobnicate")


class TestChunking:
    def test_chunked_covers_all_items(self):
        items = list(range(10))
        chunks = _chunked(items, 3)
        assert [start for start, _ in chunks] == [0, 3, 6, 9]
        assert [x for _, chunk in chunks for x in chunk] == items

    def test_chunksize_larger_than_items(self):
        assert _chunked([1, 2], 100) == [(0, [1, 2])]

    def test_default_chunksize_bounds(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(100, 4) == 7  # ceil(100 / 16)
        assert default_chunksize(3, 8) == 1


class TestParallelMap:
    def test_matches_serial(self):
        items = list(range(23))
        expected = [_square(x) for x in items]
        assert parallel_map(_square, items, jobs=1) == expected
        assert parallel_map(_square, items, jobs=2) == expected

    @pytest.mark.parametrize("chunksize", [1, 2, 5, 100])
    def test_chunksize_variants(self, chunksize):
        items = list(range(11))
        assert parallel_map(_square, items, jobs=2, chunksize=chunksize) == [
            x * x for x in items
        ]

    def test_unordered_same_multiset(self):
        items = list(range(17))
        result = parallel_map(_square, items, jobs=2, ordered=False, chunksize=2)
        assert sorted(result) == sorted(x * x for x in items)

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_jobs1_runs_in_process(self):
        _SIDE_EFFECTS.clear()
        parallel_map(_record, [1, 2, 3], jobs=1)
        # Side effects land in *this* process: no workers were spawned.
        assert _SIDE_EFFECTS == [1, 2, 3]

    def test_jobs1_error_unwrapped(self):
        with pytest.raises(ValueError, match="bad item 3"):
            parallel_map(_boom, [1, 2, 3], jobs=1)

    def test_worker_error_carries_traceback(self):
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_boom, list(range(6)), jobs=2, chunksize=1)
        message = str(excinfo.value)
        assert "ValueError" in message
        assert "bad item 3" in message
        assert "_boom" in excinfo.value.remote_traceback

    def test_worker_error_pickle_roundtrip(self):
        """Regression: pickling used to drop ``remote_traceback`` (the
        default Exception reduction only re-passes ``args``), so a
        WorkerError crossing a process boundary arrived without the
        remote stack it exists to carry."""
        import pickle

        err = WorkerError(
            "worker failed with ValueError: bad item 3",
            "Traceback (most recent call last):\n  ...\nValueError: bad item 3",
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, WorkerError)
        assert str(clone) == str(err)
        assert clone.remote_traceback == err.remote_traceback

    @pytest.mark.tier2
    def test_spawn_start_method_safe(self):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn unavailable")
        # Builtin callable: picklable regardless of test-module import paths.
        assert parallel_map(abs, [-2, -1, 0, 1], jobs=2, start_method="spawn") == [
            2, 1, 0, 1,
        ]


class TestWorkerPool:
    def test_map(self):
        pool = WorkerPool(jobs=2)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_map_unordered(self):
        pool = WorkerPool(jobs=2, chunksize=1)
        assert sorted(pool.map_unordered(_square, range(5))) == [0, 1, 4, 9, 16]

    def test_resolves_jobs_eagerly(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        assert WorkerPool().jobs == 3
