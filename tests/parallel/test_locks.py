"""File locks and atomic publication."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.parallel import FileLock, LockTimeout, artifact_lock, atomic_write


class TestAtomicWrite:
    def test_publishes_on_success(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_write(target) as tmp:
            tmp.write_bytes(b"hello")
            assert not target.exists()  # nothing published mid-write
        assert target.read_bytes() == b"hello"
        assert list(tmp_path.iterdir()) == [target]  # no temp litter

    def test_failure_preserves_existing(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"original")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_write(target) as tmp:
                tmp.write_bytes(b"partial")
                raise RuntimeError("crash mid-write")
        assert target.read_bytes() == b"original"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_without_existing_leaves_nothing(self, tmp_path):
        target = tmp_path / "fresh.bin"
        with pytest.raises(RuntimeError):
            with atomic_write(target):
                raise RuntimeError("crash")
        assert list(tmp_path.iterdir()) == []


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert lock.held
        assert not lock.held
        with lock:  # reacquirable after release
            assert lock.held

    def test_double_acquire_raises(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()

    def test_contention_times_out(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        waiter = FileLock(path, timeout=0.2, poll_interval=0.02)
        with holder:
            with pytest.raises(LockTimeout):
                waiter.acquire()
        with waiter:  # acquirable once the holder releases
            assert waiter.held

    def test_artifact_lock_sibling_path(self, tmp_path):
        lock = artifact_lock(tmp_path / "model.npz")
        assert lock.path == tmp_path / "model.npz.lock"


def _locked_increment(args):
    lock_path, counter_path, n = args
    for _ in range(n):
        with FileLock(lock_path):
            value = int(counter_path.read_text()) if counter_path.exists() else 0
            counter_path.write_text(str(value + 1))
    return os.getpid()


class TestMutualExclusion:
    def test_two_processes_never_interleave(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork unavailable")
        ctx = multiprocessing.get_context("fork")
        lock_path = tmp_path / "counter.lock"
        counter_path = tmp_path / "counter.txt"
        n = 25
        procs = [
            ctx.Process(target=_locked_increment, args=((lock_path, counter_path, n),))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # The read-modify-write is not atomic; only the lock keeps both
        # processes from losing increments.
        assert int(counter_path.read_text()) == 2 * n
