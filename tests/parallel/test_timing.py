"""GridTiming / CellTiming accounting, including cache-aware rollups."""

import pytest

from repro import observe
from repro.parallel.timing import CellTiming, GridTiming, grid_timing, stopwatch


def mixed_grid():
    """2 computed cells (3 s total) + 2 cache hits, 1.5 s wall clock."""
    return GridTiming(
        label="zoo",
        jobs=4,
        wall_seconds=1.5,
        cells=[
            CellTiming("a", 1.0),
            CellTiming("b", 2.0),
            CellTiming("c", 0.001, cached=True),
            CellTiming("d", 0.002, cached=True),
        ],
    )


class TestRollups:
    def test_cell_seconds_counts_everything(self):
        assert mixed_grid().cell_seconds == pytest.approx(3.003)

    def test_computed_excludes_cache_hits(self):
        timing = mixed_grid()
        assert [c.key for c in timing.computed_cells] == ["a", "b"]
        assert timing.computed_seconds == pytest.approx(3.0)

    def test_cache_hit_rate(self):
        assert mixed_grid().cache_hit_rate == pytest.approx(0.5)

    def test_cache_hit_rate_empty_grid_is_zero(self):
        timing = GridTiming(label="empty", jobs=1, wall_seconds=0.0)
        assert timing.cache_hit_rate == 0.0

    def test_throughput_counts_computed_only(self):
        # 2 computed cells / 1.5 s wall; the warm cells must not inflate it.
        assert mixed_grid().throughput == pytest.approx(2 / 1.5)

    def test_speedup_uses_computed_seconds_only(self):
        assert mixed_grid().speedup == pytest.approx(3.0 / 1.5)

    def test_zero_wall_clock_degrades_to_zero(self):
        timing = GridTiming(
            label="g", jobs=1, wall_seconds=0.0, cells=[CellTiming("a", 1.0)]
        )
        assert timing.throughput == 0.0
        assert timing.speedup == 0.0

    def test_fully_cached_grid(self):
        timing = GridTiming(
            label="warm",
            jobs=2,
            wall_seconds=0.1,
            cells=[CellTiming("a", 0.001, cached=True)],
        )
        assert timing.cache_hit_rate == 1.0
        assert timing.throughput == 0.0
        assert timing.speedup == pytest.approx(0.0)


class TestSummary:
    def test_mentions_hit_rate_and_speedup(self):
        text = mixed_grid().summary()
        assert "hit rate 50%" in text
        assert "2 computed" in text
        assert "speedup" in text

    def test_constructor_helper(self):
        timing = grid_timing("g", 2, 1.0, [CellTiming("a", 0.5)])
        assert timing.label == "g"
        assert timing.cells[0].key == "a"


class TestRecord:
    def test_returns_self_when_disabled(self, monkeypatch):
        monkeypatch.delenv(observe.ENV_VAR, raising=False)
        timing = mixed_grid()
        assert timing.record() is timing

    def test_emits_grid_event_when_observing(self, tmp_path, monkeypatch):
        monkeypatch.delenv(observe.DIR_ENV, raising=False)
        observe.shutdown()
        path = tmp_path / "run.jsonl"
        observe.configure(path=path)
        try:
            timing = mixed_grid()
            assert timing.record() is timing
        finally:
            observe.shutdown()
        events = [
            r for r in observe.read_events(path) if r.get("name") == "grid"
        ]
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert attrs["label"] == "zoo"
        assert attrs["cells"] == 4
        assert attrs["computed"] == 2
        assert attrs["cache_hit_rate"] == pytest.approx(0.5)
        assert attrs["speedup"] == pytest.approx(2.0)


class TestStopwatch:
    def test_elapsed_monotone(self):
        with stopwatch() as elapsed:
            first = elapsed()
            second = elapsed()
        assert 0 <= first <= second
