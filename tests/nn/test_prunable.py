"""Prune-mask semantics on weight-bearing layers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class TestMaskInstall:
    def test_initial_mask_all_ones(self):
        conv = nn.Conv2d(2, 3, 3)
        assert conv.weight_mask.shape == conv.weight.shape
        assert conv.weight_mask.all()
        assert conv.num_pruned == 0
        assert conv.prune_ratio == 0.0

    def test_set_mask_zeroes_weights(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        mask = np.ones_like(layer.weight_mask)
        mask[0] = 0
        layer.set_weight_mask(mask)
        np.testing.assert_array_equal(layer.weight.data[0], 0.0)
        assert layer.num_pruned == 4
        assert layer.prune_ratio == pytest.approx(1 / 3)

    def test_wrong_shape_raises(self):
        layer = nn.Linear(4, 3)
        with pytest.raises(ValueError, match="shape"):
            layer.set_weight_mask(np.ones((2, 2)))

    def test_non_binary_raises(self):
        layer = nn.Linear(4, 3)
        with pytest.raises(ValueError, match="binary"):
            layer.set_weight_mask(np.full((3, 4), 0.5))

    def test_reset_mask(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        mask = np.zeros_like(layer.weight_mask)
        mask[0] = 1
        layer.set_weight_mask(mask)
        layer.reset_weight_mask()
        assert layer.num_pruned == 0
        assert not layer._mask_active


class TestMaskForwardBackward:
    def test_masked_weights_do_not_contribute(self, rng):
        layer = nn.Linear(2, 1, bias=False, rng=rng)
        layer.weight.data[:] = [[1.0, 1.0]]
        mask = np.array([[1.0, 0.0]], dtype=np.float32)
        layer.set_weight_mask(mask)
        out = layer(Tensor(np.array([[3.0, 5.0]], dtype=np.float32)))
        assert out.item() == pytest.approx(3.0)

    def test_masked_weights_get_zero_grad(self, rng):
        layer = nn.Linear(3, 2, bias=False, rng=rng)
        mask = np.ones_like(layer.weight_mask)
        mask[:, 1] = 0
        layer.set_weight_mask(mask)
        out = layer(Tensor(np.ones((2, 3), dtype=np.float32)))
        out.sum().backward()
        np.testing.assert_array_equal(layer.weight.grad[:, 1], 0.0)
        assert (layer.weight.grad[:, 0] != 0).all()

    def test_masked_weights_stay_zero_after_sgd(self, rng):
        from repro.optim import SGD

        layer = nn.Linear(3, 2, bias=False, rng=rng)
        mask = np.ones_like(layer.weight_mask)
        mask[0, 0] = 0
        layer.set_weight_mask(mask)
        opt = SGD(layer.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-2)
        for _ in range(5):
            opt.zero_grad()
            layer(Tensor(np.ones((2, 3), dtype=np.float32))).sum().backward()
            opt.step()
        assert layer.weight.data[0, 0] == 0.0
        assert (layer.weight.data[0, 1:] != 0).all()

    def test_no_mask_forward_uses_raw_weight(self, rng):
        layer = nn.Linear(2, 2, bias=False, rng=rng)
        assert layer.masked_weight is layer.weight  # fast path when unpruned
