"""FLOP accounting and FR computation."""

import numpy as np
import pytest

from repro import nn
from repro.nn.flops import count_flops, flop_reduction


def net():
    rng = np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 2, rng=rng),
    )


class TestCountFlops:
    def test_conv_flops_formula(self):
        model = net()
        # conv: 2 * (4*3*3*3) * 8 * 8 ; linear: 2 * (2*4) + 2 bias
        expected = 2 * 4 * 3 * 3 * 3 * 64 + 2 * 8 + 2
        assert count_flops(model, (3, 8, 8)) == expected

    def test_masked_weights_reduce_flops(self):
        model = net()
        base = count_flops(model, (3, 8, 8))
        conv = model[0]
        mask = np.ones_like(conv.weight_mask)
        mask[0] = 0  # remove one filter: 27 weights * 64 positions * 2
        conv.set_weight_mask(mask)
        assert count_flops(model, (3, 8, 8)) == base - 2 * 27 * 64

    def test_input_size_scales_conv_flops(self):
        model = net()
        small = count_flops(model, (3, 8, 8))
        large = count_flops(model, (3, 16, 16))
        assert large > small

    def test_restores_training_mode(self):
        model = net()
        model.train()
        count_flops(model, (3, 8, 8))
        assert model.training


class TestFlopReduction:
    def test_zero_for_identical(self):
        assert flop_reduction(net(), net(), (3, 8, 8)) == pytest.approx(0.0)

    def test_half_when_half_weights_masked(self):
        pruned = net()
        conv = pruned[0]
        mask = np.ones_like(conv.weight_mask)
        mask[:2] = 0
        conv.set_weight_mask(mask)
        fr = flop_reduction(pruned, net(), (3, 8, 8))
        assert 0.45 < fr < 0.55  # conv dominates; linear unpruned
