"""Weight initialization statistics."""

import numpy as np
import pytest

from repro.nn import init


class TestFan:
    def test_linear_fan(self):
        assert init._fan((8, 4)) == (4, 8)

    def test_conv_fan(self):
        assert init._fan((16, 8, 3, 3)) == (8 * 9, 16 * 9)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            init._fan((3,))


class TestDistributions:
    def test_kaiming_normal_std(self):
        w = init.kaiming_normal((256, 128), rng=0)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 128), rel=0.1)
        assert w.dtype == np.float32

    def test_kaiming_uniform_bound(self):
        w = init.kaiming_uniform((64, 64), rng=0)
        bound = np.sqrt(6.0 / 64)
        assert np.abs(w).max() <= bound

    def test_xavier_uniform_bound(self):
        w = init.xavier_uniform((64, 32), rng=0)
        bound = np.sqrt(6.0 / 96)
        assert np.abs(w).max() <= bound

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(
            init.kaiming_normal((4, 4), rng=5), init.kaiming_normal((4, 4), rng=5)
        )

    def test_zeros_ones(self):
        assert init.zeros((3,)).sum() == 0
        assert init.ones((3,)).sum() == 3
