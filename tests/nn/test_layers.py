"""Individual layer behaviour: shapes, values, validation."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


@pytest.fixture
def x_img(rng):
    return Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))


class TestLinear:
    def test_output_shape(self, rng):
        layer = nn.Linear(5, 3, rng=rng)
        out = layer(Tensor(np.zeros((4, 5), dtype=np.float32)))
        assert out.shape == (4, 3)

    def test_no_bias(self, rng):
        layer = nn.Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 5), dtype=np.float32)))
        np.testing.assert_allclose(out.data, 0.0)

    def test_init_is_seed_deterministic(self):
        a = nn.Linear(5, 3, rng=np.random.default_rng(3))
        b = nn.Linear(5, 3, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_extra_repr(self):
        assert "in_features=5" in repr(nn.Linear(5, 3))


class TestConv2d:
    @pytest.mark.parametrize(
        "stride,padding,expected_hw", [(1, 1, (8, 8)), (2, 1, (4, 4)), (1, 0, (6, 6))]
    )
    def test_output_shape(self, rng, x_img, stride, padding, expected_hw):
        conv = nn.Conv2d(3, 6, 3, stride=stride, padding=padding, rng=rng)
        out = conv(x_img)
        assert out.shape == (2, 6, *expected_hw)
        assert conv.last_output_hw == expected_hw

    def test_bias_shifts_output(self, rng, x_img):
        conv = nn.Conv2d(3, 2, 1, rng=rng)
        conv.weight.data[:] = 0.0
        conv.bias.data[:] = [1.0, -1.0]
        out = conv(x_img)
        np.testing.assert_allclose(out.data[:, 0], 1.0)
        np.testing.assert_allclose(out.data[:, 1], -1.0)


class TestActivations:
    def test_relu(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_tanh(self):
        out = nn.Tanh()(Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.0])

    def test_sigmoid(self):
        out = nn.Sigmoid()(Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.5])


class TestPoolingLayers:
    def test_max_pool(self, rng, x_img):
        assert nn.MaxPool2d(2)(x_img).shape == (2, 3, 4, 4)

    def test_avg_pool_custom_stride(self, rng, x_img):
        assert nn.AvgPool2d(2, stride=1)(x_img).shape == (2, 3, 7, 7)

    def test_global_avg_pool(self, x_img):
        assert nn.GlobalAvgPool2d()(x_img).shape == (2, 3)

    def test_upsample(self, x_img):
        assert nn.UpsampleNearest2d(2)(x_img).shape == (2, 3, 16, 16)


class TestStructural:
    def test_flatten(self, x_img):
        assert nn.Flatten()(x_img).shape == (2, 3 * 8 * 8)

    def test_identity(self, x_img):
        assert nn.Identity()(x_img) is x_img

    def test_dropout_train_vs_eval(self, rng, x_img):
        drop = nn.Dropout(0.5, rng=rng)
        drop.train()
        out_train = drop(x_img)
        assert (out_train.data == 0).any()
        drop.eval()
        assert drop(x_img) is x_img

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestContainers:
    def test_sequential_order(self, rng):
        net = nn.Sequential(nn.Linear(4, 3, rng=rng), nn.ReLU(), nn.Linear(3, 2, rng=rng))
        out = net(Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert out.shape == (1, 2)
        assert len(net) == 3
        assert isinstance(net[1], nn.ReLU)

    def test_sequential_iter(self, rng):
        net = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert [type(m).__name__ for m in net] == ["ReLU", "Tanh"]

    def test_module_list(self, rng):
        ml = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(ml) == 3
        assert ml[0] is not ml[1]
        names = [n for n, _ in ml.named_parameters()]
        assert "2.weight" in names

    def test_module_list_append(self):
        ml = nn.ModuleList()
        ml.append(nn.ReLU())
        assert len(ml) == 1

    def test_module_list_negative_index(self):
        layers = [nn.ReLU(), nn.Tanh()]
        ml = nn.ModuleList(layers)
        assert ml[-1] is layers[-1]


class TestBatchNormLayers:
    def test_bn2d_rejects_2d_input(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(Tensor(np.zeros((2, 3), dtype=np.float32)))

    def test_bn1d_rejects_4d_input(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4, 4), dtype=np.float32)))

    def test_running_stats_update_only_in_train(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)).astype(np.float32) + 2.0)
        bn.eval()
        bn(x)
        np.testing.assert_array_equal(bn.running_mean, np.zeros(3))
        bn.train()
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)


class TestCrossEntropyLossModule:
    def test_classification(self, rng):
        loss = nn.CrossEntropyLoss()(
            Tensor(rng.standard_normal((4, 3)).astype(np.float32)), np.array([0, 1, 2, 0])
        )
        assert loss.shape == ()
        assert loss.item() > 0

    def test_segmentation_matches_flattened(self, rng):
        logits = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        targets = rng.integers(0, 3, (2, 4, 4))
        dense = nn.CrossEntropyLoss()(Tensor(logits), targets)
        flat = nn.CrossEntropyLoss()(
            Tensor(logits.transpose(0, 2, 3, 1).reshape(-1, 3)), targets.reshape(-1)
        )
        assert dense.item() == pytest.approx(flat.item(), rel=1e-6)
