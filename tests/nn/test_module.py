"""Module system: registration, traversal, state dicts, modes, hooks."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


def small_net():
    rng = np.random.default_rng(0)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 2, rng=rng),
    )


class TestRegistration:
    def test_parameters_registered(self):
        layer = nn.Linear(3, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_child_modules_registered(self):
        net = small_net()
        assert len(list(net.modules())) == 6  # container + 5 children

    def test_nested_names_are_dotted(self):
        net = small_net()
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names
        assert "4.bias" in names

    def test_buffers_registered(self):
        bn = nn.BatchNorm2d(4)
        names = [n for n, _ in bn.named_buffers()]
        assert set(names) == {"running_mean", "running_var"}

    def test_reassignment_replaces_registration(self):
        class M(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(2, 2)

        m = M()
        m.layer = nn.Linear(3, 3)
        assert dict(m.named_parameters())["layer.weight"].shape == (3, 3)
        assert len(m._modules) == 1

    def test_attribute_before_init_raises(self):
        class Bad(nn.Module):
            def __init__(self):
                self.x = 1  # no super().__init__()

        with pytest.raises(RuntimeError, match="__init__"):
            Bad()

    def test_set_buffer_unknown_raises(self):
        bn = nn.BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn.set_buffer("nope", np.zeros(2))


class TestStateDict:
    def test_roundtrip_preserves_outputs(self, rng):
        net = small_net()
        x = Tensor(rng.standard_normal((2, 3, 6, 6)).astype(np.float32))
        net.eval()
        before = net(x).data.copy()
        state = net.state_dict()
        net2 = small_net()
        # Perturb then restore.
        for p in net2.parameters():
            p.data += 1.0
        net2.load_state_dict(state)
        net2.eval()
        np.testing.assert_allclose(net2(x).data, before, rtol=1e-6)

    def test_state_dict_copies(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"][:] = 0.0
        assert not np.all(dict(net.named_parameters())["0.weight"].data == 0)

    def test_missing_key_raises(self):
        net = small_net()
        state = net.state_dict()
        del state["0.weight"]
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_buffer_shape_mismatch_raises(self):
        net = small_net()
        state = net.state_dict()
        state["1.running_mean"] = np.zeros(7)  # BatchNorm2d(4) buffer
        with pytest.raises(ValueError, match="shape mismatch for buffer"):
            net.load_state_dict(state)

    def test_mask_state_resynced_on_load(self):
        net = small_net()
        conv = net[0]
        mask = np.ones_like(conv.weight_mask)
        mask[0] = 0
        conv.set_weight_mask(mask)
        state = net.state_dict()

        fresh = small_net()
        fresh.load_state_dict(state)
        assert fresh[0]._mask_active
        assert fresh[0].num_pruned == conv.num_pruned


class TestPreserveState:
    def test_restores_after_mutation(self):
        net = small_net()
        before = net.state_dict()
        with nn.preserve_state(net):
            for p in net.parameters():
                p.data += 1.0
        after = net.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)

    def test_restores_on_exception(self):
        net = small_net()
        before = net.state_dict()
        with pytest.raises(RuntimeError):
            with nn.preserve_state(net):
                for p in net.parameters():
                    p.data += 1.0
                raise RuntimeError("mid-sweep failure")
        after = net.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)

    def test_yields_the_module(self):
        net = small_net()
        with nn.preserve_state(net) as m:
            assert m is net


class TestModes:
    def test_train_eval_propagates(self):
        net = small_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_batchnorm_respects_mode(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)).astype(np.float32) + 5.0)
        bn.train()
        out_train = bn(x).data.copy()
        bn.eval()
        out_eval = bn(x).data
        # Training normalizes with batch stats; eval uses (partially updated)
        # running stats, so the two differ.
        assert not np.allclose(out_train, out_eval)


class TestGradsAndCounts:
    def test_zero_grad(self, rng):
        net = small_net()
        x = Tensor(rng.standard_normal((2, 3, 6, 6)).astype(np.float32))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_num_parameters(self):
        layer = nn.Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_apply_visits_all_modules(self):
        net = small_net()
        visited = []
        net.apply(lambda m: visited.append(type(m).__name__))
        assert len(visited) == 6


class TestHooks:
    def test_forward_hook_called_with_io(self, rng):
        layer = nn.Linear(3, 2)
        seen = []
        layer.register_forward_hook(lambda m, args, out: seen.append((args[0], out)))
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        y = layer(x)
        assert len(seen) == 1
        assert seen[0][0] is x
        assert seen[0][1] is y

    def test_hook_remover(self, rng):
        layer = nn.Linear(3, 2)
        seen = []
        remove = layer.register_forward_hook(lambda m, a, o: seen.append(1))
        layer(Tensor(np.zeros((1, 3), dtype=np.float32)))
        remove()
        layer(Tensor(np.zeros((1, 3), dtype=np.float32)))
        assert len(seen) == 1


class TestRepr:
    def test_repr_contains_children(self):
        text = repr(small_net())
        assert "Conv2d" in text and "Linear" in text
