"""Synthetic task generators: determinism, structure, learnability signals."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ClassificationTaskConfig,
    SegmentationTaskConfig,
    generate_classification,
    generate_segmentation,
    prototype_logits,
    shifted_config,
)


@pytest.fixture
def cfg():
    return ClassificationTaskConfig(num_classes=5, image_size=10, seed=3)


class TestClassificationGeneration:
    def test_shapes_and_dtypes(self, cfg):
        images, labels = generate_classification(cfg, 32)
        assert images.shape == (32, 3, 10, 10)
        assert images.dtype == np.float32
        assert labels.shape == (32,)
        assert labels.dtype == np.int64

    def test_range(self, cfg):
        images, _ = generate_classification(cfg, 32)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_labels_in_range(self, cfg):
        _, labels = generate_classification(cfg, 200)
        assert labels.min() >= 0 and labels.max() < cfg.num_classes

    def test_roughly_balanced(self, cfg):
        _, labels = generate_classification(cfg, 1000)
        counts = np.bincount(labels, minlength=cfg.num_classes)
        assert counts.min() > 100

    def test_deterministic(self, cfg):
        a = generate_classification(cfg, 16)
        b = generate_classification(cfg, 16)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_splits_differ(self, cfg):
        train, _ = generate_classification(cfg, 16, "train")
        test, _ = generate_classification(cfg, 16, "test")
        assert not np.allclose(train, test)

    def test_unknown_split_raises(self, cfg):
        with pytest.raises(ValueError, match="split"):
            generate_classification(cfg, 4, "validation")

    def test_seed_changes_prototypes(self):
        a = ClassificationTaskConfig(seed=0).prototypes()
        b = ClassificationTaskConfig(seed=1).prototypes()
        assert not np.allclose(a[0].tint, b[0].tint)

    def test_class_signal_exists(self, cfg):
        # Mean images of two classes must differ: there is class signal.
        images, labels = generate_classification(cfg, 600)
        mean0 = images[labels == 0].mean(axis=0)
        mean1 = images[labels == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).mean() > 0.01


class TestPrototypeClassifier:
    def test_beats_chance_by_far(self, cfg):
        images, labels = generate_classification(cfg, 400, "test")
        acc = (prototype_logits(cfg, images).argmax(1) == labels).mean()
        assert acc > 0.7  # chance is 0.2

    def test_noise_robust(self, cfg):
        images, labels = generate_classification(cfg, 400, "test")
        rng = np.random.default_rng(0)
        noisy = np.clip(images + rng.uniform(-0.2, 0.2, images.shape), 0, 1).astype(np.float32)
        clean_acc = (prototype_logits(cfg, images).argmax(1) == labels).mean()
        noisy_acc = (prototype_logits(cfg, noisy).argmax(1) == labels).mean()
        assert noisy_acc > clean_acc - 0.1  # the Fig. 5 "human" property


class TestShiftedConfig:
    def test_same_prototypes(self, cfg):
        shifted = shifted_config(cfg)
        for a, b in zip(cfg.prototypes(), shifted.prototypes()):
            np.testing.assert_array_equal(a.tint, b.tint)

    def test_harder_parameters(self, cfg):
        shifted = shifted_config(cfg)
        assert shifted.texture_amplitude < cfg.texture_amplitude
        assert shifted.pixel_noise > cfg.pixel_noise


class TestSegmentationGeneration:
    def test_shapes(self):
        cfg = SegmentationTaskConfig(num_classes=4, image_size=16, seed=0)
        images, masks = generate_segmentation(cfg, 8)
        assert images.shape == (8, 3, 16, 16)
        assert masks.shape == (8, 16, 16)
        assert masks.dtype == np.int64

    def test_labels_include_background_and_classes(self):
        cfg = SegmentationTaskConfig(num_classes=4, image_size=16, seed=0)
        _, masks = generate_segmentation(cfg, 32)
        values = np.unique(masks)
        assert 0 in values  # background
        assert values.max() <= cfg.num_classes
        assert len(values) > 2

    def test_deterministic(self):
        cfg = SegmentationTaskConfig(num_classes=3, image_size=12, seed=1)
        a = generate_segmentation(cfg, 4)
        b = generate_segmentation(cfg, 4)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_objects_textured_on_background(self):
        cfg = SegmentationTaskConfig(num_classes=3, image_size=16, seed=2)
        images, masks = generate_segmentation(cfg, 16)
        fg = images[:, :, :, :][np.broadcast_to((masks > 0)[:, None], images.shape)]
        bg = images[np.broadcast_to((masks == 0)[:, None], images.shape)]
        assert fg.std() > bg.std()  # objects carry texture
