"""Behavioural checks that the synthetic shifts play their paper roles:
the shifted resample is mildly harder, corruptions are substantially
harder, and severity scales difficulty — all measured with a trained model."""

import numpy as np
import pytest

from repro.training import evaluate_model


@pytest.fixture(scope="module")
def trained(request):
    from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer

    suite = make_tiny_suite(seed=21, n_train=300, n_test=200)
    model = make_tiny_cnn(seed=21)
    trainer = make_tiny_trainer(model, suite, epochs=6, seed=21)
    trainer.train()
    return model, suite


def error_on(model, suite, dataset):
    return evaluate_model(
        model, dataset.images, dataset.labels, suite.normalizer()
    )["error"]


class TestShiftRoles:
    def test_model_learned_the_task(self, trained):
        model, suite = trained
        err = error_on(model, suite, suite.test_set())
        assert err < 0.5  # chance is 0.75 for 4 classes

    def test_shifted_set_mildly_harder(self, trained):
        """CIFAR10.1 role: a small but real accuracy drop."""
        model, suite = trained
        nominal = error_on(model, suite, suite.test_set())
        shifted = error_on(model, suite, suite.shifted_test_set())
        assert shifted >= nominal - 0.03  # not easier
        assert shifted <= nominal + 0.35  # not catastrophic

    def test_noise_corruption_substantially_harder(self, trained):
        model, suite = trained
        nominal = error_on(model, suite, suite.test_set())
        corrupted = error_on(model, suite, suite.corrupted_test_set("gaussian_noise", 4))
        assert corrupted > nominal

    def test_severity_scales_difficulty(self, trained):
        model, suite = trained
        errs = [
            error_on(model, suite, suite.corrupted_test_set("gaussian_noise", s))
            for s in (1, 3, 5)
        ]
        assert errs[2] >= errs[0] - 0.02  # heavier severity is not easier

    def test_mild_digital_corruption_less_harmful_than_noise(self, trained):
        """The Fig. 6 contrast: jpeg-like is benign relative to gauss."""
        model, suite = trained
        jpeg = error_on(model, suite, suite.corrupted_test_set("jpeg", 3))
        gauss = error_on(model, suite, suite.corrupted_test_set("gaussian_noise", 5))
        assert jpeg <= gauss + 0.02
