"""The corruption suite: registry, ranges, severity ordering, determinism."""

import numpy as np
import pytest

from repro.data.corruptions import (
    CORRUPTION_CATEGORIES,
    available_corruptions,
    category_of,
    corrupt,
)
from repro.data.synthetic import ClassificationTaskConfig, generate_classification


@pytest.fixture(scope="module")
def images():
    cfg = ClassificationTaskConfig(num_classes=4, image_size=12, seed=0)
    return generate_classification(cfg, 24)[0]


class TestRegistry:
    def test_sixteen_corruptions(self):
        assert len(available_corruptions()) == 16

    def test_four_per_category(self):
        for category, names in CORRUPTION_CATEGORIES.items():
            assert len(names) == 4, category

    def test_category_of(self):
        assert category_of("gaussian_noise") == "noise"
        assert category_of("jpeg") == "digital"
        with pytest.raises(KeyError):
            category_of("nope")

    def test_unknown_corruption_raises(self, images):
        with pytest.raises(KeyError, match="unknown corruption"):
            corrupt(images, "cosmic_rays")


class TestValidation:
    @pytest.mark.parametrize("severity", [0, 6])
    def test_bad_severity(self, images, severity):
        with pytest.raises(ValueError, match="severity"):
            corrupt(images, "gaussian_noise", severity)

    def test_non_batch_raises(self, images):
        with pytest.raises(ValueError, match="batch"):
            corrupt(images[0], "gaussian_noise")


class TestAllCorruptions:
    @pytest.mark.parametrize("name", available_corruptions())
    def test_shape_range_and_change(self, images, name):
        out = corrupt(images, name, 3, seed=0)
        assert out.shape == images.shape
        assert out.dtype == np.float32
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert np.abs(out - images).mean() > 1e-3  # actually does something

    @pytest.mark.parametrize("name", available_corruptions())
    def test_deterministic_given_seed(self, images, name):
        a = corrupt(images, name, 3, seed=5)
        b = corrupt(images, name, 3, seed=5)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", available_corruptions())
    def test_severity_monotone_distortion(self, images, name):
        """Severity 5 must distort more than severity 1 (on average)."""
        d1 = np.abs(corrupt(images, name, 1, seed=0) - images).mean()
        d5 = np.abs(corrupt(images, name, 5, seed=0) - images).mean()
        assert d5 > d1

    def test_does_not_mutate_input(self, images):
        before = images.copy()
        corrupt(images, "impulse_noise", 5, seed=0)
        np.testing.assert_array_equal(images, before)


class TestSpecificBehaviours:
    def test_brightness_raises_mean(self, images):
        out = corrupt(images, "brightness", 3, seed=0)
        assert out.mean() > images.mean()

    def test_contrast_shrinks_spread(self, images):
        out = corrupt(images, "contrast", 5, seed=0)
        assert out.std() < images.std()

    def test_pixelate_creates_blocks(self, images):
        out = corrupt(images, "pixelate", 5, seed=0)
        # Neighbouring pixels become more similar after pixelation.
        tv_in = np.abs(np.diff(images, axis=3)).mean()
        tv_out = np.abs(np.diff(out, axis=3)).mean()
        assert tv_out < tv_in

    def test_blur_smooths(self, images):
        out = corrupt(images, "defocus_blur", 4, seed=0)
        tv_in = np.abs(np.diff(images, axis=3)).mean()
        tv_out = np.abs(np.diff(out, axis=3)).mean()
        assert tv_out < tv_in

    def test_impulse_noise_sets_extremes(self, images):
        out = corrupt(images, "impulse_noise", 5, seed=0)
        frac_extreme = ((out == 0.0) | (out == 1.0)).mean()
        assert frac_extreme > 0.05

    def test_fog_brightens_with_structure(self, images):
        out = corrupt(images, "fog", 4, seed=0)
        assert out.mean() > images.mean()
