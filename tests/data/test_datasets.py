"""Dataset containers, normalizer, and task suites."""

import numpy as np
import pytest

from repro.data import cifar_like, imagenet_like, voc_like
from repro.data.datasets import Dataset, Normalizer, TaskSuite
from repro.data.synthetic import ClassificationTaskConfig


@pytest.fixture
def suite():
    return TaskSuite(
        ClassificationTaskConfig(num_classes=4, image_size=8, seed=0),
        n_train=64,
        n_test=32,
        name="t",
    )


class TestDataset:
    def test_validation(self):
        with pytest.raises(ValueError, match="images"):
            Dataset(np.zeros((4, 8, 8)), np.zeros(4))
        with pytest.raises(ValueError, match="mismatch"):
            Dataset(np.zeros((4, 3, 8, 8)), np.zeros(3))

    def test_len_subset_map(self):
        ds = Dataset(np.zeros((6, 3, 4, 4), dtype=np.float32), np.arange(6))
        assert len(ds) == 6
        sub = ds.subset(np.array([0, 2]))
        assert len(sub) == 2
        mapped = ds.map_images(lambda x: x + 1, name="m")
        assert mapped.images.mean() == 1.0
        assert mapped.name == "m"


class TestNormalizer:
    def test_fit_normalizes(self, rng):
        images = rng.random((50, 3, 4, 4)).astype(np.float32) * 2
        norm = Normalizer.fit(images)
        out = norm(images)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1, atol=1e-2)

    def test_invert_roundtrip(self, rng):
        images = rng.random((10, 3, 4, 4)).astype(np.float32)
        norm = Normalizer.fit(images)
        np.testing.assert_allclose(norm.invert(norm(images)), images, atol=1e-5)


class TestTaskSuite:
    def test_split_caching(self, suite):
        assert suite.train_set() is suite.train_set()

    def test_split_sizes(self, suite):
        assert len(suite.train_set()) == 64
        assert len(suite.test_set()) == 32

    def test_input_shape_and_classes(self, suite):
        assert suite.input_shape == (3, 8, 8)
        assert suite.num_classes == 4
        assert not suite.is_segmentation

    def test_shifted_set_same_labels_shape(self, suite):
        shifted = suite.shifted_test_set()
        assert shifted.images.shape == suite.test_set().images.shape

    def test_corrupted_set(self, suite):
        ds = suite.corrupted_test_set("gaussian_noise", 3)
        base = suite.test_set()
        np.testing.assert_array_equal(ds.labels, base.labels)
        assert not np.allclose(ds.images, base.images)

    def test_normalizer_cached(self, suite):
        assert suite.normalizer() is suite.normalizer()


class TestFactories:
    def test_cifar_like_cached(self):
        assert cifar_like(seed=9, n_train=32, n_test=16) is cifar_like(
            seed=9, n_train=32, n_test=16
        )

    def test_imagenet_like_bigger(self):
        c = cifar_like(seed=0, n_train=16, n_test=8)
        i = imagenet_like(seed=0, n_train=16, n_test=8)
        assert i.num_classes > c.num_classes
        assert i.input_shape[1] > c.input_shape[1]

    def test_voc_like_is_segmentation(self):
        v = voc_like(seed=0, n_train=8, n_test=4)
        assert v.is_segmentation
        assert v.num_classes == 6  # 5 + background
        assert v.train_set().labels.ndim == 3

    def test_voc_shifted_raises(self):
        v = voc_like(seed=1, n_train=8, n_test=4)
        with pytest.raises(NotImplementedError):
            v.shifted_test_set()
