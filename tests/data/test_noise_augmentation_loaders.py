"""Noise injection, augmentation, and minibatch iteration."""

import numpy as np
import pytest

from repro.data.augmentation import CorruptionAugmenter, random_crop_flip
from repro.data.loaders import iterate_minibatches
from repro.data.noise import add_uniform_noise, noise_sweep


class TestUniformNoise:
    def test_bounded(self, rng):
        x = np.zeros((10, 3, 4, 4), dtype=np.float32)
        out = add_uniform_noise(x, 0.3, rng)
        assert np.abs(out).max() <= 0.3
        assert np.abs(out).mean() > 0.05

    def test_zero_eps_copies(self, rng):
        x = np.ones((2, 1, 2, 2), dtype=np.float32)
        out = add_uniform_noise(x, 0.0, rng)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_negative_eps_raises(self, rng):
        with pytest.raises(ValueError):
            add_uniform_noise(np.zeros(3), -0.1, rng)

    def test_preserves_dtype(self, rng):
        x = np.zeros((2, 2), dtype=np.float32)
        assert add_uniform_noise(x, 0.1, rng).dtype == np.float32

    def test_noise_sweep(self):
        levels = noise_sweep(0.5, 6)
        assert levels[0] == 0.0 and levels[-1] == 0.5
        assert len(levels) == 6
        with pytest.raises(ValueError):
            noise_sweep(0.5, 1)


class TestRandomCropFlip:
    def test_shape_preserved(self, rng):
        x = rng.random((8, 3, 10, 10)).astype(np.float32)
        out = random_crop_flip(x, rng, pad=2)
        assert out.shape == x.shape

    def test_changes_images(self, rng):
        x = rng.random((16, 3, 10, 10)).astype(np.float32)
        out = random_crop_flip(x, rng, pad=2)
        assert not np.allclose(out, x)

    def test_content_preserved_statistically(self, rng):
        x = rng.random((16, 3, 10, 10)).astype(np.float32)
        out = random_crop_flip(x, rng, pad=2)
        assert abs(out.mean() - x.mean()) < 0.05


class TestCorruptionAugmenter:
    def test_unknown_corruption_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            CorruptionAugmenter(["sharknado"])

    def test_applies_some_corruption(self, rng):
        aug = CorruptionAugmenter(["gaussian_noise", "brightness"], severity=5, rng=0)
        x = rng.random((32, 3, 8, 8)).astype(np.float32) * 0.5
        out = aug(x)
        assert out.shape == x.shape
        changed = np.abs(out - x).max(axis=(1, 2, 3)) > 1e-6
        assert changed.any()

    def test_include_clean_leaves_some_untouched(self, rng):
        aug = CorruptionAugmenter(["brightness"], severity=5, include_clean=True, rng=0)
        x = rng.random((64, 3, 8, 8)).astype(np.float32) * 0.5
        out = aug(x)
        unchanged = np.abs(out - x).max(axis=(1, 2, 3)) < 1e-6
        assert unchanged.any() and not unchanged.all()

    def test_without_clean_all_corrupted(self, rng):
        aug = CorruptionAugmenter(["brightness"], severity=5, include_clean=False, rng=0)
        x = rng.random((16, 3, 8, 8)).astype(np.float32) * 0.5
        out = aug(x)
        assert (np.abs(out - x).max(axis=(1, 2, 3)) > 1e-6).all()


class TestMinibatches:
    def test_covers_all_samples(self, rng):
        x = np.arange(10, dtype=np.float32).reshape(10, 1, 1, 1)
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, 3, rng=0):
            assert len(bx) == len(by)
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffle_changes_order(self):
        x = np.arange(20, dtype=np.float32).reshape(20, 1, 1, 1)
        y = np.arange(20)
        order = [by for _, by in iterate_minibatches(x, y, 20, rng=1)][0]
        assert not np.array_equal(order, y)

    def test_no_shuffle_keeps_order(self):
        x = np.arange(6, dtype=np.float32).reshape(6, 1, 1, 1)
        y = np.arange(6)
        batches = list(iterate_minibatches(x, y, 4, shuffle=False))
        np.testing.assert_array_equal(batches[0][1], [0, 1, 2, 3])
        np.testing.assert_array_equal(batches[1][1], [4, 5])

    def test_drop_last(self):
        x = np.zeros((7, 1, 1, 1), dtype=np.float32)
        y = np.zeros(7)
        batches = list(iterate_minibatches(x, y, 3, shuffle=False, drop_last=True))
        assert len(batches) == 2

    def test_augment_applied(self):
        x = np.zeros((4, 1, 1, 1), dtype=np.float32)
        y = np.zeros(4)
        batches = list(
            iterate_minibatches(x, y, 2, shuffle=False, augment=lambda b: b + 1)
        )
        assert batches[0][0].mean() == 1.0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((2, 1, 1, 1)), np.zeros(2), 0))
