"""End-to-end integration: train → prune → analyze, asserting coherence
between the library's subsystems (the full paper pipeline in miniature)."""

import numpy as np
import pytest

from repro.analysis import (
    evaluate_curve,
    excess_error_difference,
    noise_similarity,
    prune_potential,
    summarize_potentials,
)
from repro.nn.flops import flop_reduction
from repro.pruning import PruneRetrain, build_method, model_prune_ratio

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer

pytestmark = pytest.mark.tier2


@pytest.fixture(scope="module")
def pipeline_artifacts():
    """One full WT prune–retrain pipeline on a trained tiny CNN."""
    suite = make_tiny_suite(seed=8, n_train=160, n_test=96)
    model = make_tiny_cnn(seed=8)
    trainer = make_tiny_trainer(model, suite, epochs=4, seed=8)
    trainer.train()
    pipeline = PruneRetrain(trainer, build_method("wt"), retrain_epochs=1)
    run = pipeline.run(target_ratios=[0.3, 0.6, 0.9])
    return run, suite, trainer


class TestPipelineCoherence:
    def test_final_model_matches_last_checkpoint(self, pipeline_artifacts):
        run, suite, trainer = pipeline_artifacts
        assert model_prune_ratio(trainer.model) == pytest.approx(0.9, abs=0.01)
        assert trainer.evaluate()["error"] == pytest.approx(
            run.checkpoints[-1].test_error, abs=1e-9
        )

    def test_curve_reproduces_recorded_errors(self, pipeline_artifacts):
        run, suite, _ = pipeline_artifacts
        probe = make_tiny_cnn(seed=8)
        curve = evaluate_curve(run, probe, suite.test_set(), suite.normalizer())
        np.testing.assert_allclose(curve.errors, run.test_errors, atol=1e-9)
        np.testing.assert_allclose(curve.parent_error, run.parent_test_error, atol=1e-9)

    def test_flop_reduction_grows_with_ratio(self, pipeline_artifacts):
        run, suite, _ = pipeline_artifacts
        parent = make_tiny_cnn(seed=8)
        run.restore_parent(parent)
        frs = []
        for i in range(len(run.checkpoints)):
            pruned = make_tiny_cnn(seed=8)
            run.restore(pruned, i)
            frs.append(flop_reduction(pruned, parent, suite.input_shape))
        assert frs[0] < frs[1] < frs[2]
        assert 0 < frs[0] and frs[2] < 1

    def test_prune_potential_consistent_with_curve(self, pipeline_artifacts):
        run, suite, _ = pipeline_artifacts
        probe = make_tiny_cnn(seed=8)
        p_tight = prune_potential(run, probe, suite.test_set(), suite.normalizer(), delta=0.0)
        p_loose = prune_potential(run, probe, suite.test_set(), suite.normalizer(), delta=1.0)
        assert p_loose == pytest.approx(0.9, abs=0.01)
        assert p_tight <= p_loose

    def test_noise_potential_not_above_nominal_when_noise_huge(self, pipeline_artifacts):
        """With overwhelming noise every network is at chance: potential is
        whatever ratio still 'matches' the (also at-chance) parent — the key
        sanity check is that evaluation runs and stays in range."""
        run, suite, _ = pipeline_artifacts
        probe = make_tiny_cnn(seed=8)
        rng = np.random.default_rng(0)
        p = prune_potential(
            run,
            probe,
            suite.test_set(),
            suite.normalizer(),
            delta=0.005,
            transform=lambda x: x + rng.uniform(-5, 5, x.shape).astype(x.dtype),
        )
        assert 0.0 <= p <= run.ratios.max() + 1e-9

    def test_excess_error_difference_zero_at_identity(self, pipeline_artifacts):
        run, suite, _ = pipeline_artifacts
        probe = make_tiny_cnn(seed=8)
        ood = [suite.corrupted_test_set("gaussian_noise", 3)]
        result = excess_error_difference(run, probe, suite.test_set(), ood, suite.normalizer())
        assert result.ratios.shape == result.differences.shape
        assert np.isfinite(result.differences).all()

    def test_functional_similarity_decreases_with_ratio(self, pipeline_artifacts):
        """Matching predictions vs parent should not increase as we prune
        harder (allowing small nonmonotonicity tolerance)."""
        run, suite, _ = pipeline_artifacts
        parent = make_tiny_cnn(seed=8)
        run.restore_parent(parent)
        images = suite.normalizer()(suite.test_set().images[:48])
        rates = []
        for i in range(len(run.checkpoints)):
            pruned = make_tiny_cnn(seed=8)
            run.restore(pruned, i)
            rates.append(
                noise_similarity(parent, pruned, images, eps=0.05, n_trials=2, rng=0).match_rate
            )
        assert rates[-1] <= rates[0] + 0.1

    def test_overparam_summary_composes(self, pipeline_artifacts):
        run, suite, _ = pipeline_artifacts
        probe = make_tiny_cnn(seed=8)
        potentials = [
            prune_potential(run, probe, suite.test_set(), suite.normalizer(), delta=0.02),
            prune_potential(
                run,
                probe,
                suite.corrupted_test_set("gaussian_noise", 5),
                suite.normalizer(),
                delta=0.02,
            ),
        ]
        summary = summarize_potentials(np.array([potentials]))
        assert summary.minimum_mean <= summary.average_mean


class TestSegmentationEndToEnd:
    def test_prune_retrain_on_dense_task(self):
        from repro.data import voc_like
        from repro.models import deeplab_small
        from repro.training import TrainConfig, Trainer

        suite = voc_like(seed=3, n_train=24, n_test=12, image_size=16)
        model = deeplab_small(num_classes=suite.num_classes, base_width=4, rng=3)
        trainer = Trainer(
            model, suite, TrainConfig(epochs=1, batch_size=8, lr=0.02, warmup_epochs=0, seed=3)
        )
        trainer.train()
        run = PruneRetrain(trainer, build_method("pfp"), retrain_epochs=1).run(
            target_ratios=[0.3]
        )
        assert run.checkpoints[0].achieved_ratio >= 0.3
        assert 0 <= run.checkpoints[0].test_error <= 1
