"""End-to-end observability: a real zoo build under ``REPRO_OBSERVE=1``
produces a parseable ledger whose cell spans and cache counters reconcile
with the :class:`~repro.parallel.timing.GridTiming` the build returns."""

import pytest

from repro import observe
from repro.observe import load_report

pytestmark = pytest.mark.tier2


@pytest.fixture
def micro_zoo(tmp_path, monkeypatch):
    """Tiny zoo scale with an isolated cache and observation directory."""
    from repro import experiments as ex

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "zoo"))
    monkeypatch.delenv(observe.DIR_ENV, raising=False)
    scale = ex.SMOKE.with_(
        n_train=96,
        n_test=48,
        image_size=8,
        num_classes=4,
        base_width=2,
        parent_epochs=1,
        retrain_epochs=1,
        target_ratios=(0.4, 0.8),
        n_repetitions=1,
    )
    path = observe.configure(dir=tmp_path / "obs")
    yield scale, path
    observe.shutdown()


def build(scale, jobs=1):
    from repro.experiments.config import ExperimentScale  # noqa: F401
    from repro.experiments.zoo import ZooSpec, build_zoo

    specs = [ZooSpec("cifar", "resnet20", "wt", 0)]
    return build_zoo(specs, scale, jobs=jobs)


class TestZooLedgerReconciliation:
    def test_cold_then_warm_build_reconcile(self, micro_zoo):
        scale, path = micro_zoo
        cold = build(scale)
        warm = build(scale)
        observe.shutdown()

        assert cold.cache_hit_rate == 0.0
        assert warm.cache_hit_rate == 1.0

        report = load_report(path)
        # One zoo_cell span per timed cell, cold and warm runs combined.
        cell_spans = _spans(report, "zoo_cell")
        assert len(cell_spans) == len(cold.cells) + len(warm.cells)
        # Counter totals match the GridTiming cache accounting.
        n_cached = sum(c.cached for c in cold.cells + warm.cells)
        n_computed = sum(not c.cached for c in cold.cells + warm.cells)
        assert report.counters.get("zoo.cache_hit", 0) == n_cached
        assert report.counters.get("zoo.cache_miss", 0) == n_computed
        assert report.cache_hit_rate == pytest.approx(
            n_cached / (n_cached + n_computed)
        )
        # The grid event from GridTiming.record() landed for both builds.
        assert report.event_counts.get("grid", 0) == 2
        # Training instrumented: per-epoch events and a retrain span exist.
        assert report.event_counts.get("epoch", 0) >= 1
        assert _spans(report, "retrain")
        assert _spans(report, "prune_step")

    def test_render_and_json_round_trip(self, micro_zoo):
        import json

        scale, path = micro_zoo
        build(scale)
        observe.shutdown()
        report = load_report(path)
        text = report.render()
        assert "build_zoo" in text and "zoo_cell" in text
        parsed = json.loads(report.to_json())
        assert parsed["spans"] == report.n_spans


def _spans(report, name):
    out = []

    def walk(node):
        if node.name == name:
            out.append(node)
        for child in node.children:
            walk(child)

    for root in report.roots:
        walk(root)
    return out
