"""Acceptance: chaos kills a worker mid-build, the grid degrades to a
manifest, and --resume recomputes exactly the failed cells — all of it
verified against the run ledger's cache and resilience counters."""

from __future__ import annotations

import pytest

from repro import observe
from repro.observe import load_report
from repro.resilience import FailureManifest, chaos, resume_zoo
from repro.resilience.failures import KIND_CRASH

pytestmark = pytest.mark.tier2


@pytest.fixture
def micro_zoo(tmp_path, monkeypatch):
    from repro.experiments import SMOKE

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "zoo"))
    monkeypatch.delenv(observe.DIR_ENV, raising=False)
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.OWNER_ENV, raising=False)
    chaos.disable()
    scale = SMOKE.with_(
        n_train=48, n_test=24, image_size=8, num_classes=4, base_width=2,
        parent_epochs=1, retrain_epochs=0, target_ratios=(0.4,),
        n_repetitions=1,
    )
    ledger = observe.configure(dir=tmp_path / "obs")
    yield scale, ledger
    chaos.disable()
    observe.shutdown()


class TestDegradeAndResume:
    def test_worker_crash_degrades_then_resumes_warm(self, micro_zoo, tmp_path):
        from repro.experiments import ZooSpec, build_zoo

        scale, ledger = micro_zoo
        specs = [ZooSpec("cifar", "resnet20", m, 0) for m in ("wt", "ft")]
        ft_key = ZooSpec("cifar", "resnet20", "ft", 0).key(scale)

        # Hard-kill (os._exit) every worker that picks up the ft cell.
        # Workers are forked children, not the chaos owner, so the kill
        # is a real mid-build crash the engine must detect and retry.
        chaos.configure(crash_rate=1.0, seed=5, only_keys=("-ft-",))
        degraded = build_zoo(
            specs, scale, jobs=2, on_error="collect", max_retries=1
        )
        chaos.disable()

        # Surviving cells completed: parent + wt published, only ft died.
        assert degraded.degraded
        assert len(degraded.cells) == 2
        assert len(list((tmp_path / "zoo").glob("*.npz"))) == 2
        (failure,) = degraded.failures
        assert failure.key == ft_key
        assert failure.kind == KIND_CRASH
        assert failure.error_type == "WorkerCrashError"
        assert failure.attempts == 2  # first run + one retry, both killed

        manifest = FailureManifest.load(degraded.manifest_path)
        assert manifest.keys == [ft_key]
        assert manifest.failures[0].payload["method"] == "ft"

        # Resume with chaos off: only the ft cell is recomputed; the
        # parent dependency resolves as a warm cache hit.
        resumed = resume_zoo(degraded.manifest_path, scale, jobs=1)
        assert not resumed.degraded
        parent_cell, ft_cell = resumed.cells
        assert parent_cell.cached and not ft_cell.cached
        assert len(list((tmp_path / "zoo").glob("*.npz"))) == 3

        observe.shutdown()
        report = load_report(ledger)
        # Cache accounting across both runs: misses are parent + wt from
        # the degraded build plus ft on resume; the single hit is the
        # resume's parent probe — i.e. exactly the failed cell was redone.
        assert report.counters.get("zoo.cache_hit", 0) == 1
        assert report.counters.get("zoo.cache_miss", 0) == 3
        # Resilience rollup: two crash detections (original + retry), one
        # dead cell, one degraded grid, one resume.
        rollup = report.resilience
        assert rollup is not None
        assert rollup["crashes"] == 2
        assert rollup["failed_cells"] == 1
        assert rollup["degraded_grids"] == 1
        assert rollup["resumes"] == 1
        assert "resilience:" in report.render()
