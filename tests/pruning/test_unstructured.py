"""WT and SiPP: selection correctness, targets, monotonicity."""

import numpy as np
import pytest

from repro import nn
from repro.pruning import SiPP, WeightThresholding, model_prune_ratio
from repro.pruning.base import collect_activation_stats, global_threshold_prune
from repro.pruning.mask import prunable_layers
from repro.pruning.sipp import relative_weight_sensitivity

from tests.conftest import make_tiny_cnn


def sample_batch(rng, shape=(8, 3, 8, 8)):
    return rng.standard_normal(shape).astype(np.float32)


class TestGlobalThreshold:
    def test_achieves_exact_count(self):
        model = make_tiny_cnn()
        sens = {n: np.abs(l.weight.data) for n, l in prunable_layers(model)}
        achieved = global_threshold_prune(model, sens, 0.5)
        assert achieved == pytest.approx(0.5, abs=0.01)

    def test_prunes_lowest_sensitivity(self, rng):
        layer = nn.Linear(4, 2, bias=False, rng=rng)
        model = nn.Sequential(layer)
        sens = {"0": np.arange(8, dtype=float).reshape(2, 4)}
        global_threshold_prune(model, sens, 0.5)
        # Lowest four sensitivities (0..3) = first row pruned.
        np.testing.assert_array_equal(layer.weight_mask, [[0, 0, 0, 0], [1, 1, 1, 1]])


class TestWT:
    def test_target_achieved(self):
        model = make_tiny_cnn()
        achieved = WeightThresholding().prune(model, 0.7)
        assert achieved == pytest.approx(0.7, abs=0.01)
        assert model_prune_ratio(model) == pytest.approx(achieved)

    def test_prunes_smallest_magnitudes(self, rng):
        layer = nn.Linear(3, 2, bias=False, rng=rng)
        layer.weight.data[:] = [[0.1, -5.0, 3.0], [-0.2, 0.05, 2.0]]
        model = nn.Sequential(layer)
        WeightThresholding().prune(model, 0.5)
        np.testing.assert_array_equal(layer.weight_mask, [[0, 1, 1], [0, 0, 1]])

    def test_monotone_iterative(self):
        model = make_tiny_cnn()
        wt = WeightThresholding()
        wt.prune(model, 0.3)
        masks_30 = {n: l.weight_mask.copy() for n, l in prunable_layers(model)}
        wt.prune(model, 0.6)
        for n, l in prunable_layers(model):
            # no weight revived
            assert not ((masks_30[n] == 0) & (l.weight_mask == 1)).any()

    def test_decreasing_target_raises(self):
        model = make_tiny_cnn()
        wt = WeightThresholding()
        wt.prune(model, 0.5)
        with pytest.raises(ValueError, match="monotone"):
            wt.prune(model, 0.3)

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_invalid_target_raises(self, bad):
        with pytest.raises(ValueError):
            WeightThresholding().prune(make_tiny_cnn(), bad)

    def test_zero_target_noop(self):
        model = make_tiny_cnn()
        WeightThresholding().prune(model, 0.0)
        assert model_prune_ratio(model) == 0.0


class TestActivationStats:
    def test_captures_all_prunable_layers(self, rng):
        model = make_tiny_cnn()
        stats = collect_activation_stats(model, sample_batch(rng))
        for name, layer in prunable_layers(model):
            assert name in stats
            expected_len = (
                layer.in_channels if isinstance(layer, nn.Conv2d) else layer.in_features
            )
            assert stats[name].shape == (expected_len,)
            assert (stats[name] >= 0).all()

    def test_eval_mode_and_hooks_removed(self, rng):
        model = make_tiny_cnn()
        model.train()
        collect_activation_stats(model, sample_batch(rng))
        assert model.training  # restored
        assert all(not m._forward_hooks for m in model.modules())


class TestRelativeSensitivity:
    def test_rows_sum_to_one_linear(self, rng):
        w = rng.standard_normal((4, 6))
        a = rng.random(6)
        s = relative_weight_sensitivity(w, a)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, rtol=1e-5)

    def test_rows_sum_to_one_conv(self, rng):
        w = rng.standard_normal((4, 3, 3, 3))
        a = rng.random(3)
        s = relative_weight_sensitivity(w, a)
        np.testing.assert_allclose(s.sum(axis=(1, 2, 3)), 1.0, rtol=1e-5)

    def test_zero_activation_kills_sensitivity(self, rng):
        w = rng.standard_normal((2, 3)) + 1.0
        a = np.array([1.0, 0.0, 1.0])
        s = relative_weight_sensitivity(w, a)
        np.testing.assert_allclose(s[:, 1], 0.0, atol=1e-9)

    def test_bad_ndim_raises(self):
        with pytest.raises(ValueError):
            relative_weight_sensitivity(np.zeros((2, 2, 2)), np.zeros(2))


class TestSiPP:
    def test_requires_sample(self):
        with pytest.raises(ValueError, match="data-informed"):
            SiPP().prune(make_tiny_cnn(), 0.5, sample_inputs=None)

    def test_target_achieved(self, rng):
        model = make_tiny_cnn()
        achieved = SiPP().prune(model, 0.6, sample_batch(rng))
        assert achieved == pytest.approx(0.6, abs=0.01)

    def test_differs_from_wt(self, rng):
        """Data-informed selection must not coincide with magnitude pruning."""
        a, b = make_tiny_cnn(seed=3), make_tiny_cnn(seed=3)
        WeightThresholding().prune(a, 0.5)
        SiPP().prune(b, 0.5, sample_batch(rng))
        same = all(
            np.array_equal(la.weight_mask, lb.weight_mask)
            for (_, la), (_, lb) in zip(prunable_layers(a), prunable_layers(b))
        )
        assert not same

    def test_monotone_iterative(self, rng):
        model = make_tiny_cnn()
        sipp = SiPP()
        sipp.prune(model, 0.3, sample_batch(rng))
        masks = {n: l.weight_mask.copy() for n, l in prunable_layers(model)}
        sipp.prune(model, 0.7, sample_batch(rng))
        for n, l in prunable_layers(model):
            assert not ((masks[n] == 0) & (l.weight_mask == 1)).any()
