"""Low-rank decomposition and the baseline families: math, masks, oracles.

Covers the three families added on top of the paper's four: ``lowrank``
(ALDS-style truncated-SVD channel decomposition), ``uniform`` (per-layer
magnitude), and ``random`` (seeded control arm) — plus the differential
oracles (masked-forward equivalence, save/load round-trip) and a compiled
inference-engine parity smoke over a lowrank-pruned model.
"""

import numpy as np
import pytest

from repro.pruning import (
    LowRankDecomposition,
    RandomPruning,
    UniformMagnitude,
    build_method,
    model_prune_ratio,
)
from repro.pruning.lowrank import (
    lowrank_channel_energy,
    project_to_rank,
    retained_rank,
)
from repro.pruning.mask import prunable_layers, structured_prunable_layers
from repro.pruning.structured import pruned_channels
from repro.verify.oracles import oracle_masked_forward, oracle_save_load_roundtrip

from tests.conftest import make_tiny_cnn


def batch(seed=0, shape=(4, 3, 8, 8)):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestLowRankMath:
    def test_retained_rank_bounds(self):
        w = np.zeros((8, 4, 3, 3))  # rank(M) = min(8, 36) = 8
        assert retained_rank(w, 1.0) == 8
        assert retained_rank(w, 0.5) == 4
        assert retained_rank(w, 1e-9) == 1  # never below one direction

    def test_energy_sums_to_retained_frobenius_mass(self, rng):
        w = rng.standard_normal((6, 5, 3, 3))
        energy = lowrank_channel_energy(w, 0.5)
        assert energy.shape == (5,)
        m = w.reshape(6, -1)
        s = np.linalg.svd(m, compute_uv=False)
        k = retained_rank(w, 0.5)
        np.testing.assert_allclose(energy.sum(), (s[:k] ** 2).sum(), rtol=1e-10)

    def test_full_rank_energy_is_column_norms(self, rng):
        w = rng.standard_normal((6, 5, 3, 3))
        energy = lowrank_channel_energy(w, 1.0)
        expected = (w ** 2).sum(axis=(0, 2, 3))
        np.testing.assert_allclose(energy, expected, rtol=1e-9)

    def test_projection_is_best_rank_k(self, rng):
        w = rng.standard_normal((6, 5, 3, 3)).astype(np.float32)
        recon = project_to_rank(w, 0.5)
        assert recon.shape == w.shape and recon.dtype == w.dtype
        k = retained_rank(w, 0.5)
        s = np.linalg.svd(recon.reshape(6, -1).astype(np.float64), compute_uv=False)
        # Rank collapsed to k: trailing singular values vanish.
        assert s[k:].max() < 1e-5 * s[0]

    def test_low_energy_channel_scores_low(self, rng):
        w = rng.standard_normal((6, 5, 3, 3))
        w[:, 2] *= 1e-4  # channel 2 carries almost no mass
        energy = lowrank_channel_energy(w, 0.5)
        assert energy.argmin() == 2


class TestLowRankMethod:
    def test_prunes_whole_channels(self):
        model = make_tiny_cnn()
        LowRankDecomposition(rank_frac=0.5).prune(model, 0.4)
        assert any(
            pruned_channels(layer).any()
            for _, layer in structured_prunable_layers(model)
        )

    def test_projection_preserves_mask_zeros(self):
        model = make_tiny_cnn()
        LowRankDecomposition(rank_frac=0.5, project=True).prune(model, 0.4)
        for _, layer in prunable_layers(model):
            np.testing.assert_array_equal(
                layer.weight.data, layer.weight.data * layer.weight_mask
            )

    def test_project_false_keeps_original_weights(self):
        model_a = make_tiny_cnn(seed=3)
        model_b = make_tiny_cnn(seed=3)
        LowRankDecomposition(rank_frac=0.5, project=False).prune(model_a, 0.4)
        reference = {n: l.weight.data for n, l in prunable_layers(model_b)}
        for name, layer in prunable_layers(model_a):
            surviving = layer.weight_mask == 1
            np.testing.assert_array_equal(
                layer.weight.data[surviving], reference[name][surviving]
            )

    def test_projection_changes_surviving_weights(self):
        model_a = make_tiny_cnn(seed=3)
        model_b = make_tiny_cnn(seed=3)
        LowRankDecomposition(rank_frac=0.25, project=True).prune(model_a, 0.4)
        LowRankDecomposition(rank_frac=0.25, project=False).prune(model_b, 0.4)
        diff = [
            np.abs(a.weight.data - b.weight.data).max()
            for (_, a), (_, b) in zip(
                structured_prunable_layers(model_a),
                structured_prunable_layers(model_b),
            )
        ]
        assert max(diff) > 1e-6

    def test_monotone_over_ladder(self):
        model = make_tiny_cnn()
        method = LowRankDecomposition(rank_frac=0.5)
        method.prune(model, 0.3)
        masks = {n: l.weight_mask.copy() for n, l in prunable_layers(model)}
        method.prune(model, 0.6)
        for n, l in prunable_layers(model):
            assert not ((masks[n] == 0) & (l.weight_mask == 1)).any()


class TestBaselines:
    def test_uniform_same_fraction_per_layer(self):
        model = make_tiny_cnn()
        UniformMagnitude().prune(model, 0.5)
        for _, layer in prunable_layers(model):
            layer_ratio = 1.0 - layer.weight_mask.mean()
            assert layer_ratio == pytest.approx(0.5, abs=0.5 / layer.weight.size + 1e-9)

    def test_uniform_prunes_smallest_per_layer(self, rng):
        from repro import nn

        big = nn.Linear(4, 2, bias=False, rng=rng)
        small = nn.Linear(4, 2, bias=False, rng=rng)
        big.weight.data[:] = np.arange(1, 9).reshape(2, 4)
        small.weight.data[:] = np.arange(1, 9).reshape(2, 4) * 1e-3
        model = nn.Sequential(big, small)
        UniformMagnitude().prune(model, 0.5)
        # Global magnitude would wipe `small` entirely; uniform takes the
        # lowest half of each layer independently.
        np.testing.assert_array_equal(big.weight_mask, [[0, 0, 0, 0], [1, 1, 1, 1]])
        np.testing.assert_array_equal(small.weight_mask, [[0, 0, 0, 0], [1, 1, 1, 1]])

    def test_random_is_seed_deterministic(self):
        masks = []
        for _ in range(2):
            model = make_tiny_cnn(seed=2)
            RandomPruning(seed=11).prune(model, 0.6)
            masks.append({n: l.weight_mask.copy() for n, l in prunable_layers(model)})
        for name in masks[0]:
            np.testing.assert_array_equal(masks[0][name], masks[1][name])

    def test_random_seeds_differ(self):
        model_a = make_tiny_cnn(seed=2)
        model_b = make_tiny_cnn(seed=2)
        RandomPruning(seed=0).prune(model_a, 0.6)
        RandomPruning(seed=1).prune(model_b, 0.6)
        same = all(
            np.array_equal(a.weight_mask, b.weight_mask)
            for (_, a), (_, b) in zip(
                prunable_layers(model_a), prunable_layers(model_b)
            )
        )
        assert not same

    def test_random_ladder_redraws_fresh(self):
        model = make_tiny_cnn(seed=2)
        method = RandomPruning(seed=0)
        method.prune(model, 0.3)
        masks = {n: l.weight_mask.copy() for n, l in prunable_layers(model)}
        method.prune(model, 0.6)
        # Monotone and strictly more pruned.
        for n, l in prunable_layers(model):
            assert not ((masks[n] == 0) & (l.weight_mask == 1)).any()
        assert model_prune_ratio(model) == pytest.approx(0.6, abs=0.01)


NEW_FAMILIES = ["lowrank", "uniform", "random"]


class TestOracles:
    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_masked_forward_equivalence(self, name):
        model = make_tiny_cnn()
        build_method(name).prune(model, 0.5)
        report = oracle_masked_forward(model, batch())
        assert report.passed, report.summary()

    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_state_save_load_roundtrip(self, name):
        model = make_tiny_cnn()
        method = build_method(name)
        method.prune(model, 0.5)
        report = oracle_save_load_roundtrip(
            model.state_dict(), {"method_spec": method.spec_string()}
        )
        assert report.passed, report.summary()


class TestEngineParity:
    def test_compiled_engine_matches_module_for_lowrank(self):
        from repro.autograd import Tensor, no_grad
        from repro.infer import InferenceEngine

        model = make_tiny_cnn()
        build_method("lowrank(rank_frac=0.5)").prune(model, 0.4)
        images = batch(seed=5, shape=(6, 3, 8, 8))
        engine = InferenceEngine(model, batch_size=8)
        got = engine.logits(images)
        model.eval()
        with no_grad():
            want = model(Tensor(images)).data
        np.testing.assert_allclose(got, want, atol=1e-4)
        assert engine.compiled_for(images)
