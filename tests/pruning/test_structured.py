"""FT and PFP: channel selection, allocation, targets, monotonicity."""

import numpy as np
import pytest

from repro import nn
from repro.pruning import FilterThresholding, ProvableFilterPruning, model_prune_ratio
from repro.pruning.ft import channel_l1_sensitivity
from repro.pruning.mask import structured_prunable_layers
from repro.pruning.pfp import channel_linf_sensitivity
from repro.pruning.structured import (
    apply_channel_counts,
    channel_weight_cost,
    pruned_channels,
)

from tests.conftest import make_tiny_cnn


def sample_batch(rng, shape=(8, 3, 8, 8)):
    return rng.standard_normal(shape).astype(np.float32)


class TestStructuredHelpers:
    def test_channel_weight_cost(self):
        conv = nn.Conv2d(4, 6, 3)
        assert channel_weight_cost(conv) == 6 * 9

    def test_pruned_channels_detects_columns(self):
        conv = nn.Conv2d(4, 6, 3)
        mask = np.ones_like(conv.weight_mask)
        mask[:, 2] = 0
        conv.set_weight_mask(mask)
        np.testing.assert_array_equal(pruned_channels(conv), [False, False, True, False])

    def test_apply_counts_prunes_lowest(self, rng):
        model = make_tiny_cnn()
        name, layer = structured_prunable_layers(model)[0]
        sens = {n: np.arange(l.in_channels, dtype=float) for n, l in structured_prunable_layers(model)}
        apply_channel_counts(model, sens, {name: 2})
        np.testing.assert_array_equal(pruned_channels(layer)[:2], [True, True])
        assert pruned_channels(layer)[2:].sum() == 0

    def test_cannot_prune_all_channels(self):
        model = make_tiny_cnn()
        name, layer = structured_prunable_layers(model)[0]
        sens = {n: np.ones(l.in_channels) for n, l in structured_prunable_layers(model)}
        with pytest.raises(ValueError, match="cannot prune all"):
            apply_channel_counts(model, sens, {name: layer.in_channels})


class TestSensitivities:
    def test_ft_l1_per_input_channel(self, rng):
        w = rng.standard_normal((5, 3, 2, 2))
        s = channel_l1_sensitivity(w)
        assert s.shape == (3,)
        np.testing.assert_allclose(s[0], np.abs(w[:, 0]).sum(), rtol=1e-6)

    def test_pfp_linf_bounded_by_one(self, rng):
        w = rng.standard_normal((5, 3, 2, 2))
        a = rng.random(3) + 0.1
        s = channel_linf_sensitivity(w, a)
        assert s.shape == (3,)
        assert (s > 0).all() and (s <= 1).all()


class TestFT:
    def test_target_roughly_achieved(self):
        model = make_tiny_cnn()
        achieved = FilterThresholding().prune(model, 0.3)
        # Channel granularity limits precision; must reach the target.
        assert achieved >= 0.3
        assert achieved < 0.55

    def test_prunes_whole_columns(self):
        model = make_tiny_cnn()
        FilterThresholding().prune(model, 0.3)
        for _, layer in structured_prunable_layers(model):
            colsum = layer.weight_mask.sum(axis=(0, 2, 3))
            full = layer.weight_mask[:, 0].size
            assert set(np.unique(colsum)) <= {0.0, float(full)}

    def test_uniform_allocation(self):
        """FT prunes (roughly) the same channel fraction in every layer."""
        model = make_tiny_cnn()
        FilterThresholding().prune(model, 0.4)
        fractions = [
            pruned_channels(l).mean() for _, l in structured_prunable_layers(model)
        ]
        assert max(fractions) - min(fractions) < 0.35

    def test_never_prunes_first_conv_or_linear(self):
        model = make_tiny_cnn()
        FilterThresholding().prune(model, 0.5)
        first_conv = model[0]
        linear = model[-1]
        assert first_conv.num_pruned == 0
        assert linear.num_pruned == 0

    def test_unreachable_target_clamps(self):
        model = make_tiny_cnn()
        achieved = FilterThresholding().prune(model, 0.95)
        assert achieved < 0.95  # structured cannot touch every weight
        # at least one channel must survive per layer
        for _, layer in structured_prunable_layers(model):
            assert pruned_channels(layer).sum() < layer.in_channels

    def test_monotone_iterative(self):
        model = make_tiny_cnn()
        ft = FilterThresholding()
        ft.prune(model, 0.2)
        before = {n: pruned_channels(l).copy() for n, l in structured_prunable_layers(model)}
        ft.prune(model, 0.4)
        for n, l in structured_prunable_layers(model):
            assert not (before[n] & ~pruned_channels(l)).any()

    def test_no_structured_layers_raises(self, rng):
        model = nn.Sequential(nn.Linear(4, 2, rng=rng))
        with pytest.raises(ValueError, match="no structured"):
            FilterThresholding().prune(model, 0.3)


class TestPFP:
    def test_requires_sample(self):
        with pytest.raises(ValueError, match="data-informed"):
            ProvableFilterPruning().prune(make_tiny_cnn(), 0.3)

    def test_target_roughly_achieved(self, rng):
        model = make_tiny_cnn()
        achieved = ProvableFilterPruning().prune(model, 0.3, sample_batch(rng))
        assert achieved >= 0.3
        assert model_prune_ratio(model) == pytest.approx(achieved)

    def test_prunes_whole_columns(self, rng):
        model = make_tiny_cnn()
        ProvableFilterPruning().prune(model, 0.3, sample_batch(rng))
        for _, layer in structured_prunable_layers(model):
            colsum = layer.weight_mask.sum(axis=(0, 2, 3))
            full = layer.weight_mask[:, 0].size
            assert set(np.unique(colsum)) <= {0.0, float(full)}

    def test_allocation_can_be_nonuniform(self, rng):
        """PFP allocates per-layer budgets from sensitivities, unlike FT."""
        model = make_tiny_cnn(seed=11)
        ProvableFilterPruning().prune(model, 0.45, sample_batch(rng))
        fractions = [
            pruned_channels(l).mean() for _, l in structured_prunable_layers(model)
        ]
        assert len(set(np.round(fractions, 3))) >= 1  # defined for all layers

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            ProvableFilterPruning(gamma=0.0)
        with pytest.raises(ValueError):
            ProvableFilterPruning(gamma=1.0)

    def test_monotone_iterative(self, rng):
        model = make_tiny_cnn()
        pfp = ProvableFilterPruning()
        pfp.prune(model, 0.2, sample_batch(rng))
        before = {n: pruned_channels(l).copy() for n, l in structured_prunable_layers(model)}
        pfp.prune(model, 0.5, sample_batch(rng))
        for n, l in structured_prunable_layers(model):
            assert not (before[n] & ~pruned_channels(l)).any()
