"""Declarative method registry: spec grammar, round-trips, prune behavior.

The property every downstream cache relies on: any accepted spelling of a
method configuration maps onto exactly one canonical spec string, that
string rebuilds an equivalent method, and a live instance serializes back
to the same string.
"""

import numpy as np
import pytest

from repro.pruning import (
    HyperParam,
    SpecError,
    available_methods,
    available_specs,
    build_method,
    canonical_spec,
    describe_methods,
    method_spec,
    model_prune_ratio,
    parse_spec,
    register_method,
    spec_of,
)
from repro.pruning.base import PruneMethod
from repro.pruning.mask import prunable_layers
from repro.pruning.registry import unregister_method
from repro.verify.invariants import (
    check_mask_weight_consistency,
    check_prune_accounting,
    check_structured_masks,
)

from tests.conftest import make_tiny_cnn

ALL_METHODS = available_methods()


def sample_batch(seed=0, shape=(8, 3, 8, 8)):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


def prune_with(name, model, target, **kwargs):
    method = build_method(name, **kwargs)
    sample = sample_batch() if method.data_informed else None
    return method, method.prune(model, target, sample)


class TestSpecGrammar:
    def test_bare_name(self):
        assert parse_spec("wt") == ("wt", {})

    def test_name_case_insensitive(self):
        assert parse_spec("WT") == ("wt", {})
        assert parse_spec("LowRank(rank_frac=0.25)") == (
            "lowrank", {"rank_frac": 0.25}
        )

    def test_kwargs_are_literals(self):
        name, kwargs = parse_spec("random(seed=3, steps=2)")
        assert name == "random"
        assert kwargs == {"seed": 3, "steps": 2}

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "wt(",
            "wt)",
            "1wt",
            "wt(0.5)",  # positional
            "wt(seed=**x)",
            "wt(seed=f())",  # call, not a literal
            "wt(seed=seed)",  # name, not a literal
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)

    def test_non_string_raises(self):
        with pytest.raises(SpecError, match="spec must be a string"):
            parse_spec(None)


class TestCanonical:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_defaults_collapse_to_bare_name(self, name):
        spec = method_spec(name)
        assert canonical_spec(name) == name
        # Spelling every default explicitly is still the bare name.
        assert canonical_spec(name, **spec.defaults()) == name

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_canonical_is_idempotent(self, name):
        once = canonical_spec(name)
        assert canonical_spec(once) == once

    def test_non_default_kwargs_sorted(self):
        assert canonical_spec("lowrank", steps=2, rank_frac=0.25) == (
            "lowrank(rank_frac=0.25, steps=2)"
        )
        assert canonical_spec("lowrank(steps=2, rank_frac=0.25)") == (
            "lowrank(rank_frac=0.25, steps=2)"
        )

    def test_distinct_settings_distinct_strings(self):
        seen = {
            canonical_spec("lowrank", rank_frac=f)
            for f in (0.125, 0.25, 0.5, 0.75, 1.0)
        }
        assert len(seen) == 5

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_instance_round_trips_through_spec_string(self, name):
        spec = method_spec(name)
        # Perturb every numeric hyperparameter off its default.
        kwargs = {}
        for hp in spec.hyperparams:
            if hp.kind is int:
                kwargs[hp.name] = hp.default + 1
            elif hp.kind is float:
                kwargs[hp.name] = hp.default / 2
            elif hp.kind is bool:
                kwargs[hp.name] = not hp.default
        method = build_method(name, **kwargs)
        text = spec_of(method)
        rebuilt = build_method(text)
        assert spec_of(rebuilt) == text
        assert rebuilt.hyperparameters() == method.hyperparameters()


class TestValidation:
    def test_unknown_method_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown pruning method"):
            build_method("magnitude")

    def test_unknown_hyperparameter(self):
        with pytest.raises(SpecError, match="no hyperparameter"):
            build_method("wt", gamma=0.5)

    def test_wrong_type_rejected(self):
        with pytest.raises(SpecError, match="expects int"):
            build_method("random", seed=0.5)
        with pytest.raises(SpecError, match="expects float"):
            build_method("lowrank", rank_frac=True)
        with pytest.raises(SpecError, match="expects bool"):
            build_method("lowrank", project=1)

    def test_bounds_enforced(self):
        with pytest.raises(SpecError, match="steps"):
            build_method("wt", steps=0)
        with pytest.raises(SpecError, match="rank_frac"):
            build_method("lowrank", rank_frac=0.0)  # low-open bound
        with pytest.raises(SpecError, match="gamma"):
            build_method("pfp", gamma=1.0)  # high-open bound

    def test_explicit_kwargs_override_spec_string(self):
        method = build_method("random(seed=1)", seed=9)
        assert method.seed == 9


class TestRegistration:
    def test_duplicate_name_raises(self):
        with pytest.raises(SpecError, match="already registered"):

            @register_method("wt", scoring="magnitude", allocation="global")
            class Dup(PruneMethod):
                def _prune_step(self, model, target_ratio, sample_inputs):
                    return 0.0

    def test_register_and_unregister_ad_hoc_method(self):
        @register_method(
            "everyother",
            scoring="magnitude",
            allocation="uniform",
            hyperparams=(HyperParam("phase", int, 0, low=0, high=1),),
        )
        class EveryOther(PruneMethod):
            """Masks alternating weights (test-only)."""

            def __init__(self, phase=0, steps=1):
                super().__init__(steps=steps)
                self.phase = phase

            def _prune_step(self, model, target_ratio, sample_inputs):
                for _, layer in prunable_layers(model):
                    mask = np.ones(layer.weight.size, dtype=np.float32)
                    mask[self.phase :: 2] = 0.0
                    layer.set_weight_mask(
                        mask.reshape(layer.weight.shape) * layer.weight_mask
                    )
                return model_prune_ratio(model)

        try:
            assert "everyother" in available_methods()
            method = build_method("everyother(phase=1)")
            assert spec_of(method) == "everyother(phase=1)"
            model = make_tiny_cnn()
            assert method.prune(model, 0.0) == pytest.approx(0.5, abs=0.01)
        finally:
            unregister_method("everyother")
        assert "everyother" not in available_methods()

    def test_invalid_axes_rejected(self):
        with pytest.raises(SpecError, match="scoring"):

            @register_method("badaxis", scoring="vibes", allocation="global")
            class Bad(PruneMethod):
                def _prune_step(self, model, target_ratio, sample_inputs):
                    return 0.0


class TestPruneBehavior:
    TARGET = 0.5

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_reaches_target_within_tolerance(self, name):
        model = make_tiny_cnn()
        method, achieved = prune_with(name, model, self.TARGET)
        # Structured methods quantize to whole channels; unstructured ones
        # only to per-layer rounding.
        tol = 0.15 if method.structured else 0.02
        assert achieved == pytest.approx(self.TARGET, abs=tol)
        assert model_prune_ratio(model) == pytest.approx(achieved)

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_invariants_after_prune(self, name):
        model = make_tiny_cnn()
        method, achieved = prune_with(name, model, self.TARGET)
        report = check_mask_weight_consistency(model)
        report = check_prune_accounting(model, achieved, report=report)
        if method.structured:
            report = check_structured_masks(model, report=report)
        assert report.passed, report.summary()

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_steps_schedule_reaches_same_target(self, name):
        model = make_tiny_cnn()
        _, achieved = prune_with(name, model, self.TARGET, steps=3)
        tol = 0.15 if method_spec(name).structured else 0.02
        assert achieved == pytest.approx(self.TARGET, abs=tol)

    def test_steps_are_monotone(self):
        model = make_tiny_cnn()
        ratios = []
        method = build_method("wt", steps=4)
        original = method._prune_step

        def recording(model_, target, sample):
            achieved = original(model_, target, sample)
            ratios.append(achieved)
            return achieved

        method._prune_step = recording
        method.prune(model, 0.8)
        assert len(ratios) == 4
        assert ratios == sorted(ratios)
        assert ratios[-1] == pytest.approx(0.8, abs=0.01)


class TestDescribe:
    def test_table_lists_every_method(self):
        text = describe_methods()
        for name in ALL_METHODS:
            assert name in text

    def test_available_specs_sorted_and_complete(self):
        specs = available_specs()
        assert [s.name for s in specs] == ALL_METHODS
        for spec in specs:
            # Every spec carries the shared schedule knob.
            assert any(hp.name == "steps" for hp in spec.hyperparams)
