"""Prunable-layer enumeration and ratio bookkeeping."""

import numpy as np
import pytest

from repro import nn
from repro.pruning.mask import (
    model_prune_ratio,
    prunable_layers,
    pruned_weights,
    reset_masks,
    structured_prunable_layers,
    total_prunable_weights,
)

from tests.conftest import make_tiny_cnn


class TestEnumeration:
    def test_prunable_layers_are_conv_and_linear(self):
        model = make_tiny_cnn()
        layers = prunable_layers(model)
        assert len(layers) == 4  # 3 convs + 1 linear
        assert all(hasattr(m, "weight_mask") for _, m in layers)

    def test_forward_order(self):
        model = make_tiny_cnn()
        names = [n for n, _ in prunable_layers(model)]
        assert names == sorted(names, key=lambda n: int(n.split(".")[0]))

    def test_structured_skips_image_fed_and_linear(self):
        model = make_tiny_cnn()
        structured = structured_prunable_layers(model)
        # first conv has 3 input channels -> skipped; linear skipped
        assert len(structured) == 2
        assert all(m.in_channels >= 4 for _, m in structured)

    def test_total_prunable_weights(self):
        model = make_tiny_cnn()
        expected = sum(m.weight.size for _, m in prunable_layers(model))
        assert total_prunable_weights(model) == expected


class TestRatios:
    def test_zero_initially(self):
        assert model_prune_ratio(make_tiny_cnn()) == 0.0

    def test_ratio_counts_masked(self):
        model = make_tiny_cnn()
        _, layer = prunable_layers(model)[0]
        mask = np.ones_like(layer.weight_mask)
        mask[0] = 0
        layer.set_weight_mask(mask)
        assert pruned_weights(model) == layer.num_pruned
        assert model_prune_ratio(model) == pytest.approx(
            layer.num_pruned / total_prunable_weights(model)
        )

    def test_no_prunable_raises(self):
        with pytest.raises(ValueError):
            model_prune_ratio(nn.Sequential(nn.ReLU()))

    def test_reset_masks(self):
        model = make_tiny_cnn()
        _, layer = prunable_layers(model)[0]
        mask = np.zeros_like(layer.weight_mask)
        mask[0] = 1
        layer.set_weight_mask(mask)
        reset_masks(model)
        assert model_prune_ratio(model) == 0.0
