"""PRUNERETRAIN pipeline and PruneRun artifacts."""

import numpy as np
import pytest

from repro.pruning import (
    PruneRetrain,
    PruneRun,
    WeightThresholding,
    available_methods,
    build_method,
    model_prune_ratio,
)
from repro.pruning.pipeline import sample_indices

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


@pytest.fixture(scope="module")
def small_run():
    """A 2-target WT run on a briefly trained tiny model."""
    suite = make_tiny_suite(seed=4)
    model = make_tiny_cnn(seed=4)
    trainer = make_tiny_trainer(model, suite, epochs=1, seed=4)
    trainer.train()
    pipeline = PruneRetrain(trainer, WeightThresholding(), retrain_epochs=1)
    return pipeline.run(target_ratios=[0.3, 0.6]), suite


class TestRegistry:
    def test_registered_methods(self):
        assert available_methods() == [
            "ft", "lowrank", "pfp", "random", "sipp", "uniform", "wt",
        ]

    @pytest.mark.parametrize("name", available_methods())
    def test_build(self, name):
        method = build_method(name)
        assert method.name == name

    def test_build_case_insensitive(self):
        assert build_method("WT").name == "wt"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown pruning method"):
            build_method("magnitude")


class TestRun:
    def test_checkpoints_per_target(self, small_run):
        run, _ = small_run
        assert len(run.checkpoints) == 2
        np.testing.assert_allclose(run.ratios, [0.3, 0.6], atol=0.01)

    def test_parent_preserved(self, small_run):
        run, suite = small_run
        model = make_tiny_cnn(seed=4)
        run.restore_parent(model)
        assert model_prune_ratio(model) == 0.0

    def test_checkpoints_restore_with_masks(self, small_run):
        run, _ = small_run
        model = make_tiny_cnn(seed=4)
        run.restore(model, 1)
        assert model_prune_ratio(model) == pytest.approx(0.6, abs=0.01)

    def test_errors_recorded(self, small_run):
        run, _ = small_run
        assert np.isfinite(run.parent_test_error)
        assert np.isfinite(run.test_errors).all()
        assert (run.test_errors >= 0).all() and (run.test_errors <= 1).all()

    def test_meta_records_targets(self, small_run):
        run, _ = small_run
        assert run.meta["target_ratios"] == [0.3, 0.6]

    def test_meta_records_method_spec(self, small_run):
        """Regression: the full method identity must live in the artifact,
        not just the bare name."""
        run, _ = small_run
        assert run.meta["method_spec"] == "wt"
        assert run.meta["method_hyperparams"] == {"steps": 1}
        assert run.meta["retrain_mode"] == "lr_rewind"
        assert run.meta["sample_size"] == 128
        assert isinstance(run.meta["sample_seed"], int)

    def test_meta_spec_captures_hyperparameters(self):
        suite = make_tiny_suite(seed=9)
        model = make_tiny_cnn(seed=9)
        trainer = make_tiny_trainer(model, suite, epochs=1, seed=9)
        trainer.train()
        pipeline = PruneRetrain(
            trainer, build_method("random(seed=5)"), retrain_epochs=0
        )
        run = pipeline.run(target_ratios=[0.5])
        assert run.meta["method_spec"] == "random(seed=5)"
        assert run.meta["method_hyperparams"] == {"seed": 5, "steps": 1}
        rebuilt = build_method(run.meta["method_spec"])
        assert rebuilt.seed == 5


class TestRunValidation:
    def test_rejects_pruned_start(self):
        suite = make_tiny_suite(seed=5)
        model = make_tiny_cnn(seed=5)
        WeightThresholding().prune(model, 0.2)
        trainer = make_tiny_trainer(model, suite, epochs=1, seed=5)
        pipeline = PruneRetrain(trainer, WeightThresholding(), retrain_epochs=1)
        with pytest.raises(ValueError, match="already pruned"):
            pipeline.run(target_ratios=[0.5])

    def test_rejects_out_of_range_targets(self):
        suite = make_tiny_suite(seed=5)
        trainer = make_tiny_trainer(make_tiny_cnn(seed=5), suite, epochs=1)
        pipeline = PruneRetrain(trainer, WeightThresholding(), retrain_epochs=1)
        with pytest.raises(ValueError, match="target ratios"):
            pipeline.run(target_ratios=[0.5, 1.0])

    def test_duplicate_targets_raise(self):
        """Regression: a repeated target silently doubled the prune-retrain
        work and produced duplicate checkpoints."""
        suite = make_tiny_suite(seed=5)
        trainer = make_tiny_trainer(make_tiny_cnn(seed=5), suite, epochs=1)
        pipeline = PruneRetrain(trainer, WeightThresholding(), retrain_epochs=1)
        with pytest.raises(ValueError, match="duplicate target ratios"):
            pipeline.run(target_ratios=[0.3, 0.6, 0.3])

    def test_targets_sorted_internally(self):
        suite = make_tiny_suite(seed=6)
        trainer = make_tiny_trainer(make_tiny_cnn(seed=6), suite, epochs=1, seed=6)
        trainer.train()
        pipeline = PruneRetrain(trainer, WeightThresholding(), retrain_epochs=0)
        run = pipeline.run(target_ratios=[0.6, 0.3])
        assert run.checkpoints[0].target_ratio == 0.3


class TestSampleInputs:
    def test_sample_indices_stratified_on_sorted_labels(self):
        labels = np.repeat(np.arange(4), 25)  # class-ordered, worst case
        idx = sample_indices(labels, 12, seed=0)
        counts = np.bincount(labels[idx], minlength=4)
        np.testing.assert_array_equal(counts, [3, 3, 3, 3])

    def test_sample_indices_small_sample_spans_classes(self):
        labels = np.repeat(np.arange(8), 10)
        idx = sample_indices(labels, 4, seed=1)
        assert len(np.unique(labels[idx])) == 4  # four distinct classes

    def test_sample_indices_pure_function_of_seed(self):
        labels = np.repeat(np.arange(4), 25)
        np.testing.assert_array_equal(
            sample_indices(labels, 12, 5), sample_indices(labels, 12, 5)
        )
        assert not np.array_equal(
            sample_indices(labels, 12, 5), sample_indices(labels, 12, 6)
        )

    def test_sample_indices_dense_label_fallback(self):
        labels = np.zeros((10, 4, 4), dtype=np.int64)  # segmentation maps
        idx = sample_indices(labels, 4, 0)
        assert len(idx) == 4
        assert len(set(idx.tolist())) == 4

    def test_pipeline_sample_is_not_the_head_slice(self):
        """Regression: the sensitivity sample was ``images[:sample_size]``
        verbatim — biased to a single class on class-ordered data."""
        suite = make_tiny_suite(seed=8)
        model = make_tiny_cnn(seed=8)
        trainer = make_tiny_trainer(model, suite, epochs=1, seed=8)
        pipeline = PruneRetrain(
            trainer, WeightThresholding(), retrain_epochs=1, sample_size=16
        )
        train = suite.train_set()
        sample = pipeline._sample_inputs()
        head = trainer.normalizer(train.images[:16])
        assert sample.shape == head.shape
        assert not np.array_equal(sample, head)
        # Deterministic: the draw is a pure function of the trainer seed.
        np.testing.assert_array_equal(sample, pipeline._sample_inputs())
        expected = trainer.normalizer(
            train.images[sample_indices(train.labels, 16, pipeline.sample_seed)]
        )
        np.testing.assert_array_equal(sample, expected)


class TestSaveLoad:
    def test_roundtrip(self, small_run, tmp_path):
        run, _ = small_run
        path = run.save(tmp_path / "run")
        loaded = PruneRun.load(path)
        assert loaded.method_name == run.method_name
        assert loaded.parent_test_error == run.parent_test_error
        assert len(loaded.checkpoints) == len(run.checkpoints)
        for a, b in zip(loaded.checkpoints, run.checkpoints):
            assert a.achieved_ratio == b.achieved_ratio
            assert a.test_error == b.test_error
            for key in b.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])
        for key in run.parent_state:
            np.testing.assert_array_equal(loaded.parent_state[key], run.parent_state[key])

    def test_loaded_run_restores_into_model(self, small_run, tmp_path):
        run, _ = small_run
        loaded = PruneRun.load(run.save(tmp_path / "run2"))
        model = make_tiny_cnn(seed=4)
        loaded.restore(model, 0)
        assert model_prune_ratio(model) == pytest.approx(0.3, abs=0.01)

    def test_method_spec_survives_roundtrip(self, small_run, tmp_path):
        """Regression: method hyperparameters were lost from saved artifacts."""
        run, _ = small_run
        loaded = PruneRun.load(run.save(tmp_path / "run3"))
        assert loaded.meta["method_spec"] == run.meta["method_spec"]
        assert loaded.meta["method_hyperparams"] == run.meta["method_hyperparams"]
        assert loaded.meta["sample_seed"] == run.meta["sample_seed"]
