"""Retrain-mode variants of PRUNERETRAIN (lr_rewind / finetune / weight_rewind)."""

import numpy as np
import pytest

from repro.optim import MultiStepLR
from repro.pruning import PruneRetrain, WeightThresholding, model_prune_ratio
from repro.pruning.mask import prunable_layers
from repro.training import TrainConfig, Trainer

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


def build(mode, seed=12, retrain_epochs=1):
    suite = make_tiny_suite(seed=seed)
    model = make_tiny_cnn(seed=seed)
    trainer = make_tiny_trainer(model, suite, epochs=1, seed=seed)
    trainer.train()
    pipeline = PruneRetrain(
        trainer, WeightThresholding(), retrain_epochs=retrain_epochs, retrain_mode=mode
    )
    return pipeline, model


class TestValidation:
    def test_unknown_mode_raises(self):
        suite = make_tiny_suite()
        trainer = make_tiny_trainer(make_tiny_cnn(), suite, epochs=1)
        with pytest.raises(ValueError, match="retrain_mode"):
            PruneRetrain(trainer, WeightThresholding(), retrain_mode="magic")


class TestModesRun:
    @pytest.mark.parametrize("mode", PruneRetrain.RETRAIN_MODES)
    def test_run_produces_valid_checkpoints(self, mode):
        pipeline, model = build(mode)
        run = pipeline.run(target_ratios=[0.4, 0.7])
        np.testing.assert_allclose(run.ratios, [0.4, 0.7], atol=0.01)
        assert np.isfinite(run.test_errors).all()
        assert model_prune_ratio(model) == pytest.approx(0.7, abs=0.01)


class TestWeightRewind:
    def test_surviving_weights_rewound_to_parent(self):
        """With 0 retrain epochs, weight_rewind leaves surviving weights at
        exactly their parent values (masks applied on top)."""
        pipeline, model = build("weight_rewind", retrain_epochs=0)
        run = pipeline.run(target_ratios=[0.5])
        for name, layer in prunable_layers(model):
            parent_w = run.parent_state[f"{name}.weight"]
            mask = layer.weight_mask
            np.testing.assert_allclose(layer.weight.data, parent_w * mask, rtol=1e-6)

    def test_lr_rewind_keeps_retrained_weights(self):
        """Without rewinding + 0 retrain epochs, the pruned weights are the
        parent's masked weights too — but after retraining they drift."""
        pipeline, model = build("lr_rewind", retrain_epochs=1)
        run = pipeline.run(target_ratios=[0.5])
        drift = 0.0
        for name, layer in prunable_layers(model):
            parent_w = run.parent_state[f"{name}.weight"] * layer.weight_mask
            drift += np.abs(layer.weight.data - parent_w).sum()
        assert drift > 0


class TestFinetune:
    def test_finetune_uses_decayed_lr(self):
        pipeline, model = build("finetune", retrain_epochs=1)
        final_factor = pipeline._finetune_lr_factor()
        assert final_factor < 1.0  # the tiny trainer decays at 75% of epochs
        run = pipeline.run(target_ratios=[0.4])
        assert len(run.checkpoints) == 1

    def test_factor_is_last_trainer_step_not_epochs(self):
        """Regression: the finetune LR must be the schedule at the last
        position the trainer ever evaluated (``epochs - 1/n_batches``), not
        at ``epochs`` itself.  A step boundary exactly at ``epochs`` is one
        step past the end of training — the decayed region was never
        reached, so finetuning must not start there."""
        suite = make_tiny_suite(seed=13)
        model = make_tiny_cnn(seed=13)
        config = TrainConfig(
            epochs=2,
            batch_size=32,
            lr=0.05,
            warmup_epochs=0.25,
            schedule=MultiStepLR([2.0], 0.1),  # boundary exactly at epochs
            seed=13,
        )
        trainer = Trainer(model, suite, config)
        pipeline = PruneRetrain(
            trainer, WeightThresholding(), retrain_epochs=1, retrain_mode="finetune"
        )
        # One step past the end the schedule *has* decayed...
        assert config.schedule(config.epochs) == pytest.approx(0.1)
        # ...but the last step the trainer took had not.
        assert pipeline._finetune_lr_factor() == pytest.approx(1.0)
