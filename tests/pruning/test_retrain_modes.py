"""Retrain-mode variants of PRUNERETRAIN (lr_rewind / finetune / weight_rewind)."""

import numpy as np
import pytest

from repro.pruning import PruneRetrain, WeightThresholding, model_prune_ratio
from repro.pruning.mask import prunable_layers

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


def build(mode, seed=12, retrain_epochs=1):
    suite = make_tiny_suite(seed=seed)
    model = make_tiny_cnn(seed=seed)
    trainer = make_tiny_trainer(model, suite, epochs=1, seed=seed)
    trainer.train()
    pipeline = PruneRetrain(
        trainer, WeightThresholding(), retrain_epochs=retrain_epochs, retrain_mode=mode
    )
    return pipeline, model


class TestValidation:
    def test_unknown_mode_raises(self):
        suite = make_tiny_suite()
        trainer = make_tiny_trainer(make_tiny_cnn(), suite, epochs=1)
        with pytest.raises(ValueError, match="retrain_mode"):
            PruneRetrain(trainer, WeightThresholding(), retrain_mode="magic")


class TestModesRun:
    @pytest.mark.parametrize("mode", PruneRetrain.RETRAIN_MODES)
    def test_run_produces_valid_checkpoints(self, mode):
        pipeline, model = build(mode)
        run = pipeline.run(target_ratios=[0.4, 0.7])
        np.testing.assert_allclose(run.ratios, [0.4, 0.7], atol=0.01)
        assert np.isfinite(run.test_errors).all()
        assert model_prune_ratio(model) == pytest.approx(0.7, abs=0.01)


class TestWeightRewind:
    def test_surviving_weights_rewound_to_parent(self):
        """With 0 retrain epochs, weight_rewind leaves surviving weights at
        exactly their parent values (masks applied on top)."""
        pipeline, model = build("weight_rewind", retrain_epochs=0)
        run = pipeline.run(target_ratios=[0.5])
        for name, layer in prunable_layers(model):
            parent_w = run.parent_state[f"{name}.weight"]
            mask = layer.weight_mask
            np.testing.assert_allclose(layer.weight.data, parent_w * mask, rtol=1e-6)

    def test_lr_rewind_keeps_retrained_weights(self):
        """Without rewinding + 0 retrain epochs, the pruned weights are the
        parent's masked weights too — but after retraining they drift."""
        pipeline, model = build("lr_rewind", retrain_epochs=1)
        run = pipeline.run(target_ratios=[0.5])
        drift = 0.0
        for name, layer in prunable_layers(model):
            parent_w = run.parent_state[f"{name}.weight"] * layer.weight_mask
            drift += np.abs(layer.weight.data - parent_w).sum()
        assert drift > 0


class TestFinetune:
    def test_finetune_uses_decayed_lr(self):
        pipeline, model = build("finetune", retrain_epochs=1)
        cfg = pipeline.trainer.config
        final_factor = cfg.schedule(cfg.epochs)
        assert final_factor < 1.0  # the tiny trainer decays at 75% of epochs
        run = pipeline.run(target_ratios=[0.4])
        assert len(run.checkpoints) == 1
