"""Fast chaos smoke: injected faults flow through the engine and recover.

This is the tier-1 companion to the nightly chaos suite: milliseconds,
fully deterministic, and it exercises the full injection → classification
→ retry → recovery loop end to end through ``parallel_map``.
"""

from __future__ import annotations

import pytest

from repro.parallel import parallel_map
from repro.resilience import RetryPolicy, chaos
from repro.resilience.chaos import ChaosError


@pytest.fixture(autouse=True)
def chaos_isolation(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.OWNER_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()


def _double(x):
    return 2 * x


def test_injected_exceptions_recover_on_retry():
    # Every cell fails its first attempt, then runs clean: the map must
    # converge with one retry per cell and zero failures.
    chaos.configure(exception_rate=1.0, seed=2, first_attempts_only=1)
    out = parallel_map(
        _double,
        list(range(6)),
        jobs=1,
        on_error="collect",
        retry_policy=RetryPolicy(max_retries=1, base_delay=0.0, jitter=0.0),
    )
    assert out.ok
    assert out.results == [0, 2, 4, 6, 8, 10]
    assert out.retries == 6


def test_exhausted_chaos_lands_in_the_failure_record():
    chaos.configure(exception_rate=1.0, seed=2)  # fails on every attempt
    out = parallel_map(
        _double,
        [1],
        jobs=1,
        on_error="collect",
        retry_policy=RetryPolicy(max_retries=1, base_delay=0.0, jitter=0.0),
    )
    assert not out.ok
    (failure,) = out.failures
    assert failure.error_type == "ChaosError"
    assert failure.retryable and failure.attempts == 2


def test_raise_mode_surfaces_the_chaos_error():
    chaos.configure(exception_rate=1.0, seed=2)
    with pytest.raises(ChaosError, match="injected worker exception"):
        parallel_map(
            _double,
            [1],
            jobs=1,
            retry_policy=RetryPolicy(max_retries=0, base_delay=0.0, jitter=0.0),
        )
