"""Deterministic fault injection: spec transport, gating, and the sites."""

from __future__ import annotations

import os

import pytest

from repro.resilience import chaos
from repro.resilience.chaos import DEFAULT_PROFILE, ChaosConfig, ChaosError


@pytest.fixture(autouse=True)
def chaos_isolation(monkeypatch):
    """Every test starts and ends with chaos fully disabled."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.OWNER_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()


class TestSpecTransport:
    def test_round_trip(self):
        config = ChaosConfig(
            exception_rate=0.25,
            crash_rate=0.1,
            delay_rate=0.05,
            delay_seconds=1.5,
            torn_write_rate=0.2,
            seed=7,
            only_keys=("wt", "ft"),
            first_attempts_only=1,
            max_per_key=3,
        )
        assert ChaosConfig.from_spec(config.to_spec()) == config

    @pytest.mark.parametrize("flag", ["1", "true", "ON", "yes"])
    def test_bare_truthy_means_default_profile(self, flag):
        assert ChaosConfig.from_spec(flag) == DEFAULT_PROFILE
        assert DEFAULT_PROFILE.active()

    def test_inactive_config_survives_the_round_trip(self):
        # All-default config must NOT serialize to a bare truthy flag
        # (which would deserialize as DEFAULT_PROFILE and turn chaos on).
        config = ChaosConfig(seed=5)
        assert not config.active()
        spec = config.to_spec()
        parsed = ChaosConfig.from_spec(spec)
        assert parsed == config and not parsed.active()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown REPRO_CHAOS field"):
            ChaosConfig.from_spec("explosion_rate=1.0")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="name=value"):
            ChaosConfig.from_spec("exception_rate")

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_validated(self, rate):
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            ChaosConfig(crash_rate=rate)


class TestLifecycle:
    def test_configure_exports_env_for_workers(self):
        config = chaos.configure(exception_rate=1.0, seed=3)
        assert chaos.enabled()
        assert chaos.current() == config
        # Spec + owner pid exported so forked/spawned workers reconstruct it.
        assert ChaosConfig.from_spec(os.environ[chaos.ENV_VAR]) == config
        assert os.environ[chaos.OWNER_ENV] == str(os.getpid())

    def test_disable_clears_state_and_env(self):
        chaos.configure(exception_rate=1.0)
        chaos.disable()
        assert not chaos.enabled()
        assert chaos.current() is None
        assert chaos.ENV_VAR not in os.environ
        assert chaos.OWNER_ENV not in os.environ

    def test_state_reread_from_env(self, monkeypatch):
        # A worker process has no in-memory state: it must pick the plan
        # up from REPRO_CHAOS on first use.
        monkeypatch.setenv(chaos.ENV_VAR, "exception_rate=1.0,seed=2")
        chaos._state = None
        assert chaos.enabled()
        assert chaos.current().exception_rate == 1.0

    def test_configure_accepts_config_plus_overrides(self):
        base = ChaosConfig(exception_rate=0.5, seed=1)
        config = chaos.configure(base, seed=9)
        assert config.exception_rate == 0.5 and config.seed == 9


class TestWorkerSiteGating:
    def test_exception_deterministic_per_key(self):
        decisions = {}
        for _ in range(2):  # identical across two configure cycles
            chaos.configure(exception_rate=0.5, seed=11)
            round_result = {}
            for i in range(20):
                key = f"cell-{i}"
                try:
                    chaos.on_worker_cell(key, attempt=0)
                    round_result[key] = False
                except ChaosError:
                    round_result[key] = True
            chaos.disable()
            decisions.setdefault("rounds", []).append(round_result)
        first, second = decisions["rounds"]
        assert first == second
        assert any(first.values()) and not all(first.values())

    def test_only_keys_scopes_injection(self):
        chaos.configure(exception_rate=1.0, seed=3, only_keys=("-ft-",))
        chaos.on_worker_cell("cifar-resnet20-wt-rep0", attempt=0)  # no match
        with pytest.raises(ChaosError):
            chaos.on_worker_cell("cifar-resnet20-ft-rep0", attempt=0)

    def test_first_attempts_only_lets_retries_recover(self):
        chaos.configure(exception_rate=1.0, seed=3, first_attempts_only=1)
        with pytest.raises(ChaosError):
            chaos.on_worker_cell("cell", attempt=0)
        chaos.on_worker_cell("cell", attempt=1)  # retry runs clean

    def test_crash_degrades_to_exception_in_owner_process(self):
        # configure() marks this pid as the owner: a hard os._exit here
        # would kill the test runner, so the injection degrades.
        chaos.configure(crash_rate=1.0, seed=3)
        with pytest.raises(ChaosError, match="owner-degraded"):
            chaos.on_worker_cell("cell", attempt=0)

    def test_delay_site_sleeps(self, monkeypatch):
        naps = []
        monkeypatch.setattr(chaos.time, "sleep", naps.append)
        chaos.configure(delay_rate=1.0, delay_seconds=7.5, seed=3)
        chaos.on_worker_cell("cell", attempt=0)
        assert naps == [7.5]

    def test_disabled_is_a_no_op(self):
        chaos.on_worker_cell("cell", attempt=0)  # must not raise


class TestFileSites:
    def test_tear_file_halves_the_archive(self, tmp_path):
        path = tmp_path / "artifact.npz"
        path.write_bytes(b"x" * 100)
        chaos.tear_file(path)
        assert path.read_bytes() == b"x" * 50
        tiny = tmp_path / "tiny.bin"
        tiny.write_bytes(b"x")
        chaos.tear_file(tiny)
        assert tiny.read_bytes() == b"x"  # never truncated to zero bytes

    def test_on_publish_tears_at_most_max_per_key(self, tmp_path):
        chaos.configure(torn_write_rate=1.0, seed=3, max_per_key=1)
        path = tmp_path / "artifact.npz"
        path.write_bytes(b"x" * 100)
        chaos.on_publish(path)
        assert path.stat().st_size == 50  # torn once
        path.write_bytes(b"x" * 100)  # recovery republishes
        chaos.on_publish(path)
        assert path.stat().st_size == 100  # cap reached: not re-torn

    def test_on_lock_acquired_holds_then_stops(self, monkeypatch, tmp_path):
        naps = []
        monkeypatch.setattr(chaos.time, "sleep", naps.append)
        chaos.configure(lock_hold_rate=1.0, lock_hold_seconds=0.25, seed=3)
        lock = tmp_path / "artifact.npz.lock"
        chaos.on_lock_acquired(lock)
        chaos.on_lock_acquired(lock)
        assert naps == [0.25]  # held once per (site, key) under max_per_key
