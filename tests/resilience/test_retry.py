"""Retry policy: transient classification, seeded backoff, env resolution."""

from __future__ import annotations

import zipfile
import zlib

import pytest

from repro.parallel import WorkerError
from repro.parallel.locks import LockTimeout
from repro.resilience import (
    RetryPolicy,
    is_retryable,
    is_retryable_type,
    register_retryable,
    resolve_cell_timeout,
    resolve_max_retries,
    stable_seed,
    stable_unit,
)
from repro.resilience.chaos import ChaosError
from repro.resilience.retry import RETRYABLE_TYPES


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            OSError("disk went away"),
            BrokenPipeError("worker pipe"),
            TimeoutError("deadline"),
            LockTimeout("starved"),
            EOFError("truncated read"),
            zipfile.BadZipFile("torn archive"),
            zlib.error("truncated block"),
            ChaosError("injected"),
            WorkerError("repackaged", "tb"),
        ],
    )
    def test_transient_instances(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize(
        "exc", [ValueError("bad config"), KeyError("missing"), TypeError("shape")]
    )
    def test_deterministic_instances(self, exc):
        assert not is_retryable(exc)

    def test_oserror_subclass_caught_by_isinstance(self):
        class WeirdDiskError(OSError):
            pass

        # Name not in the table, but still an OSError instance.
        assert "WeirdDiskError" not in RETRYABLE_TYPES
        assert is_retryable(WeirdDiskError("hiccup"))

    def test_type_name_classification_is_wire_format(self):
        # The parent only sees names across the process boundary.
        assert is_retryable_type("LockTimeout")
        assert is_retryable_type("ChaosError")
        assert not is_retryable_type("ValueError")

    def test_register_retryable_extends_the_table(self):
        assert not is_retryable_type("FlakyGPUError")
        register_retryable("FlakyGPUError")
        try:
            assert is_retryable_type("FlakyGPUError")
        finally:
            RETRYABLE_TYPES.discard("FlakyGPUError")


class TestStableSeeding:
    def test_seed_deterministic_and_distinct(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_unit_in_half_open_interval(self):
        draws = [stable_unit("cell", i) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert len(set(draws)) > 90  # no obvious collisions

    def test_separator_prevents_part_gluing(self):
        # ("ab", "c") must not hash like ("a", "bc").
        assert stable_seed("ab", "c") != stable_seed("a", "bc")


class TestRetryPolicy:
    def test_backoff_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy()
        assert policy.backoff(1, "cell-a") == policy.backoff(1, "cell-a")
        assert policy.backoff(1, "cell-a") != policy.backoff(1, "cell-b")

    def test_backoff_exponential_within_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.5)
        for attempt, nominal in [(1, 0.1), (2, 0.2), (3, 0.4)]:
            delay = policy.backoff(attempt, "k")
            assert nominal * 0.5 <= delay <= nominal * 1.5

    def test_backoff_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.5)
        assert policy.backoff(50, "k") <= 2.0 * 1.5

    def test_backoff_without_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert policy.backoff(3, "k") == pytest.approx(0.4)

    def test_backoff_rejects_zeroth_attempt(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().backoff(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_with_max_retries(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.with_max_retries(None) is policy
        assert policy.with_max_retries(5).max_retries == 5
        assert policy.max_retries == 2  # frozen original untouched


class TestEnvResolution:
    def test_max_retries_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "9")
        assert resolve_max_retries(1) == 1

    def test_max_retries_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
        assert resolve_max_retries(None) == 4

    def test_max_retries_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        assert resolve_max_retries(None) == 2
        assert resolve_max_retries(None, default=0) == 0

    def test_max_retries_invalid(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_max_retries(-1)
        monkeypatch.setenv("REPRO_MAX_RETRIES", "lots")
        with pytest.raises(ValueError, match="REPRO_MAX_RETRIES"):
            resolve_max_retries(None)
        monkeypatch.setenv("REPRO_MAX_RETRIES", "-2")
        with pytest.raises(ValueError, match="REPRO_MAX_RETRIES"):
            resolve_max_retries(None)

    def test_cell_timeout_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_TIMEOUT", raising=False)
        assert resolve_cell_timeout(None) is None
        assert resolve_cell_timeout(3.5) == 3.5
        assert resolve_cell_timeout(0) is None  # non-positive = no deadline
        assert resolve_cell_timeout(-1) is None
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "12.5")
        assert resolve_cell_timeout(None) == 12.5
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "forever")
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT"):
            resolve_cell_timeout(None)
