"""CellFailure records and the persisted FailureManifest."""

from __future__ import annotations

import json

import pytest

from repro.resilience import (
    KIND_CRASH,
    KIND_DEPENDENCY,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    CellFailure,
    FailureManifest,
    default_manifest_path,
)


def _failure(key="cifar-resnet20-wt-rep0", kind=KIND_EXCEPTION, **over):
    base = dict(
        key=key,
        index=3,
        kind=kind,
        error_type="ChaosError",
        message="injected worker exception",
        attempts=3,
        remote_traceback="Traceback ...\nChaosError: injected",
        retryable=True,
        payload={"kind": "zoo", "task": "cifar", "model": "resnet20",
                 "method": "wt", "repetition": 0, "robust": False},
    )
    base.update(over)
    return CellFailure(**base)


class TestCellFailure:
    def test_describe_one_liner(self):
        line = _failure().describe()
        assert line == (
            "cifar-resnet20-wt-rep0: exception ChaosError: "
            "injected worker exception (3 attempts)"
        )

    def test_describe_singular_attempt(self):
        assert "(1 attempt)" in _failure(attempts=1).describe()

    def test_with_payload_returns_new_frozen_record(self):
        f = _failure(payload=None)
        g = f.with_payload({"kind": "zoo"})
        assert f.payload is None and g.payload == {"kind": "zoo"}
        assert g.key == f.key
        with pytest.raises(Exception):  # frozen dataclass
            f.key = "other"


class TestFailureManifest:
    def test_summary_breaks_down_kinds(self):
        manifest = FailureManifest(
            "build_zoo",
            [
                _failure("a", KIND_EXCEPTION),
                _failure("b", KIND_CRASH),
                _failure("c", KIND_CRASH),
                _failure("d", KIND_TIMEOUT),
                _failure("e", KIND_DEPENDENCY),
            ],
            total_cells=12,
        )
        assert len(manifest) == 5
        assert manifest.keys == ["a", "b", "c", "d", "e"]
        summary = manifest.summary()
        assert summary.startswith("build_zoo: 5/12 cells failed")
        assert "2 crash" in summary and "1 timeout" in summary

    def test_created_auto_stamped(self):
        assert FailureManifest("g").created  # non-empty ISO-ish stamp

    def test_save_load_round_trip(self, tmp_path):
        manifest = FailureManifest(
            "build_zoo",
            [_failure(), _failure("other", KIND_TIMEOUT, error_type="TimeoutError")],
            total_cells=7,
            scale_digest="abc123",
        )
        path = manifest.save(tmp_path / "failures.json")
        loaded = FailureManifest.load(path)
        assert loaded.label == "build_zoo"
        assert loaded.total_cells == 7
        assert loaded.scale_digest == "abc123"
        assert loaded.created == manifest.created
        assert loaded.failures == manifest.failures  # incl. payload dicts

    def test_load_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FailureManifest.load(tmp_path / "nope.json")

    def test_load_garbage_raises_value_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ torn mid-wri")
        with pytest.raises(ValueError, match="unreadable failure manifest"):
            FailureManifest.load(bad)

    def test_load_wrong_shape_raises_value_error(self, tmp_path):
        for payload in (json.dumps([1, 2, 3]), json.dumps({"label": "x"})):
            path = tmp_path / "shape.json"
            path.write_text(payload)
            with pytest.raises(ValueError, match="not a failure manifest"):
                FailureManifest.load(path)

    def test_extend_and_iter(self):
        manifest = FailureManifest("g")
        manifest.extend([_failure("a"), _failure("b")])
        assert [f.key for f in manifest] == ["a", "b"]


class TestTimestampAndDedupe:
    def test_failure_auto_stamps_wall_clock(self):
        stamp = _failure().timestamp
        assert stamp and stamp[4] == "-" and "T" in stamp  # ISO-ish
        assert _failure(timestamp="2026-01-01T00:00:00").timestamp == (
            "2026-01-01T00:00:00"
        )

    def test_timestamp_survives_save_load(self, tmp_path):
        failure = _failure(timestamp="2026-01-01T00:00:00")
        path = FailureManifest("g", [failure]).save(tmp_path / "m.json")
        [loaded] = FailureManifest.load(path).failures
        assert loaded.timestamp == "2026-01-01T00:00:00"

    def test_deduped_keeps_latest_per_key_kind(self):
        old = _failure("a", timestamp="2026-01-01T00:00:00", attempts=1)
        new = _failure("a", timestamp="2026-01-02T00:00:00", attempts=2)
        other_kind = _failure("a", kind=KIND_TIMEOUT)
        manifest = FailureManifest("g", [old, other_kind, new])
        deduped = manifest.deduped()
        assert [(f.key, f.kind) for f in deduped] == [
            ("a", KIND_EXCEPTION),
            ("a", KIND_TIMEOUT),
        ]
        assert deduped[0].attempts == 2  # latest record won

    def test_save_dedupes_before_writing(self, tmp_path):
        manifest = FailureManifest("g", [_failure("a"), _failure("a")])
        path = manifest.save(tmp_path / "m.json")
        assert len(FailureManifest.load(path)) == 1


class TestMultiManifest:
    def _zoo_failure(self, key, repetition=0):
        return _failure(
            key,
            payload={"kind": "zoo", "task": "cifar", "model": "resnet20",
                     "method": "wt", "repetition": repetition, "robust": False},
        )

    def test_load_manifests_accepts_one_or_many(self, tmp_path):
        from repro.resilience import load_manifests

        manifest = FailureManifest("g", [_failure("a")])
        path = manifest.save(tmp_path / "m.json")
        assert [m.label for m in load_manifests(manifest)] == ["g"]
        assert [m.label for m in load_manifests(path)] == ["g"]
        assert [m.label for m in load_manifests([manifest, path])] == ["g", "g"]

    def test_specs_merge_and_dedupe_across_manifests(self):
        from repro.resilience.resume import zoo_specs_from_manifest

        first = FailureManifest(
            "g1", [self._zoo_failure("a", 0), self._zoo_failure("b", 1)]
        )
        second = FailureManifest(
            "g2", [self._zoo_failure("a", 0), self._zoo_failure("c", 2)]
        )
        specs = zoo_specs_from_manifest([first, second])
        assert [s.repetition for s in specs] == [0, 1, 2]  # "a" deduped

    def test_resume_merged_manifests_with_no_zoo_cells_raises(self, tmp_path):
        from repro.resilience import resume_zoo

        first = FailureManifest("g1", [_failure("a", payload=None)])
        second = FailureManifest("g2", [_failure("b", payload=None)])
        with pytest.raises(ValueError, match="no resumable zoo cells"):
            resume_zoo([first, second], scale=_DigestScale())


class _DigestScale:
    def digest(self):
        return "micro-digest"


class TestDefaultManifestPath:
    def test_label_sanitized_and_pid_suffixed(self, tmp_path):
        import os

        path = default_manifest_path(tmp_path, "grid/eval cells [wt]")
        assert path.parent == tmp_path
        assert path.name.startswith("failures-grid_eval_cells_")
        assert path.name.endswith(f"-{os.getpid()}.json")
        assert "/" not in path.name and " " not in path.name
