"""CellFailure records and the persisted FailureManifest."""

from __future__ import annotations

import json

import pytest

from repro.resilience import (
    KIND_CRASH,
    KIND_DEPENDENCY,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    CellFailure,
    FailureManifest,
    default_manifest_path,
)


def _failure(key="cifar-resnet20-wt-rep0", kind=KIND_EXCEPTION, **over):
    base = dict(
        key=key,
        index=3,
        kind=kind,
        error_type="ChaosError",
        message="injected worker exception",
        attempts=3,
        remote_traceback="Traceback ...\nChaosError: injected",
        retryable=True,
        payload={"kind": "zoo", "task": "cifar", "model": "resnet20",
                 "method": "wt", "repetition": 0, "robust": False},
    )
    base.update(over)
    return CellFailure(**base)


class TestCellFailure:
    def test_describe_one_liner(self):
        line = _failure().describe()
        assert line == (
            "cifar-resnet20-wt-rep0: exception ChaosError: "
            "injected worker exception (3 attempts)"
        )

    def test_describe_singular_attempt(self):
        assert "(1 attempt)" in _failure(attempts=1).describe()

    def test_with_payload_returns_new_frozen_record(self):
        f = _failure(payload=None)
        g = f.with_payload({"kind": "zoo"})
        assert f.payload is None and g.payload == {"kind": "zoo"}
        assert g.key == f.key
        with pytest.raises(Exception):  # frozen dataclass
            f.key = "other"


class TestFailureManifest:
    def test_summary_breaks_down_kinds(self):
        manifest = FailureManifest(
            "build_zoo",
            [
                _failure("a", KIND_EXCEPTION),
                _failure("b", KIND_CRASH),
                _failure("c", KIND_CRASH),
                _failure("d", KIND_TIMEOUT),
                _failure("e", KIND_DEPENDENCY),
            ],
            total_cells=12,
        )
        assert len(manifest) == 5
        assert manifest.keys == ["a", "b", "c", "d", "e"]
        summary = manifest.summary()
        assert summary.startswith("build_zoo: 5/12 cells failed")
        assert "2 crash" in summary and "1 timeout" in summary

    def test_created_auto_stamped(self):
        assert FailureManifest("g").created  # non-empty ISO-ish stamp

    def test_save_load_round_trip(self, tmp_path):
        manifest = FailureManifest(
            "build_zoo",
            [_failure(), _failure("other", KIND_TIMEOUT, error_type="TimeoutError")],
            total_cells=7,
            scale_digest="abc123",
        )
        path = manifest.save(tmp_path / "failures.json")
        loaded = FailureManifest.load(path)
        assert loaded.label == "build_zoo"
        assert loaded.total_cells == 7
        assert loaded.scale_digest == "abc123"
        assert loaded.created == manifest.created
        assert loaded.failures == manifest.failures  # incl. payload dicts

    def test_load_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FailureManifest.load(tmp_path / "nope.json")

    def test_load_garbage_raises_value_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ torn mid-wri")
        with pytest.raises(ValueError, match="unreadable failure manifest"):
            FailureManifest.load(bad)

    def test_load_wrong_shape_raises_value_error(self, tmp_path):
        for payload in (json.dumps([1, 2, 3]), json.dumps({"label": "x"})):
            path = tmp_path / "shape.json"
            path.write_text(payload)
            with pytest.raises(ValueError, match="not a failure manifest"):
                FailureManifest.load(path)

    def test_extend_and_iter(self):
        manifest = FailureManifest("g")
        manifest.extend([_failure("a"), _failure("b")])
        assert [f.key for f in manifest] == ["a", "b"]


class TestDefaultManifestPath:
    def test_label_sanitized_and_pid_suffixed(self, tmp_path):
        import os

        path = default_manifest_path(tmp_path, "grid/eval cells [wt]")
        assert path.parent == tmp_path
        assert path.name.startswith("failures-grid_eval_cells_")
        assert path.name.endswith(f"-{os.getpid()}.json")
        assert "/" not in path.name and " " not in path.name
