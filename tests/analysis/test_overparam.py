"""Overparameterization summaries (avg/min prune potential)."""

import numpy as np
import pytest

from repro.analysis.overparam import summarize_potentials


class TestSummaries:
    def test_single_repetition_std_zero(self):
        s = summarize_potentials(np.array([[0.8, 0.4, 0.0]]))
        assert s.average_mean == pytest.approx(0.4)
        assert s.average_std == 0.0
        assert s.minimum_mean == 0.0
        assert s.minimum_std == 0.0

    def test_multiple_repetitions(self):
        matrix = np.array([[0.8, 0.4], [0.6, 0.2]])
        s = summarize_potentials(matrix)
        assert s.average_mean == pytest.approx(0.5)
        assert s.minimum_mean == pytest.approx(0.3)
        assert s.average_std == pytest.approx(0.1)
        assert s.minimum_std == pytest.approx(0.1)

    def test_1d_input_treated_as_single_rep(self):
        s = summarize_potentials(np.array([0.5, 0.1]))
        assert s.minimum_mean == pytest.approx(0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_potentials(np.zeros((0, 0)))

    def test_row_formatting_percent(self):
        s = summarize_potentials(np.array([[0.849, 0.667]]))
        avg, minimum = s.row()
        assert avg == "75.8 ± 0.0"
        assert minimum == "66.7 ± 0.0"

    def test_minimum_never_exceeds_average(self, rng):
        matrix = rng.random((5, 8))
        s = summarize_potentials(matrix)
        assert s.minimum_mean <= s.average_mean
