"""BackSelect informative-pixel selection."""

import numpy as np
import pytest

from repro import nn
from repro.analysis.backselect import (
    backselect_order,
    confidence_on_informative_pixels,
    cross_model_confidence_matrix,
    informative_pixel_mask,
)
from repro.autograd import Tensor


class PixelReader(nn.Module):
    """Logit k reads exactly pixel k (channel 0): ground-truth informativeness."""

    def __init__(self, pixels: list[int], h: int = 4, w: int = 4):
        super().__init__()
        self.pixels = pixels
        self.h, self.w = h, w

    def forward(self, x):
        flat = x.reshape(x.shape[0], 3, self.h * self.w)
        cols = [flat[:, 0:1, p] * 10.0 for p in self.pixels]
        from repro.autograd import ops

        return ops.concatenate(cols, axis=1)


class TestBackselectOrder:
    def test_returns_permutation(self, rng):
        model = PixelReader([0, 5])
        image = rng.random((3, 4, 4)).astype(np.float32)
        order = backselect_order(model, image)
        assert sorted(order.tolist()) == list(range(16))

    def test_informative_pixel_ranked_last(self, rng):
        """The one pixel the predicted logit reads must be most informative."""
        model = PixelReader([7, 12])
        image = rng.random((3, 4, 4)).astype(np.float32)
        image[0, 7 // 4, 7 % 4] = 5.0  # make class 0 the prediction
        order = backselect_order(model, image)
        assert order[-1] == 7

    def test_pixels_per_step_speeds_but_keeps_top(self, rng):
        model = PixelReader([3, 9])
        image = rng.random((3, 4, 4)).astype(np.float32)
        image[0, 0, 3] = 5.0
        order = backselect_order(model, image, pixels_per_step=4)
        assert order[-1] == 3

    def test_explicit_target_class(self, rng):
        model = PixelReader([2, 10])
        image = rng.random((3, 4, 4)).astype(np.float32)
        order = backselect_order(model, image, target_class=1)
        assert order[-1] == 10

    def test_rejects_batched_input(self, rng):
        with pytest.raises(ValueError):
            backselect_order(PixelReader([0]), rng.random((1, 3, 4, 4)))

    def test_restores_training_mode(self, rng):
        model = PixelReader([0, 1])
        model.train()
        backselect_order(model, rng.random((3, 4, 4)).astype(np.float32), pixels_per_step=8)
        assert model.training

    def test_chunked_candidates_match_full_materialization(self, rng, monkeypatch):
        """Per-chunk candidate generation must reproduce the old full-set order.

        The reference below materializes every candidate at once (the old
        O((H·W)²·C) path) and evaluates it at the same batch boundaries.
        Run through the plain module path so both sides chunk identically.
        """
        monkeypatch.setenv("REPRO_INFER", "0")
        from repro.analysis.backselect import _confidences

        model = PixelReader([3, 9])
        image = rng.random((3, 4, 4)).astype(np.float32)
        c, h, w = image.shape
        n_pixels = h * w
        batch_size = 6  # forces 3 chunks over the initial 16 candidates
        target = 0

        remaining = list(range(n_pixels))
        order = []
        current = image.copy().reshape(c, n_pixels)
        while remaining:
            cand = np.repeat(
                current.reshape(1, c, n_pixels), len(remaining), axis=0
            )
            cand[np.arange(len(remaining)), :, remaining] = 0.0
            conf = _confidences(
                model, cand.reshape(-1, c, h, w), target, batch_size
            )
            best = np.argsort(-conf, kind="stable")[:2]
            for b in sorted(best.tolist(), reverse=True):
                pixel = remaining.pop(b)
                order.append(pixel)
                current[:, pixel] = 0.0
        reference = np.asarray(order, dtype=np.int64)

        got = backselect_order(
            model, image, target_class=target,
            pixels_per_step=2, batch_size=batch_size,
        )
        np.testing.assert_array_equal(got, reference)


class TestInformativeMask:
    def test_keeps_top_fraction(self):
        order = np.arange(10)
        mask = informative_pixel_mask(order, 0.3)
        assert mask.sum() == 3
        assert mask[[7, 8, 9]].all()

    def test_at_least_one_pixel(self):
        mask = informative_pixel_mask(np.arange(100), 0.001)
        assert mask.sum() == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            informative_pixel_mask(np.arange(4), 0.0)


class TestConfidenceOnMask:
    def test_high_when_informative_kept(self, rng):
        model = PixelReader([7, 12])
        image = rng.random((3, 4, 4)).astype(np.float32)
        image[0, 7 // 4, 7 % 4] = 5.0
        mask = np.zeros(16, dtype=bool)
        mask[7] = True
        conf_kept = confidence_on_informative_pixels(model, image, mask, true_class=0)
        conf_dropped = confidence_on_informative_pixels(model, image, ~mask, true_class=0)
        assert conf_kept > conf_dropped


class TestCrossModelMatrix:
    def test_shape_and_range(self, rng):
        models = [PixelReader([0, 5]), PixelReader([0, 5])]
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        labels = np.array([0, 1])
        heat = cross_model_confidence_matrix(models, images, labels, keep_fraction=0.25, pixels_per_step=8)
        assert heat.shape == (2, 2)
        assert (heat >= 0).all() and (heat <= 1).all()

    def test_identical_models_symmetric(self, rng):
        m = PixelReader([1, 14])
        images = rng.random((2, 3, 4, 4)).astype(np.float32)
        labels = np.array([0, 1])
        heat = cross_model_confidence_matrix([m, m], images, labels, keep_fraction=0.25, pixels_per_step=8)
        assert heat[0, 0] == pytest.approx(heat[1, 1])
        assert heat[0, 1] == pytest.approx(heat[0, 0])

    def test_empty_sample_raises(self, rng):
        """Regression: an empty sample used to divide 0/0 into a NaN heatmap."""
        models = [PixelReader([0, 5])]
        empty = np.empty((0, 3, 4, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="non-empty"):
            cross_model_confidence_matrix(models, empty, np.empty((0,)))

    def test_length_mismatch_raises(self, rng):
        models = [PixelReader([0, 5])]
        images = rng.random((3, 3, 4, 4)).astype(np.float32)
        with pytest.raises(ValueError, match="3 images vs 2 labels"):
            cross_model_confidence_matrix(models, images, np.array([0, 1]))
