"""Excess error (Definition 2) and the OLS/bootstrap machinery."""

import numpy as np
import pytest

from repro.analysis.excess_error import excess_error, excess_error_difference
from repro.analysis.regression import bootstrap_slope_ci, ols_slope_through_origin
from repro.data.datasets import Dataset


class TestOLS:
    def test_exact_line(self):
        x = np.array([1.0, 2.0, 3.0])
        assert ols_slope_through_origin(x, 2.5 * x) == pytest.approx(2.5)

    def test_least_squares_property(self, rng):
        x = rng.random(50) + 0.1
        y = 1.7 * x + rng.normal(0, 0.01, 50)
        slope = ols_slope_through_origin(x, y)
        assert slope == pytest.approx(1.7, abs=0.05)
        # perturbing the slope increases squared error
        base = ((y - slope * x) ** 2).sum()
        assert ((y - (slope + 0.1) * x) ** 2).sum() > base

    def test_all_zero_x_raises(self):
        with pytest.raises(ValueError):
            ols_slope_through_origin(np.zeros(3), np.ones(3))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ols_slope_through_origin(np.ones(3), np.ones(4))


class TestBootstrapCI:
    def test_ci_contains_true_slope(self, rng):
        x = rng.random(100) + 0.1
        y = 2.0 * x + rng.normal(0, 0.05, 100)
        lo, hi = bootstrap_slope_ci(x, y, n_boot=500, rng=0)
        assert lo < 2.0 < hi

    def test_ci_ordered_and_tight_for_clean_data(self):
        x = np.linspace(0.1, 1, 50)
        lo, hi = bootstrap_slope_ci(x, 3.0 * x, n_boot=200, rng=0)
        assert lo <= hi
        assert lo == pytest.approx(3.0, abs=1e-6)

    def test_deterministic_given_seed(self, rng):
        x = rng.random(30) + 0.1
        y = x + rng.normal(0, 0.1, 30)
        assert bootstrap_slope_ci(x, y, rng=7) == bootstrap_slope_ci(x, y, rng=7)


class TestExcessError:
    def test_definition(self, trained_setup):
        model, suite, _ = trained_setup
        nominal = suite.test_set()
        shifted = suite.corrupted_test_set("gaussian_noise", 4)
        e = excess_error(model, nominal, shifted, suite.normalizer())
        from repro.training import evaluate_model

        err_nom = evaluate_model(model, nominal.images, nominal.labels, suite.normalizer())["error"]
        err_ood = evaluate_model(model, shifted.images, shifted.labels, suite.normalizer())["error"]
        assert e == pytest.approx(err_ood - err_nom)

    def test_zero_for_identical_distribution(self, trained_setup):
        model, suite, _ = trained_setup
        nominal = suite.test_set()
        assert excess_error(model, nominal, nominal, suite.normalizer()) == 0.0


class TestExcessErrorDifference:
    def test_requires_ood_sets(self, trained_setup):
        model, suite, trainer = trained_setup
        from repro.pruning import PruneRun

        run = PruneRun("wt", parent_state=model.state_dict())
        with pytest.raises(ValueError, match="o.o.d."):
            excess_error_difference(run, model, suite.test_set(), [], suite.normalizer())

    def test_model_state_bit_identical_after_sweep(self, trained_setup):
        """Regression: the sweep loads parent/checkpoint weights into the
        caller's model and must restore the exact prior state."""
        model, suite, _ = trained_setup
        from repro.pruning import PruneRun
        from repro.pruning.pipeline import PruneCheckpoint
        from tests.conftest import make_tiny_cnn

        donor_state = model.state_dict()
        run = PruneRun(
            "wt",
            parent_state=donor_state,
            checkpoints=[
                PruneCheckpoint(
                    target_ratio=0.5, achieved_ratio=0.5, test_error=0.0,
                    state=donor_state,
                )
            ],
        )
        probe = make_tiny_cnn(seed=4)
        before = probe.state_dict()
        excess_error_difference(
            run, probe, suite.test_set(),
            [suite.corrupted_test_set("brightness", 3)], suite.normalizer(),
        )
        after = probe.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)

    def test_zero_checkpoint_identical_to_parent(self, trained_setup):
        """A checkpoint with the parent's own weights has ê − e = 0."""
        model, suite, _ = trained_setup
        from repro.pruning import PruneRun
        from repro.pruning.pipeline import PruneCheckpoint

        state = model.state_dict()
        run = PruneRun(
            "wt",
            parent_state=state,
            checkpoints=[
                PruneCheckpoint(target_ratio=0.0, achieved_ratio=0.0, test_error=0.0, state=state)
            ],
        )
        ood = [suite.corrupted_test_set("brightness", 3)]
        from tests.conftest import make_tiny_cnn

        probe = make_tiny_cnn(seed=1)
        result = excess_error_difference(run, probe, suite.test_set(), ood, suite.normalizer())
        assert result.differences[0] == pytest.approx(0.0, abs=1e-9)
