"""Per-class pruning impact (the Hooker et al. analysis)."""

import numpy as np
import pytest

from repro.analysis.class_impact import ClassImpactResult, class_impact, per_class_error
from repro.data.datasets import Dataset

from tests.conftest import make_tiny_cnn


class ConstantClassifier:
    """Always predicts one class (Module-like test double)."""

    def __init__(self, k, num_classes=4):
        self.k = k
        self.num_classes = num_classes
        self.training = False

    def eval(self):
        return self

    def train(self, mode=True):
        return self

    def __call__(self, x):
        from repro.autograd import Tensor

        logits = np.zeros((len(x), self.num_classes), dtype=np.float32)
        logits[:, self.k] = 10.0
        return Tensor(logits)


class TestPerClassError:
    def test_constant_predictor(self, rng):
        model = ConstantClassifier(1)
        images = rng.random((20, 3, 4, 4)).astype(np.float32)
        labels = np.array([0, 1] * 10)
        errors = per_class_error(model, images, labels, 4)
        assert errors[0] == 1.0  # class 0 always misclassified as 1
        assert errors[1] == 0.0
        assert np.isnan(errors[2]) and np.isnan(errors[3])

    def test_real_model_shapes(self, rng):
        model = make_tiny_cnn()
        images = rng.random((16, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 4, 16)
        errors = per_class_error(model, images, labels, 4)
        assert errors.shape == (4,)
        present = ~np.isnan(errors)
        assert ((errors[present] >= 0) & (errors[present] <= 1)).all()


class TestClassImpact:
    def test_identical_models_zero_deltas(self, rng):
        model = make_tiny_cnn(seed=3)
        ds = Dataset(rng.random((24, 3, 8, 8)).astype(np.float32), rng.integers(0, 4, 24))
        result = class_impact(model, model, ds, num_classes=4)
        np.testing.assert_allclose(np.nan_to_num(result.deltas), 0.0)
        assert result.aggregate_delta == pytest.approx(0.0)

    def test_disparity_measures_nonuniformity(self):
        result = ClassImpactResult(
            parent_errors=np.array([0.1, 0.1, 0.1]),
            pruned_errors=np.array([0.1, 0.1, 0.5]),
        )
        assert result.worst_class == 2
        assert result.aggregate_delta == pytest.approx(0.4 / 3)
        assert result.disparity == pytest.approx(0.4 - 0.4 / 3)

    def test_uniform_damage_zero_disparity(self):
        result = ClassImpactResult(
            parent_errors=np.array([0.1, 0.2]),
            pruned_errors=np.array([0.2, 0.3]),
        )
        assert result.disparity == pytest.approx(0.0)

    def test_pruning_increases_some_class_error(self, trained_setup):
        """End-to-end: prune a trained model hard and observe class-level
        damage exceeding the aggregate (selective brain damage)."""
        from repro.pruning import WeightThresholding
        from tests.conftest import make_tiny_cnn as mk

        model, suite, _ = trained_setup
        pruned = mk(seed=1)
        pruned.load_state_dict(model.state_dict())
        WeightThresholding().prune(pruned, 0.85)
        test = suite.test_set()
        result = class_impact(
            model, pruned, test, suite.num_classes, suite.normalizer()
        )
        assert np.isfinite(result.aggregate_delta)
        assert result.disparity >= 0  # max is never below mean
