"""Noise-similarity metrics."""

import numpy as np
import pytest

from repro.analysis.functional_distance import (
    noise_similarity,
    predictions_and_softmax,
)

from tests.conftest import make_tiny_cnn


@pytest.fixture
def images(rng):
    return rng.standard_normal((32, 3, 8, 8)).astype(np.float32)


class TestPredictionsAndSoftmax:
    def test_shapes(self, images):
        model = make_tiny_cnn()
        preds, probs = predictions_and_softmax(model, images)
        assert preds.shape == (32,)
        assert probs.shape == (32, 4)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_batch_invariant(self, images):
        model = make_tiny_cnn()
        p1, s1 = predictions_and_softmax(model, images, batch_size=5)
        p2, s2 = predictions_and_softmax(model, images, batch_size=32)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_allclose(s1, s2, rtol=1e-5)

    def test_restores_mode(self, images):
        model = make_tiny_cnn()
        model.train()
        predictions_and_softmax(model, images)
        assert model.training

    def test_exception_mid_eval_restores_mode(self, images):
        """Regression: a forward that raises must not leave the model in eval."""
        from repro import nn

        class Boom(nn.Module):
            def forward(self, x):
                raise RuntimeError("boom")

        model = Boom()
        model.train()
        with pytest.raises(RuntimeError):
            predictions_and_softmax(model, images)
        assert model.training


class TestNoiseSimilarity:
    def test_identical_models_perfect_match(self, images):
        model = make_tiny_cnn(seed=2)
        sim = noise_similarity(model, model, images, eps=0.1, n_trials=2, rng=0)
        assert sim.match_rate == 1.0
        assert sim.l2_distance == pytest.approx(0.0, abs=1e-6)
        assert sim.match_rate_std == 0.0

    def test_different_models_imperfect(self, images):
        a, b = make_tiny_cnn(seed=0), make_tiny_cnn(seed=9)
        sim = noise_similarity(a, b, images, eps=0.1, n_trials=2, rng=0)
        assert sim.match_rate < 1.0
        assert sim.l2_distance > 0.0

    def test_deterministic_given_rng(self, images):
        a, b = make_tiny_cnn(seed=0), make_tiny_cnn(seed=9)
        s1 = noise_similarity(a, b, images, eps=0.2, n_trials=3, rng=5)
        s2 = noise_similarity(a, b, images, eps=0.2, n_trials=3, rng=5)
        assert s1.match_rate == s2.match_rate
        assert s1.l2_distance == s2.l2_distance

    def test_eps_recorded(self, images):
        model = make_tiny_cnn()
        assert noise_similarity(model, model, images, eps=0.3, n_trials=1).eps == 0.3

    def test_invalid_trials(self, images):
        model = make_tiny_cnn()
        with pytest.raises(ValueError):
            noise_similarity(model, model, images, eps=0.1, n_trials=0)

    def test_pruned_copy_more_similar_than_stranger(self, trained_setup):
        """The paper's core Section-4 claim at unit-test scale."""
        from repro.pruning import WeightThresholding
        from tests.conftest import make_tiny_cnn as mk

        model, suite, _ = trained_setup
        images = suite.normalizer()(suite.test_set().images[:64])

        pruned = mk(seed=1)
        pruned.load_state_dict(model.state_dict())
        WeightThresholding().prune(pruned, 0.3)

        stranger = mk(seed=77)

        sim_pruned = noise_similarity(model, pruned, images, eps=0.1, n_trials=2, rng=0)
        sim_stranger = noise_similarity(model, stranger, images, eps=0.1, n_trials=2, rng=0)
        assert sim_pruned.match_rate > sim_stranger.match_rate
