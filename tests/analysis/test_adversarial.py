"""FGSM adversarial probes."""

import numpy as np
import pytest

from repro.analysis.adversarial import adversarial_error, fgsm_attack, input_gradient

from tests.conftest import make_tiny_cnn


@pytest.fixture
def batch(rng):
    images = rng.random((16, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 4, 16)
    return images, labels


class TestInputGradient:
    def test_shape_and_finiteness(self, batch):
        model = make_tiny_cnn()
        grad = input_gradient(model, *batch)
        assert grad.shape == batch[0].shape
        assert np.isfinite(grad).all()
        assert np.abs(grad).max() > 0

    def test_restores_training_mode(self, batch):
        model = make_tiny_cnn()
        model.train()
        input_gradient(model, *batch)
        assert model.training


class TestFGSM:
    def test_linf_budget_respected(self, batch):
        model = make_tiny_cnn()
        images, labels = batch
        adv = fgsm_attack(model, images, labels, eps=0.03)
        assert np.abs(adv - images).max() <= 0.03 + 1e-6

    def test_eps_zero_is_identity(self, batch):
        model = make_tiny_cnn()
        adv = fgsm_attack(model, *batch, eps=0.0)
        np.testing.assert_allclose(adv, batch[0])

    def test_negative_eps_raises(self, batch):
        with pytest.raises(ValueError):
            fgsm_attack(make_tiny_cnn(), *batch, eps=-0.1)

    def test_batching_invariant(self, batch):
        model = make_tiny_cnn()
        images, labels = batch
        a = fgsm_attack(model, images, labels, eps=0.05, batch_size=4)
        b = fgsm_attack(model, images, labels, eps=0.05, batch_size=16)
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)


class TestAdversarialError:
    def test_attack_hurts_trained_model(self, trained_setup):
        model, suite, _ = trained_setup
        test = suite.test_set()
        images = suite.normalizer()(test.images[:128])
        labels = test.labels[:128]
        clean = adversarial_error(model, images, labels, eps=0.0)
        attacked = adversarial_error(model, images, labels, eps=0.3)
        assert attacked >= clean
        assert attacked > clean + 0.05  # FGSM at this budget must bite

    def test_monotone_in_eps_roughly(self, trained_setup):
        model, suite, _ = trained_setup
        test = suite.test_set()
        images = suite.normalizer()(test.images[:96])
        labels = test.labels[:96]
        small = adversarial_error(model, images, labels, eps=0.05)
        large = adversarial_error(model, images, labels, eps=0.5)
        assert large >= small - 0.05
