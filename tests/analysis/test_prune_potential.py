"""Prune potential (Definition 1) extraction."""

import numpy as np
import pytest

from repro.analysis.prune_potential import (
    PruneAccuracyCurve,
    prune_potential_from_curve,
)


class TestFromCurve:
    def test_max_commensurate_ratio(self):
        ratios = np.array([0.3, 0.6, 0.9])
        errors = np.array([0.10, 0.104, 0.20])
        assert prune_potential_from_curve(ratios, errors, 0.10, delta=0.005) == 0.6

    def test_zero_when_nothing_commensurate(self):
        assert (
            prune_potential_from_curve(
                np.array([0.3, 0.6]), np.array([0.5, 0.6]), 0.1, delta=0.005
            )
            == 0.0
        )

    def test_full_when_all_commensurate(self):
        assert (
            prune_potential_from_curve(
                np.array([0.3, 0.9]), np.array([0.1, 0.1]), 0.1, delta=0.005
            )
            == 0.9
        )

    def test_non_monotone_curve_takes_max_qualifying(self):
        # A dip then recovery: the max qualifying ratio wins even if an
        # intermediate ratio fails (per Definition 1's max over c).
        ratios = np.array([0.3, 0.6, 0.9])
        errors = np.array([0.1, 0.5, 0.1])
        assert prune_potential_from_curve(ratios, errors, 0.1, delta=0.005) == 0.9

    def test_delta_zero_strict(self):
        ratios = np.array([0.5])
        assert prune_potential_from_curve(ratios, np.array([0.1001]), 0.1, delta=0.0) == 0.0
        assert prune_potential_from_curve(ratios, np.array([0.0999]), 0.1, delta=0.0) == 0.5

    def test_larger_delta_larger_potential(self):
        ratios = np.array([0.3, 0.6, 0.9])
        errors = np.array([0.10, 0.12, 0.18])
        p = [prune_potential_from_curve(ratios, errors, 0.1, d) for d in (0.0, 0.03, 0.1)]
        assert p[0] <= p[1] <= p[2]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            prune_potential_from_curve(np.array([0.3]), np.array([0.1, 0.2]), 0.1)

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError, match="delta"):
            prune_potential_from_curve(np.array([0.3]), np.array([0.1]), 0.1, delta=-0.1)


class TestCurveObject:
    def test_potential_method(self):
        curve = PruneAccuracyCurve(
            distribution="d",
            ratios=np.array([0.5, 0.8]),
            errors=np.array([0.1, 0.3]),
            parent_error=0.1,
        )
        assert curve.potential(0.005) == 0.5
        assert curve.potential(0.5) == 0.8


class TestEvaluateCurvePreservesState:
    """Regression: the curve sweep swaps checkpoint weights into the caller's
    model; it must restore the exact prior state, also when evaluation dies
    mid-sweep."""

    @staticmethod
    def _fixture(seed_probe=1, seed_run=2):
        from tests.conftest import make_tiny_cnn, make_tiny_suite
        from repro.pruning import PruneRun
        from repro.pruning.pipeline import PruneCheckpoint

        suite = make_tiny_suite(seed=3, n_train=32, n_test=16)
        probe = make_tiny_cnn(seed=seed_probe)
        donor = make_tiny_cnn(seed=seed_run)
        run = PruneRun(
            "wt",
            parent_state=donor.state_dict(),
            checkpoints=[
                PruneCheckpoint(
                    target_ratio=0.5,
                    achieved_ratio=0.5,
                    test_error=0.0,
                    state=donor.state_dict(),
                )
            ],
        )
        return suite, probe, run

    def test_state_bit_identical_after_sweep(self):
        from repro.analysis.prune_potential import evaluate_curve

        suite, probe, run = self._fixture()
        before = probe.state_dict()
        evaluate_curve(run, probe, suite.test_set(), suite.normalizer())
        after = probe.state_dict()
        assert set(before) == set(after)
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)

    def test_state_restored_on_mid_sweep_exception(self):
        from repro.analysis.prune_potential import evaluate_curve

        suite, probe, run = self._fixture()
        before = probe.state_dict()

        def explode(x):
            raise RuntimeError("evaluation died")

        with pytest.raises(RuntimeError, match="evaluation died"):
            evaluate_curve(
                run, probe, suite.test_set(), suite.normalizer(), transform=explode
            )
        after = probe.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)


class TestEvaluateCurveIntegration:
    def test_on_trained_model(self, trained_setup):
        from repro.analysis.prune_potential import evaluate_curve, prune_potential
        from repro.pruning import PruneRetrain, WeightThresholding

        model, suite, trainer = trained_setup
        state_before = model.state_dict()
        pipeline = PruneRetrain(trainer, WeightThresholding(), retrain_epochs=1)
        run = pipeline.run(target_ratios=[0.4, 0.8])
        # Restore the shared fixture model afterwards.
        try:
            from tests.conftest import make_tiny_cnn

            probe = make_tiny_cnn(seed=1)
            curve = evaluate_curve(run, probe, suite.test_set(), suite.normalizer())
            assert curve.errors.shape == (2,)
            assert curve.parent_error == pytest.approx(run.parent_test_error, abs=1e-6)
            pot = prune_potential(run, probe, suite.test_set(), suite.normalizer(), delta=1.0)
            assert pot == pytest.approx(run.ratios.max())
        finally:
            model.load_state_dict(state_before)
