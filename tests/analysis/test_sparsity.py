"""Layerwise sparsity profiles."""

import numpy as np
import pytest

from repro.analysis.sparsity import layerwise_sparsity, layerwise_sizes, sparsity_profile
from repro.pruning import (
    FilterThresholding,
    PruneRetrain,
    WeightThresholding,
)
from repro.pruning.mask import structured_prunable_layers

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


class TestLayerwiseSparsity:
    def test_zero_for_fresh_model(self):
        model = make_tiny_cnn()
        assert all(v == 0.0 for v in layerwise_sparsity(model).values())

    def test_reflects_masks(self):
        model = make_tiny_cnn()
        WeightThresholding().prune(model, 0.5)
        per_layer = layerwise_sparsity(model)
        sizes = layerwise_sizes(model)
        total = sum(per_layer[n] * sizes[n] for n in per_layer) / sum(sizes.values())
        assert total == pytest.approx(0.5, abs=0.01)

    def test_ft_uniform_vs_wt_global(self):
        """FT's uniform allocation spreads sparsity more evenly over its
        structured layers than WT's global thresholding does."""
        wt_model, ft_model = make_tiny_cnn(seed=7), make_tiny_cnn(seed=7)
        WeightThresholding().prune(wt_model, 0.4)
        FilterThresholding().prune(ft_model, 0.4)
        structured = [n for n, _ in structured_prunable_layers(ft_model)]
        wt_vals = [layerwise_sparsity(wt_model)[n] for n in structured]
        ft_vals = [layerwise_sparsity(ft_model)[n] for n in structured]
        assert np.std(ft_vals) <= np.std(wt_vals) + 0.05


class TestSparsityProfile:
    @pytest.fixture(scope="class")
    def run_and_model(self):
        suite = make_tiny_suite(seed=9)
        model = make_tiny_cnn(seed=9)
        trainer = make_tiny_trainer(model, suite, epochs=1, seed=9)
        trainer.train()
        run = PruneRetrain(trainer, WeightThresholding(), retrain_epochs=0).run(
            target_ratios=[0.3, 0.7]
        )
        return run, make_tiny_cnn(seed=9)

    def test_shape(self, run_and_model):
        run, probe = run_and_model
        profile = sparsity_profile(run, probe)
        assert profile.sparsities.shape == (2, len(profile.layer_names))
        assert (profile.sparsities >= 0).all() and (profile.sparsities <= 1).all()

    def test_weighted_sparsity_matches_overall_ratio(self, run_and_model):
        run, probe = run_and_model
        profile = sparsity_profile(run, probe)
        for k, ratio in enumerate(run.ratios):
            assert profile.weighted_sparsity(k) == pytest.approx(ratio, abs=1e-6)

    def test_sparsity_grows_per_layer(self, run_and_model):
        """Monotone masks imply per-layer sparsity is non-decreasing."""
        run, probe = run_and_model
        profile = sparsity_profile(run, probe)
        assert (profile.sparsities[1] >= profile.sparsities[0] - 1e-9).all()

    def test_imbalance_nonnegative(self, run_and_model):
        run, probe = run_and_model
        profile = sparsity_profile(run, probe)
        assert profile.imbalance(0) >= 0
