"""Model families: shapes, structure, registry, determinism."""

import numpy as np
import pytest

from repro import models
from repro.autograd import Tensor, no_grad
from repro.nn.conv import Conv2d
from repro.pruning.mask import prunable_layers, structured_prunable_layers


def fwd(model, size=16, channels=3, batch=2):
    x = Tensor(np.random.default_rng(0).standard_normal((batch, channels, size, size)).astype(np.float32))
    model.eval()
    with no_grad():
        return model(x)


CLASSIFIERS = ["resnet20", "resnet56", "vgg16", "densenet22", "wrn16_8"]


class TestClassifierShapes:
    @pytest.mark.parametrize("name", CLASSIFIERS)
    def test_output_shape(self, name):
        model = models.build_model(name, num_classes=7, base_width=4, rng=0)
        assert fwd(model).shape == (2, 7)

    def test_resnet18_four_stages(self):
        model = models.resnet18(num_classes=5, base_width=4, rng=0)
        assert fwd(model, size=24).shape == (2, 5)

    def test_segnet_dense_output(self):
        model = models.deeplab_small(num_classes=6, base_width=4, rng=0)
        out = fwd(model, size=16)
        assert out.shape == (2, 6, 16, 16)

    def test_segnet_rejects_indivisible_input(self):
        model = models.deeplab_small(num_classes=3, base_width=4, rng=0)
        with pytest.raises(ValueError, match="divisible by 4"):
            fwd(model, size=18)


class TestFamilyStructure:
    def test_resnet_depths(self):
        assert models.resnet20(rng=0).depth == 20
        assert models.resnet56(rng=0).depth == 56

    def test_resnet110_block_count(self):
        model = models.resnet110(base_width=2, rng=0)
        assert model.depth == 110
        assert len(model.stages) == 3 * 18

    def test_deeper_resnet_has_more_params(self):
        p20 = models.resnet20(base_width=4, rng=0).num_parameters()
        p56 = models.resnet56(base_width=4, rng=0).num_parameters()
        assert p56 > 2 * p20

    def test_wrn_is_wide_and_shallow(self):
        wrn = models.wrn16_8(base_width=4, rng=0)
        r56 = models.resnet56(base_width=4, rng=0)
        assert wrn.depth < r56.depth
        # Widest conv layer of WRN is wider than ResNet56's widest.
        wrn_max = max(m.out_channels for _, m in prunable_layers(wrn) if isinstance(m, Conv2d))
        r56_max = max(m.out_channels for _, m in prunable_layers(r56) if isinstance(m, Conv2d))
        assert wrn_max > r56_max

    def test_vgg_has_13_convs(self):
        model = models.vgg16(base_width=2, rng=0)
        convs = [m for _, m in prunable_layers(model) if isinstance(m, Conv2d)]
        assert len(convs) == 13

    def test_densenet_concatenation_grows_channels(self):
        model = models.densenet22(growth_rate=4, rng=0)
        convs = [m for _, m in prunable_layers(model) if isinstance(m, Conv2d)]
        in_channels = [c.in_channels for c in convs]
        assert max(in_channels) > min(in_channels[1:])

    def test_all_families_have_structured_layers(self):
        for name in CLASSIFIERS:
            model = models.build_model(name, num_classes=4, base_width=4, rng=0)
            assert structured_prunable_layers(model), name


class TestRegistry:
    def test_available_models(self):
        names = models.available_models()
        assert "resnet20" in names and "deeplab_small" in names

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            models.build_model("alexnet")

    def test_register_custom(self):
        models.register_model("custom-test", lambda **kw: models.MLP(12, num_classes=2))
        try:
            model = models.build_model("custom-test")
            assert model.num_parameters() > 0
        finally:
            # Leaked registrations poison every later registry-wide sweep
            # (e.g. the deep audit's plan-parity oracle).
            models.unregister_model("custom-test")
        with pytest.raises(KeyError, match="unknown model"):
            models.build_model("custom-test")

    def test_mlp_entry(self):
        model = models.build_model("mlp", num_classes=3, in_features=12)
        out = model(Tensor(np.zeros((2, 12), dtype=np.float32)))
        assert out.shape == (2, 3)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["resnet20", "vgg16"])
    def test_same_seed_same_weights(self, name):
        a = models.build_model(name, base_width=4, rng=np.random.default_rng(3))
        b = models.build_model(name, base_width=4, rng=np.random.default_rng(3))
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = models.resnet20(base_width=4, rng=np.random.default_rng(0))
        b = models.resnet20(base_width=4, rng=np.random.default_rng(1))
        diffs = [
            not np.allclose(pa.data, pb.data)
            for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters())
            if pa.size > 4
        ]
        assert any(diffs)


class TestGradientFlow:
    @pytest.mark.parametrize("name", ["resnet20", "densenet22", "wrn16_8"])
    def test_all_parameters_receive_gradient(self, name):
        model = models.build_model(name, num_classes=4, base_width=4, rng=0)
        model.train()
        x = Tensor(np.random.default_rng(0).standard_normal((4, 3, 8, 8)).astype(np.float32))
        model(x).sum().backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing
