"""Utility modules: rng discipline, serialization, table rendering."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, as_rng, spawn_rng
from repro.utils.serialization import load_state, save_state
from repro.utils.tables import format_mean_std, format_table


class TestRng:
    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_from_seed_deterministic(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_as_rng_none_works(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_independent(self):
        children = spawn_rng(as_rng(0), 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rng(as_rng(1), 2)]
        b = [g.random() for g in spawn_rng(as_rng(1), 2)]
        assert a == b

    def test_spawn_invalid(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), 0)

    def test_mixin_lazy_seed(self):
        class Thing(RngMixin):
            _seed = 3

        t = Thing()
        first = t.rng.random()
        t.seed(3)
        assert t.rng.random() == first


class TestSerialization:
    def test_roundtrip_arrays_and_meta(self, tmp_path):
        arrays = {"a": np.arange(5), "b/c": np.ones((2, 2), dtype=np.float32)}
        meta = {"name": "x", "value": 3, "nested": {"k": [1, 2]}}
        path = save_state(tmp_path / "state", arrays, meta)
        assert path.suffix == ".npz"
        loaded, loaded_meta = load_state(path)
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b/c"], arrays["b/c"])
        assert loaded_meta == meta

    def test_no_meta(self, tmp_path):
        path = save_state(tmp_path / "s", {"x": np.zeros(1)})
        _, meta = load_state(path)
        assert meta == {}

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state(tmp_path / "s", {"__meta__": np.zeros(1)})

    def test_load_without_suffix(self, tmp_path):
        save_state(tmp_path / "s", {"x": np.ones(2)})
        arrays, _ = load_state(tmp_path / "s")
        np.testing.assert_array_equal(arrays["x"], np.ones(2))

    def test_creates_parent_dirs(self, tmp_path):
        path = save_state(tmp_path / "deep" / "nested" / "s", {"x": np.zeros(1)})
        assert path.exists()


class TestTables:
    def test_alignment_and_structure(self):
        text = format_table(["A", "Bee"], [["x", 1.234], ["yy", 10.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| A")
        assert "1.23" in text

    def test_title(self):
        text = format_table(["A"], [["x"]], title="T")
        assert text.startswith("### T")

    def test_ragged_rows_raise(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["A"], [])
        assert "A" in text

    def test_mean_std(self):
        assert format_mean_std(84.92, 0.04) == "84.9 ± 0.0"
        assert format_mean_std(1.234, 0.567, digits=2) == "1.23 ± 0.57"
