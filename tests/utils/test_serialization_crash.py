"""Crash injection: interrupted saves must never corrupt cached artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.serialization import load_state, save_state, try_load_state


def _crashing_savez(fh, **payload):
    """Simulate a crash mid-write: emit partial garbage, then die."""
    fh.write(b"PK\x03\x04 truncated garbage")
    raise RuntimeError("simulated crash mid-write")


class TestCrashSafety:
    def test_interrupted_save_preserves_existing_artifact(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.npz"
        original = {"w": np.arange(6.0).reshape(2, 3)}
        save_state(path, original, {"version": 1})

        monkeypatch.setattr(np, "savez_compressed", _crashing_savez)
        with pytest.raises(RuntimeError, match="simulated crash"):
            save_state(path, {"w": np.zeros((2, 3))}, {"version": 2})

        arrays, meta = load_state(path)  # the old artifact is untouched
        np.testing.assert_array_equal(arrays["w"], original["w"])
        assert meta == {"version": 1}
        assert list(tmp_path.iterdir()) == [path]  # and no temp litter

    def test_interrupted_first_save_leaves_no_file(self, tmp_path, monkeypatch):
        path = tmp_path / "fresh.npz"
        monkeypatch.setattr(np, "savez_compressed", _crashing_savez)
        with pytest.raises(RuntimeError):
            save_state(path, {"w": np.ones(3)})
        assert list(tmp_path.iterdir()) == []

    def test_save_is_staged_then_replaced(self, tmp_path):
        """A reader polling the final path never sees a partial archive."""
        path = tmp_path / "artifact.npz"
        save_state(path, {"w": np.ones(4)})
        first = path.read_bytes()
        save_state(path, {"w": np.full(4, 2.0)})
        arrays, _ = load_state(path)
        np.testing.assert_array_equal(arrays["w"], np.full(4, 2.0))
        assert path.read_bytes() != first


class TestTryLoad:
    def test_missing_returns_none(self, tmp_path):
        assert try_load_state(tmp_path / "nope.npz") is None

    def test_corrupt_returns_none(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"definitely not a zip archive")
        assert try_load_state(path) is None
        assert path.exists()  # try_load_state itself does not unlink

    def test_truncated_returns_none(self, tmp_path):
        path = tmp_path / "cut.npz"
        save_state(path, {"w": np.arange(100.0)})
        path.write_bytes(path.read_bytes()[:40])
        assert try_load_state(path) is None

    def test_valid_roundtrip(self, tmp_path):
        path = tmp_path / "good.npz"
        save_state(path, {"w": np.arange(3.0)}, {"k": "v"})
        loaded = try_load_state(path)
        assert loaded is not None
        arrays, meta = loaded
        np.testing.assert_array_equal(arrays["w"], np.arange(3.0))
        assert meta == {"k": "v"}
