"""Load-harness unit tests: seeded arrivals and closed-loop accounting.

All tier-1: the server runs on a virtual clock with an injected constant
service time, so a full load run is pure simulation — no wall sleeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import engine_for
from repro.serve import LoadProfile, TrafficMix, generate_arrivals, run_load
from tests.serve.conftest import make_registry, make_server

MIXES = [
    TrafficMix("cnn0/wt@0.5", (3, 8, 8), weight=2.0),
    TrafficMix("cnn1/wt@0.5", (3, 8, 8), weight=1.0),
]


class TestArrivals:
    def test_deterministic_for_a_seed(self):
        profile = LoadProfile(mixes=MIXES, n_requests=50, seed=7)
        assert generate_arrivals(profile) == generate_arrivals(profile)
        different = LoadProfile(mixes=MIXES, n_requests=50, seed=8)
        assert generate_arrivals(profile) != generate_arrivals(different)

    def test_lognormal_mean_matches_configuration(self):
        profile = LoadProfile(
            mixes=MIXES, n_requests=20000, mean_interarrival=0.002, seed=0
        )
        arrivals = generate_arrivals(profile)
        gaps = np.diff([0.0] + [a.t for a in arrivals])
        # mu = ln(mean) - sigma^2/2 makes the configured mean the true one.
        assert np.mean(gaps) == pytest.approx(0.002, rel=0.05)
        # Heavy tail: the max gap dwarfs the mean.
        assert gaps.max() > 10 * np.mean(gaps)

    def test_mix_weights_respected(self):
        profile = LoadProfile(mixes=MIXES, n_requests=6000, seed=1)
        arrivals = generate_arrivals(profile)
        share = sum(a.mix is MIXES[0] for a in arrivals) / len(arrivals)
        assert share == pytest.approx(2 / 3, abs=0.03)

    def test_rows_bounded_by_max_rows(self):
        profile = LoadProfile(mixes=MIXES, n_requests=500, max_rows=3, seed=2)
        rows = {a.rows for a in generate_arrivals(profile)}
        assert rows == {1, 2, 3}

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            LoadProfile(mixes=[])
        with pytest.raises(ValueError, match="n_requests"):
            LoadProfile(mixes=MIXES, n_requests=0)
        with pytest.raises(ValueError, match="mean_interarrival"):
            LoadProfile(mixes=MIXES, mean_interarrival=0.0)


class TestRunLoad:
    def run(self, n_requests=80, seed=0, **server_kw):
        registry = make_registry(n_models=2)
        server = make_server(registry, **server_kw)
        profile = LoadProfile(mixes=MIXES, n_requests=n_requests, seed=seed)
        report, records = run_load(server, profile, keep_responses=True)
        return registry, server, report, records

    def test_zero_lost_and_accounting_adds_up(self):
        _, _, report, _ = self.run()
        assert report.lost == 0
        assert report.n_requests == 80
        assert (
            report.ok + report.shed + report.deadline_miss + report.errors == 80
        )
        assert report.batches > 0
        assert sum(report.occupancy_hist.values()) == report.batches
        assert set(report.per_model) == {"cnn0/wt@0.5", "cnn1/wt@0.5"}
        assert sum(report.per_model.values()) == 80

    def test_coalescing_happens_under_bursty_arrivals(self):
        _, _, report, _ = self.run()
        # Heavy-tail bursts + an 8-row batch limit: strictly fewer batches
        # than requests, mean occupancy above one request's worth of rows.
        assert report.batches < 80
        assert report.occupancy_max > 1

    def test_latency_percentiles_ordered(self):
        _, _, report, _ = self.run()
        assert 0 < report.latency_p50_s <= report.latency_p99_s
        assert report.throughput_rps > 0
        d = report.to_dict()
        assert d["latency_p50_ms"] == round(1e3 * report.latency_p50_s, 4)
        assert d["lost"] == 0

    def test_served_responses_bitwise_match_direct_engine(self):
        registry, _, _, records = self.run()
        checked = 0
        for arrival, images, response in records:
            if response.status != "ok":
                continue
            direct = engine_for(registry.model(arrival.mix.key)).logits(images)
            np.testing.assert_array_equal(response.value, direct)
            checked += 1
        assert checked > 0

    def test_identical_seeds_identical_outcomes(self):
        _, _, first, first_records = self.run(seed=11)
        _, _, second, second_records = self.run(seed=11)
        assert first.to_dict() == second.to_dict()
        for (_, a_img, a_resp), (_, b_img, b_resp) in zip(
            first_records, second_records
        ):
            np.testing.assert_array_equal(a_img, b_img)
            assert a_resp.status == b_resp.status
            assert a_resp.latency == b_resp.latency

    def test_rejects_threaded_server(self):
        registry = make_registry(n_models=2)
        server = make_server(registry)
        server._thread = object()
        try:
            with pytest.raises(RuntimeError, match="drives the server"):
                run_load(server, LoadProfile(mixes=MIXES, n_requests=1))
        finally:
            server._thread = None
