"""End-to-end server tests on a virtual clock: every schedule is exact.

The conftest server injects a constant service-time model, so batch
completion instants — and therefore every latency below — are precise
virtual-clock arithmetic, not timing-dependent assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import observe
from repro.infer import engine_for
from repro.serve import PruneServer, SafetyAnswer, ServeConfig, VirtualClock
from repro.serve.safety import SafetyContext
from tests.serve.conftest import (
    SERVICE_S,
    images_for,
    make_registry,
    make_server,
)

KEY0, KEY1 = "cnn0/wt@0.5", "cnn1/wt@0.5"


class TestEndToEnd:
    def test_single_request_roundtrip(self, server, rng):
        images = images_for(rng, rows=2)
        response = server.submit(KEY0, images)
        assert response.status == "pending"
        server.run_until_idle()
        assert response.status == "ok"
        assert response.value.shape == (2, 4)
        assert server.pending == 0

    def test_coalescing_three_requests_one_batch(self, server, rng):
        responses = [server.submit(KEY0, images_for(rng, rows=2)) for _ in range(3)]
        server.run_until_idle()
        assert [r.status for r in responses] == ["ok"] * 3
        metrics = server.metrics()
        assert metrics["batches"] == 1
        assert metrics["occupancies"] == [6]
        assert all(r.batch_rows == 6 for r in responses)

    def test_full_batch_flushes_without_waiting_for_window(self, server, rng):
        # batch_size is 8: two 4-row requests fill it; pump() at t=0
        # executes immediately, well before the 10ms window.
        server.submit(KEY0, images_for(rng, rows=4))
        response = server.submit(KEY0, images_for(rng, rows=4))
        assert server.pump() == 1
        assert response.status == "ok"
        assert server.clock.now() == pytest.approx(SERVICE_S)

    def test_mixed_models_separate_batches(self, server, rng):
        r0 = server.submit(KEY0, images_for(rng))
        r1 = server.submit(KEY1, images_for(rng))
        assert server.run_until_idle() == 2
        assert r0.status == r1.status == "ok"
        assert server.metrics()["batches"] == 2

    def test_latency_is_window_plus_service(self, server, rng):
        # One small request: flushes at max_wait (10ms), completes one
        # service time later — exact on the virtual clock.
        response = server.submit(KEY0, images_for(rng))
        server.run_until_idle()
        assert response.latency == pytest.approx(0.010 + SERVICE_S)

    def test_run_until_idle_rejects_threaded_server(self, server):
        server._thread = object()
        try:
            with pytest.raises(RuntimeError, match="non-threaded"):
                server.run_until_idle()
        finally:
            server._thread = None

    def test_start_rejects_virtual_clock(self, server):
        with pytest.raises(ValueError, match="wall clock"):
            server.start()


class TestBitwiseParity:
    def test_coalesced_rows_equal_direct_engine_calls(self, server, rng):
        """The acceptance bar: batched responses are bitwise-identical to
        serving the same images through direct ``engine_for`` calls."""
        registry = server.registry
        payloads = [
            (KEY0, images_for(rng, rows=1)),
            (KEY0, images_for(rng, rows=3)),
            (KEY1, images_for(rng, rows=2)),
            (KEY0, images_for(rng, rows=2)),
            (KEY1, images_for(rng, rows=1)),
        ]
        responses = [server.submit(key, images) for key, images in payloads]
        server.run_until_idle()
        for (key, images), response in zip(payloads, responses):
            assert response.status == "ok"
            direct = engine_for(registry.model(key)).logits(images)
            np.testing.assert_array_equal(response.value, direct)

    def test_middle_of_batch_rows_are_bit_exact(self, server, rng):
        # The middle request of a coalesced batch exercises offsets on
        # both sides — the case plain tail-padding parity would miss.
        middle_images = images_for(rng, rows=2)
        server.submit(KEY0, images_for(rng, rows=3))
        middle = server.submit(KEY0, middle_images)
        server.submit(KEY0, images_for(rng, rows=3))
        server.run_until_idle()
        assert middle.batch_rows == 8
        direct = engine_for(server.registry.model(KEY0)).logits(middle_images)
        np.testing.assert_array_equal(middle.value, direct)


class TestDeadlinesAndShedding:
    def test_expired_request_resolves_deadline_not_served(self, server, rng):
        response = server.submit(KEY0, images_for(rng), deadline=0.004)
        # The batch only runs after the clock has already passed the
        # deadline (e.g. the executor was busy elsewhere).
        server.clock.advance_to(0.005)
        server.pump()
        assert response.status == "deadline"
        assert server.metrics()["deadline"] == 1
        assert server.pending == 0

    def test_deadline_pulls_flush_forward(self, server, rng):
        response = server.submit(KEY0, images_for(rng), deadline=0.004)
        assert server.next_due() == pytest.approx(0.004)  # < max_wait 10ms
        server.run_until_idle()
        assert response.status == "ok"

    def test_shed_oldest_under_backpressure(self, rng):
        server = make_server(make_registry(), max_pending=2)
        first = server.submit(KEY0, images_for(rng))
        second = server.submit(KEY1, images_for(rng))
        third = server.submit(KEY0, images_for(rng))
        assert first.status == "shed"
        assert first.latency == 0.0  # resolved at submission time
        server.run_until_idle()
        assert second.status == third.status == "ok"
        metrics = server.metrics()
        assert metrics["shed"] == 1 and metrics["ok"] == 2
        assert metrics["requests"] == 3

    def test_no_deadline_when_disabled(self, rng):
        server = make_server(make_registry(), default_deadline=None)
        response = server.submit(KEY0, images_for(rng))
        server.clock.advance_to(1e6)  # a CPU-year of queueing later...
        server.pump()
        assert response.status == "ok"


class TestValidation:
    def test_rejects_non_batch_images(self, server):
        with pytest.raises(ValueError, match="non-empty batch"):
            server.submit(KEY0, np.zeros(8, dtype=np.float32))
        with pytest.raises(ValueError, match="non-empty batch"):
            server.submit(KEY0, np.zeros((0, 3, 8, 8), dtype=np.float32))

    def test_unknown_model_raises_at_submit(self, server, rng):
        with pytest.raises(KeyError, match="unknown model"):
            server.submit("ghost/wt@0.1", images_for(rng))

    def test_integer_images_are_coerced_to_float(self, server):
        response = server.submit(KEY0, np.zeros((1, 3, 8, 8), dtype=np.int64))
        server.run_until_idle()
        assert response.status == "ok"


class TestEndpoints:
    def test_predict_logits_and_predict(self, server, rng):
        images = images_for(rng, rows=3)
        logits = server.predict_logits(KEY0, images)
        direct = engine_for(server.registry.model(KEY0)).logits(images)
        np.testing.assert_array_equal(logits, direct)
        predictions = server.predict(KEY0, images)
        np.testing.assert_array_equal(predictions, np.argmax(direct, axis=1))

    def test_safety_endpoint_attaches_cached_context(self, rng):
        context = SafetyContext(
            delta=0.01,
            potentials={"nominal": 0.8, "fog": 0.3},
            parent_errors={"nominal": 0.08, "fog": 0.2},
        )
        registry = make_registry(n_models=1, safety=context)
        server = make_server(registry)
        answer = server.safety(KEY0, images_for(rng, rows=2))
        assert isinstance(answer, SafetyAnswer)
        assert answer.prediction.shape == (2,)
        np.testing.assert_array_equal(
            answer.prediction, np.argmax(answer.logits, axis=1)
        )
        assert answer.context is context
        payload = answer.to_dict()
        assert payload["safety"]["guideline"] == 2  # 0.3 < 0.9 * 0.8
        assert payload["safety"]["safe_ratio"] == 0.3
        assert payload["safety"]["worst_distribution"] == "fog"
        assert "prune moderately" in payload["safety"]["recommendation"]

    def test_safety_without_context_is_prediction_only(self, server, rng):
        answer = server.safety(KEY0, images_for(rng))
        assert answer.context is None
        assert "safety" not in answer.to_dict()


class TestLedger:
    def test_span_tree_and_serve_rollup_are_well_formed(self, tmp_path, rng):
        """Serving writes a well-formed ledger: serve.batch spans nested
        under serve.run, counters consistent, rollup latencies present."""
        observe.configure(dir=tmp_path)
        registry = make_registry()
        server = make_server(registry)
        for _ in range(6):
            server.submit(KEY0, images_for(rng, rows=2))
            server.submit(KEY1, images_for(rng))
        server.run_until_idle()
        path = observe.current_ledger_path()
        observe.shutdown()
        report = observe.load_report(path)

        runs = [r for r in report.roots if r.name == "serve.run"]
        assert len(runs) == 1
        batch_spans = [c for c in runs[0].children if c.name == "serve.batch"]
        assert len(batch_spans) == server.metrics()["batches"]
        assert all(s.error is None for s in batch_spans)
        assert sum(s.attrs["rows"] for s in batch_spans) == 18

        rollup = report.serve
        assert rollup is not None
        assert rollup["requests"] == 12
        assert rollup["batches"] == len(batch_spans)
        assert rollup["shed"] == 0 and rollup["deadline_miss"] == 0
        assert rollup["latency_p50_s"] > 0
        assert rollup["latency_p99_s"] >= rollup["latency_p50_s"]
        assert rollup["occupancy_mean"] == pytest.approx(
            18 / len(batch_spans)
        )
        # plan compiles tracked through the registry hook
        assert rollup["plan_compiles"] == 2
        assert "serve" in report.to_dict()
        assert "serve:" in report.render()


class TestDefaults:
    def test_default_clock_is_virtual(self):
        server = PruneServer(make_registry(), ServeConfig())
        assert isinstance(server.clock, VirtualClock)

    def test_config_defaults(self):
        config = ServeConfig()
        assert config.max_wait == 0.005
        assert config.max_pending == 1024
        assert config.default_deadline == 0.25
        assert config.service_time is None
