"""Tier-2 soak: hundreds of seeded requests, zero lost, bitwise parity.

The deterministic load/soak suite from the issue: a seeded heavy-tail
run across a mixed zoo (two models × two input shapes), asserting every
request reaches a terminal state, every served response is bitwise
identical to a direct ``engine_for`` call, and the whole run replays
bit-for-bit.  Also smoke-runs the full ``serve-bench`` scenario.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.infer import engine_for
from repro.serve import LoadProfile, TrafficMix, run_load, run_serve_bench
from tests.serve.conftest import make_registry, make_server

pytestmark = pytest.mark.tier2

SOAK_MIXES = [
    TrafficMix("cnn0/wt@0.5", (3, 8, 8), weight=3.0),
    TrafficMix("cnn0/wt@0.5", (3, 16, 16), weight=1.0),
    TrafficMix("cnn1/wt@0.5", (3, 8, 8), weight=2.0),
    TrafficMix("cnn1/wt@0.5", (3, 16, 16), weight=1.0),
]


def soak_run(seed: int = 0):
    registry = make_registry(n_models=2)
    server = make_server(registry, max_pending=256)
    profile = LoadProfile(
        mixes=SOAK_MIXES, n_requests=400, mean_interarrival=0.001, seed=seed
    )
    report, records = run_load(server, profile, keep_responses=True)
    return registry, server, report, records


class TestSoak:
    def test_hundreds_of_requests_none_lost_all_bitwise_exact(self):
        registry, server, report, records = soak_run()
        assert report.n_requests == 400
        assert report.lost == 0
        assert report.ok + report.shed + report.deadline_miss == 400
        assert report.errors == 0
        assert server.pending == 0
        # Mixed traffic actually coalesced across four (model, shape) groups.
        assert report.batches < 400
        assert report.occupancy_max > 1
        # Bitwise parity for EVERY served response, not a sample: the
        # fixed-pad design means coalescing never changes the arithmetic.
        served = 0
        for arrival, images, response in records:
            if response.status != "ok":
                continue
            direct = engine_for(registry.model(arrival.mix.key)).logits(images)
            np.testing.assert_array_equal(response.value, direct)
            served += 1
        assert served >= 300  # the soak actually served the vast majority

    def test_soak_replays_bit_for_bit(self):
        _, _, first, first_records = soak_run(seed=42)
        _, _, second, second_records = soak_run(seed=42)
        assert first.to_dict() == second.to_dict()
        for (_, _, a), (_, _, b) in zip(first_records, second_records):
            assert a.status == b.status
            if a.status == "ok":
                np.testing.assert_array_equal(a.value, b.value)

    def test_soak_under_memory_pressure_still_exact(self):
        # A budget that only fits one plan forces constant evict/recompile
        # churn across the four traffic groups — results must not change.
        registry = make_registry(n_models=2, memory_budget_bytes=1)
        server = make_server(registry, max_pending=256)
        profile = LoadProfile(
            mixes=SOAK_MIXES, n_requests=150, mean_interarrival=0.001, seed=3
        )
        report, records = run_load(server, profile, keep_responses=True)
        assert report.lost == 0 and report.errors == 0
        assert registry.evictions > 0
        for arrival, images, response in records:
            if response.status == "ok":
                direct = engine_for(registry.model(arrival.mix.key)).logits(
                    images
                )
                np.testing.assert_array_equal(response.value, direct)


class TestServeBench:
    def test_bench_scenario_end_to_end(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        result = run_serve_bench(n_requests=120, seed=0, out=out)
        load = result["load"]
        assert load["lost"] == 0
        assert load["n_requests"] == 120
        assert result["parity"]["bitwise_equal"]
        assert result["parity"]["sampled"] > 0
        assert len(result["models"]) == 3 and len(result["shapes"]) == 2
        # The SLO fields EXPERIMENTS.md documents are all present.
        for field in (
            "latency_p50_ms", "latency_p99_ms", "throughput_rps",
            "shed_rate", "deadline_miss_rate", "batch_occupancy",
        ):
            assert field in load
        assert "hist" in load["batch_occupancy"]
        # Safety contexts ride along for every model, guideline resolved.
        for key in result["models"]:
            assert result["safety"][key]["guideline"] in (1, 2, 3)
            assert "recommendation" in result["safety"][key]
        on_disk = json.loads(out.read_text())
        assert on_disk["load"]["lost"] == 0
        assert on_disk["parity"]["bitwise_equal"]

    def test_cli_exit_code(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        out = tmp_path / "bench.json"
        rc = main(
            ["serve-bench", "--requests", "60", "--seed", "1", "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()
