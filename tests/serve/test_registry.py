"""Registry tests: keys, warm engines, and the plan LRU under a byte budget.

Also holds the two engine regression tests this PR fixed in passing: the
autotune sweep is memoized per input shape, and a warm plan held by the
serving layer re-densifies after ``load_state_dict`` (staleness).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import engine_for
from repro.serve import ModelKey, ModelZooRegistry, as_model_key
from tests.conftest import make_tiny_cnn
from tests.serve.conftest import ROW_SHAPE, images_for, make_registry, make_server


class TestModelKey:
    def test_str_and_parse_roundtrip(self):
        for key in (
            ModelKey("resnet20"),
            ModelKey("resnet20", "wt"),
            ModelKey("resnet20", "wt", 0.5),
        ):
            assert ModelKey.parse(str(key)) == key

    def test_str_forms(self):
        assert str(ModelKey("resnet20", "wt", 0.5)) == "resnet20/wt@0.5"
        assert str(ModelKey("resnet20", "wt")) == "resnet20/wt"
        assert str(ModelKey("resnet20")) == "resnet20"

    def test_as_model_key_accepts_both(self):
        key = ModelKey("a", "wt", 0.25)
        assert as_model_key(key) is key
        assert as_model_key("a/wt@0.25") == key


class TestRegistryEntries:
    def test_register_get_engine_keys(self, registry):
        assert registry.keys() == ["cnn0/wt@0.5", "cnn1/wt@0.5"]
        entry = registry.get("cnn0/wt@0.5")
        assert entry.engine.pad == "fixed"
        assert registry.engine("cnn0/wt@0.5") is entry.engine
        assert registry.model("cnn0/wt@0.5") is entry.model

    def test_unknown_key_raises_with_choices(self, registry):
        with pytest.raises(KeyError, match="cnn0/wt@0.5"):
            registry.get("nope")

    def test_registered_engine_is_adopted_by_engine_for(self, registry):
        entry = registry.get("cnn0/wt@0.5")
        assert engine_for(entry.model) is entry.engine

    def test_reregister_replaces_entry_and_forgets_plans(self, rng):
        registry = make_registry(n_models=1)
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        assert registry.resident_plans()
        registry.register(ModelKey("cnn0", "wt", 0.5), make_tiny_cnn(seed=99))
        assert registry.resident_plans() == []
        assert registry.keys() == ["cnn0/wt@0.5"]

    def test_unregister_drops_entry_and_plans(self):
        registry = make_registry(n_models=2)
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        registry.unregister("cnn0/wt@0.5")
        assert registry.keys() == ["cnn1/wt@0.5"]
        assert registry.resident_plans() == []
        registry.unregister("cnn0/wt@0.5")  # idempotent

    def test_warm_precompiles_the_fixed_width_plan(self, registry, rng):
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        engine = registry.engine("cnn0/wt@0.5")
        # Fixed padding: the 1-row probe compiled the full-width plan that
        # serves every occupancy of this shape.
        assert engine.compiled_for(images_for(rng, rows=1))
        assert engine.compiled_for(images_for(rng, rows=5))
        assert len(registry.resident_plans()) == 1

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ModelZooRegistry(memory_budget_bytes=0)


class TestPlanLRU:
    def plan_bytes(self) -> int:
        """Constant bytes of one tiny-CNN fixed-pad plan (any model)."""
        registry = make_registry(n_models=1)
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        return registry.plan_memory_bytes()

    def test_lru_order_is_recency(self, registry, rng):
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        registry.warm("cnn1/wt@0.5", [ROW_SHAPE])
        assert [k for k, _ in registry.resident_plans()] == [
            "cnn0/wt@0.5", "cnn1/wt@0.5",
        ]
        # Serving cnn0 again moves it to most-recent.
        registry.engine("cnn0/wt@0.5").logits(images_for(rng))
        assert [k for k, _ in registry.resident_plans()] == [
            "cnn1/wt@0.5", "cnn0/wt@0.5",
        ]

    def test_evicts_least_recent_over_budget(self, rng):
        one_plan = self.plan_bytes()
        # Budget fits exactly two plans; the third touch evicts the LRU.
        registry = make_registry(n_models=3, memory_budget_bytes=2 * one_plan)
        for i in range(3):
            registry.warm(f"cnn{i}/wt@0.5", [ROW_SHAPE])
        assert registry.evictions == 1
        assert [k for k, _ in registry.resident_plans()] == [
            "cnn1/wt@0.5", "cnn2/wt@0.5",
        ]
        assert registry.plan_memory_bytes() <= 2 * one_plan
        # The evicted model recompiles transparently on next use...
        registry.engine("cnn0/wt@0.5").logits(images_for(rng))
        # ...and now cnn1 is the victim.
        assert registry.evictions == 2
        assert [k for k, _ in registry.resident_plans()] == [
            "cnn2/wt@0.5", "cnn0/wt@0.5",
        ]

    def test_just_used_plan_survives_even_alone_over_budget(self, rng):
        # A budget smaller than one plan must still retain the plan that
        # just served — evicting it would recompile on every request.
        registry = make_registry(n_models=1, memory_budget_bytes=1)
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        assert len(registry.resident_plans()) == 1
        assert registry.evictions == 0
        registry.engine("cnn0/wt@0.5").logits(images_for(rng))
        assert len(registry.resident_plans()) == 1

    def test_eviction_drops_the_engine_plan_too(self, rng):
        one_plan = self.plan_bytes()
        registry = make_registry(n_models=2, memory_budget_bytes=one_plan)
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        registry.warm("cnn1/wt@0.5", [ROW_SHAPE])
        engine0 = registry.engine("cnn0/wt@0.5")
        assert not engine0.compiled_for(images_for(rng))
        assert sum(engine0.plan_stats().values()) == 0

    def test_stats_snapshot(self):
        registry = make_registry(n_models=2, memory_budget_bytes=1 << 30)
        registry.warm("cnn0/wt@0.5", [ROW_SHAPE])
        stats = registry.stats()
        assert stats["models"] == 2
        assert stats["resident_plans"] == 1
        assert stats["plan_memory_bytes"] == registry.plan_memory_bytes()
        assert stats["memory_budget_bytes"] == 1 << 30
        assert stats["evictions"] == 0


class TestAutotuneMemoization:
    def test_sweep_runs_once_per_shape(self, registry, rng):
        """Regression: repeated autotune calls must not re-time the sweep."""
        engine = registry.engine("cnn0/wt@0.5")
        images = images_for(rng, rows=64)
        calls = []
        original = engine.logits
        engine.logits = lambda *a, **kw: (calls.append(1), original(*a, **kw))[1]
        first = engine.autotune_batch_size(images, candidates=(16, 32, 64))
        sweep_calls = len(calls)
        assert sweep_calls > 0
        second = engine.autotune_batch_size(images, candidates=(16, 32, 64))
        assert second == first == engine.batch_size
        assert len(calls) == sweep_calls  # cached: zero new timing runs

    def test_distinct_shapes_and_candidates_sweep_separately(self, registry, rng):
        engine = registry.engine("cnn0/wt@0.5")
        engine.autotune_batch_size(images_for(rng, rows=32), candidates=(16, 32))
        assert len(engine._autotune_cache) == 1
        engine.autotune_batch_size(images_for(rng, rows=64), candidates=(16, 32))
        assert len(engine._autotune_cache) == 2
        engine.autotune_batch_size(images_for(rng, rows=64), candidates=(16,))
        assert len(engine._autotune_cache) == 3


class TestPlanStaleness:
    def test_load_state_dict_under_warm_serving_refreshes_outputs(self, rng):
        """Regression: a warm plan held by the server must re-densify when
        the model's weights change out from under it."""
        registry = make_registry(n_models=1)
        server = make_server(registry)
        key = "cnn0/wt@0.5"
        images = images_for(rng, rows=3)
        before = server.predict_logits(key, images)

        donor = make_tiny_cnn(seed=77)
        registry.model(key).load_state_dict(donor.state_dict())
        after = server.predict_logits(key, images)

        assert not np.array_equal(before, after)
        # Bitwise-equal to the adopted engine on the new weights: the plan
        # refreshed rather than serving stale constants.
        np.testing.assert_array_equal(
            after, engine_for(registry.model(key)).logits(images)
        )
