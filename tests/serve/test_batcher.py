"""Virtual-clock batcher tests: coalescing, flushing, shedding.

The batcher never reads a clock — every decision is a pure function of
queue state and a caller-supplied instant — so these tests hand it
explicit times and assert the exact flush schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    TERMINAL,
    DynamicBatcher,
    GroupKey,
    MonotonicClock,
    Request,
    VirtualClock,
)


def req(model="m", rows=1, shape=(3, 4, 4), t=0.0, deadline=None) -> Request:
    images = np.zeros((rows,) + shape, dtype=np.float32)
    return Request(model=model, images=images, enqueued=t, deadline=deadline)


LIMIT_8 = lambda group: 8  # noqa: E731


class TestGrouping:
    def test_group_key_splits_on_model_shape_and_dtype(self):
        a = req(model="a")
        b = req(model="b")
        c = req(model="a", shape=(3, 8, 8))
        d = Request(
            model="a", images=np.zeros((1, 3, 4, 4), dtype=np.float64),
            enqueued=0.0, deadline=None,
        )
        assert a.group != b.group
        assert a.group != c.group
        assert a.group != d.group
        assert a.group == req(model="a").group

    def test_same_group_coalesces_into_one_batch(self):
        batcher = DynamicBatcher(max_wait=0.010)
        for _ in range(3):
            assert batcher.offer(req(rows=2, t=0.0)) == []
        batches = batcher.take_due(0.010, LIMIT_8)
        assert len(batches) == 1
        assert batches[0].rows == 6
        assert len(batches[0].requests) == 3
        assert batcher.pending == 0

    def test_distinct_groups_flush_as_separate_batches(self):
        batcher = DynamicBatcher(max_wait=0.010)
        batcher.offer(req(model="a"))
        batcher.offer(req(model="b"))
        batcher.offer(req(model="a", shape=(3, 8, 8)))
        batches = batcher.take_due(0.010, LIMIT_8)
        assert len(batches) == 3
        assert {b.group.model for b in batches} == {"a", "b"}


class TestFlushTiming:
    def test_not_due_before_window(self):
        batcher = DynamicBatcher(max_wait=0.010)
        batcher.offer(req(t=0.0))
        assert batcher.take_due(0.009, LIMIT_8) == []
        assert batcher.pending == 1

    def test_due_exactly_at_window(self):
        batcher = DynamicBatcher(max_wait=0.010)
        batcher.offer(req(t=0.0))
        assert len(batcher.take_due(0.010, LIMIT_8)) == 1

    def test_window_counts_from_oldest_request(self):
        batcher = DynamicBatcher(max_wait=0.010)
        batcher.offer(req(t=0.0))
        batcher.offer(req(t=0.008))  # does not push the window out
        assert batcher.next_due(0.008) == pytest.approx(0.010)

    def test_full_batch_flushes_before_window(self):
        batcher = DynamicBatcher(max_wait=10.0)
        batcher.offer(req(rows=5, t=0.0))
        batcher.offer(req(rows=3, t=0.0))
        batches = batcher.take_due(0.0, LIMIT_8)
        assert len(batches) == 1
        assert batches[0].rows == 8

    def test_deadline_earlier_than_window_pulls_flush_forward(self):
        batcher = DynamicBatcher(max_wait=0.050)
        batcher.offer(req(t=0.0, deadline=0.004))
        assert batcher.next_due(0.0) == pytest.approx(0.004)
        assert batcher.take_due(0.003, LIMIT_8) == []
        assert len(batcher.take_due(0.004, LIMIT_8)) == 1

    def test_next_due_clamps_past_instants_to_now(self):
        batcher = DynamicBatcher(max_wait=0.010)
        batcher.offer(req(t=0.0))
        assert batcher.next_due(5.0) == 5.0

    def test_next_due_none_when_empty(self):
        assert DynamicBatcher().next_due(0.0) is None

    def test_force_flushes_everything_immediately(self):
        batcher = DynamicBatcher(max_wait=10.0)
        batcher.offer(req(model="a", t=0.0))
        batcher.offer(req(model="b", t=0.0))
        assert len(batcher.take_due(0.0, LIMIT_8, force=True)) == 2
        assert batcher.pending == 0


class TestBatchFilling:
    def test_fifo_fill_stops_before_overflowing_limit(self):
        batcher = DynamicBatcher(max_wait=0.0)
        first, second, third = req(rows=4), req(rows=3), req(rows=2)
        for r in (first, second, third):
            batcher.offer(r)
        (batch,) = batcher.take_due(0.0, LIMIT_8)
        # 4 + 3 fits in 8; adding the third (2 rows) would overflow.
        assert batch.requests == [first, second]
        assert batcher.pending == 1
        (leftover,) = batcher.take_due(0.0, LIMIT_8)
        assert leftover.requests == [third]

    def test_oversized_request_becomes_its_own_batch(self):
        batcher = DynamicBatcher(max_wait=0.0)
        big = req(rows=20)
        batcher.offer(big)
        batcher.offer(req(rows=1))
        (batch,) = batcher.take_due(0.0, LIMIT_8)
        assert batch.requests == [big]
        assert batch.rows == 20

    def test_one_batch_per_group_per_take(self):
        batcher = DynamicBatcher(max_wait=0.0)
        for _ in range(4):
            batcher.offer(req(rows=8))
        assert len(batcher.take_due(0.0, LIMIT_8)) == 1
        assert batcher.pending == 3


class TestBackpressure:
    def test_shed_oldest_when_full(self):
        batcher = DynamicBatcher(max_pending=3)
        oldest = req(model="a", t=0.0)
        batcher.offer(oldest)
        batcher.offer(req(model="b", t=0.001))
        batcher.offer(req(model="a", t=0.002))
        newcomer = req(model="c", t=0.003)
        shed = batcher.offer(newcomer)
        assert shed == [oldest]
        assert batcher.pending == 3
        remaining = {id(r) for r in batcher._iter_requests()}
        assert id(newcomer) in remaining and id(oldest) not in remaining

    def test_shed_order_is_global_age_not_per_group(self):
        batcher = DynamicBatcher(max_pending=2)
        first = req(model="a", t=0.0)
        second = req(model="b", t=0.001)
        batcher.offer(first)
        batcher.offer(second)
        assert batcher.offer(req(model="b", t=0.002)) == [first]
        assert batcher.offer(req(model="b", t=0.003)) == [second]

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_wait=-0.001)
        with pytest.raises(ValueError):
            DynamicBatcher(max_pending=0)


class TestPendingResponse:
    def test_lifecycle_and_result_errors(self):
        request = req()
        response = request.response
        assert not response.done
        with pytest.raises(RuntimeError, match="pending"):
            response.result()
        response._resolve("ok", value=np.ones((1, 4)), latency=0.5)
        assert response.done and response.status in TERMINAL
        assert response.latency == 0.5
        np.testing.assert_array_equal(response.result(), np.ones((1, 4)))

    def test_shed_and_error_raise_from_result(self):
        shed = req().response
        shed._resolve("shed", latency=0.0)
        with pytest.raises(RuntimeError, match="not served"):
            shed.result()
        failed = req().response
        failed._resolve("error", error=ValueError("boom"), latency=0.0)
        with pytest.raises(RuntimeError, match="boom"):
            failed.result()


class TestClocks:
    def test_virtual_clock_moves_only_on_demand(self):
        clock = VirtualClock()
        assert clock.virtual and clock.now() == 0.0
        clock.sleep(1.5)
        clock.advance_to(2.0)
        clock.advance_to(1.0)  # never moves backwards
        assert clock.now() == 2.0
        with pytest.raises(ValueError):
            clock.sleep(-1.0)

    def test_monotonic_clock_is_wall_time(self):
        clock = MonotonicClock()
        assert not clock.virtual
        assert clock.now() > 0
