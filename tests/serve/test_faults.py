"""Fault containment and concurrency: chaos drills and a threaded hammer.

The chaos tests run on the virtual clock (retry backoff sleeps are free)
and scope injection to one model's serve key, proving a faulting engine
fails only its own batches while the rest of the zoo keeps serving.  The
threaded hammer is tier2: it exercises the wall-clock executor with real
threads, which necessarily waits on real time.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.infer import engine_for
from repro.resilience import chaos
from repro.serve import MonotonicClock, PruneServer, ServeConfig
from tests.serve.conftest import images_for, make_registry, make_server

KEY0, KEY1 = "cnn0/wt@0.5", "cnn1/wt@0.5"


class TestChaosContainment:
    def test_faulting_model_fails_alone_and_queue_drains(self, rng):
        server = make_server(make_registry(), max_retries=0)
        chaos.configure(exception_rate=1.0, seed=3, only_keys=(f"serve/{KEY0}",))
        broken = [server.submit(KEY0, images_for(rng)) for _ in range(3)]
        healthy = [server.submit(KEY1, images_for(rng)) for _ in range(3)]
        server.run_until_idle()
        assert [r.status for r in broken] == ["error"] * 3
        assert [r.status for r in healthy] == ["ok"] * 3
        assert server.pending == 0
        metrics = server.metrics()
        assert metrics["error"] == 3 and metrics["ok"] == 3
        for response in broken:
            with pytest.raises(RuntimeError, match="chaos"):
                response.result()

    def test_mid_run_fault_only_kills_its_batch(self, rng):
        # Batches interleave: the faulting model errors, then the same
        # queue keeps serving later healthy batches.
        server = make_server(make_registry(), max_retries=0)
        chaos.configure(exception_rate=1.0, seed=3, only_keys=(f"serve/{KEY0}",))
        first = server.submit(KEY1, images_for(rng))
        server.run_until_idle()
        bad = server.submit(KEY0, images_for(rng))
        server.run_until_idle()
        after = server.submit(KEY1, images_for(rng))
        server.run_until_idle()
        assert (first.status, bad.status, after.status) == ("ok", "error", "ok")

    def test_retry_recovers_first_attempt_faults(self, rng):
        # first_attempts_only=1: chaos fires only on attempt 0, so one
        # retry deterministically recovers — and the retry backoff is a
        # free virtual-clock sleep.
        server = make_server(make_registry(), max_retries=1)
        chaos.configure(
            exception_rate=1.0, seed=3,
            only_keys=(f"serve/{KEY0}",), first_attempts_only=1,
        )
        images = images_for(rng)
        response = server.submit(KEY0, images)
        server.run_until_idle()
        assert response.status == "ok"
        assert server.metrics()["retries"] == 1
        np.testing.assert_array_equal(
            response.value,
            engine_for(server.registry.model(KEY0)).logits(images),
        )

    def test_retry_budget_exhausts_to_error(self, rng):
        server = make_server(make_registry(), max_retries=2)
        chaos.configure(exception_rate=1.0, seed=3, only_keys=(f"serve/{KEY0}",))
        response = server.submit(KEY0, images_for(rng))
        server.run_until_idle()
        assert response.status == "error"
        assert server.metrics()["retries"] == 2

    def test_ledger_records_batch_errors(self, tmp_path, rng):
        from repro import observe

        observe.configure(dir=tmp_path)
        server = make_server(make_registry(), max_retries=0)
        chaos.configure(exception_rate=1.0, seed=3, only_keys=(f"serve/{KEY0}",))
        server.submit(KEY0, images_for(rng))
        server.submit(KEY1, images_for(rng))
        server.run_until_idle()
        path = observe.current_ledger_path()
        observe.shutdown()
        report = observe.load_report(path)
        assert report.event_counts.get("serve.batch_error") == 1
        rollup = report.serve
        assert rollup["batch_errors"] == 1
        # The failed batch's span carries the error attribute; the healthy
        # one does not — and both are children of the same serve.run.
        (run,) = [r for r in report.roots if r.name == "serve.run"]
        errors = [
            c.attrs.get("error") for c in run.children if c.name == "serve.batch"
        ]
        assert sorted(e is not None for e in errors) == [False, True]


@pytest.mark.tier2
class TestThreadedHammer:
    def test_concurrent_mixed_shape_traffic_all_served(self, rng):
        """Thread hammer: concurrent submitters, mixed models and shapes,
        every request terminal, served values bitwise-correct."""
        registry = make_registry(n_models=2, batch_size=8)
        server = PruneServer(
            registry,
            ServeConfig(max_wait=0.002, max_pending=4096, default_deadline=None),
            MonotonicClock(),
        )
        payloads = []  # (key, images) per request, built up front
        seeds = np.random.default_rng(5).integers(0, 2**31, size=8)
        for i, seed in enumerate(seeds):
            local = np.random.default_rng(seed)
            for _ in range(10):
                key = KEY0 if local.integers(2) else KEY1
                shape = (3, 8, 8) if local.integers(2) else (3, 16, 16)
                rows = int(local.integers(1, 5))
                payloads.append(
                    (key, local.standard_normal((rows,) + shape).astype(np.float32))
                )
        chunks = np.array_split(np.arange(len(payloads)), 8)
        responses: dict[int, object] = {}
        lock = threading.Lock()

        def submitter(indices):
            for i in indices:
                key, images = payloads[i]
                response = server.submit(key, images)
                with lock:
                    responses[i] = response

        with server.start():
            threads = [
                threading.Thread(target=submitter, args=(chunk,))
                for chunk in chunks
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for response in responses.values():
                assert response.wait(timeout=30.0)
        assert len(responses) == len(payloads)
        assert all(r.status == "ok" for r in responses.values())
        # Spot-check bitwise parity against the adopted engines.
        check = np.random.default_rng(6).choice(len(payloads), size=16, replace=False)
        for i in check:
            key, images = payloads[i]
            direct = engine_for(registry.model(key)).logits(images)
            np.testing.assert_array_equal(responses[i].value, direct)

    def test_stop_without_drain_sheds_backlog(self, rng):
        registry = make_registry(n_models=1)
        server = PruneServer(
            registry,
            # A long window keeps the backlog queued until stop().
            ServeConfig(max_wait=60.0, max_pending=64, default_deadline=None),
            MonotonicClock(),
        )
        server.start()
        responses = [server.submit(KEY0, images_for(rng)) for _ in range(3)]
        server.stop(drain=False)
        assert all(r.status == "shed" for r in responses)
        assert server.pending == 0

    def test_stop_with_drain_serves_backlog(self, rng):
        registry = make_registry(n_models=1)
        server = PruneServer(
            registry,
            ServeConfig(max_wait=60.0, max_pending=64, default_deadline=None),
            MonotonicClock(),
        )
        server.start()
        responses = [server.submit(KEY0, images_for(rng)) for _ in range(3)]
        server.stop(drain=True)
        assert all(r.status == "ok" for r in responses)
