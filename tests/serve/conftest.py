"""Serve-test fixtures: tiny zoos on virtual clocks, isolated state.

Every server here runs in simulated mode on a :class:`VirtualClock` with
an injected constant service-time model, so flush windows, deadlines and
shedding are bit-for-bit reproducible and nothing ever sleeps.  Observe
and chaos state is reset around every test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import observe
from repro.resilience import chaos
from repro.serve import (
    ModelKey,
    ModelZooRegistry,
    PruneServer,
    ServeConfig,
    VirtualClock,
)
from tests.conftest import make_tiny_cnn

ROW_SHAPE = (3, 8, 8)
SERVICE_S = 0.001  # virtual seconds charged per executed batch


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    observe.shutdown()
    monkeypatch.delenv(observe.DIR_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()
    observe.shutdown()


def make_registry(
    n_models: int = 2,
    batch_size: int = 8,
    memory_budget_bytes: int | None = None,
    safety=None,
) -> ModelZooRegistry:
    """A registry of ``n_models`` tiny CNNs keyed ``cnn<i>/wt@0.5``."""
    registry = ModelZooRegistry(
        memory_budget_bytes=memory_budget_bytes, batch_size=batch_size
    )
    for i in range(n_models):
        registry.register(
            ModelKey(f"cnn{i}", "wt", 0.5),
            make_tiny_cnn(seed=10 + i),
            safety=safety,
        )
    return registry


def make_server(
    registry: ModelZooRegistry,
    max_wait: float = 0.010,
    max_pending: int = 64,
    default_deadline: float | None = 0.100,
    max_retries: int = 1,
    service_s: float = SERVICE_S,
) -> PruneServer:
    """A simulated-mode server with a constant virtual service time."""
    return PruneServer(
        registry,
        ServeConfig(
            max_wait=max_wait,
            max_pending=max_pending,
            default_deadline=default_deadline,
            max_retries=max_retries,
            retry_base_delay=0.001,
            service_time=lambda group, rows, wall: service_s,
        ),
        VirtualClock(),
    )


@pytest.fixture
def registry() -> ModelZooRegistry:
    return make_registry()


@pytest.fixture
def server(registry) -> PruneServer:
    return make_server(registry)


def images_for(rng: np.random.Generator, rows: int = 1) -> np.ndarray:
    return rng.standard_normal((rows,) + ROW_SHAPE).astype(np.float32)
