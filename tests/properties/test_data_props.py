"""Property-based tests of data generation and corruption invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.corruptions import available_corruptions, corrupt
from repro.data.noise import add_uniform_noise
from repro.data.synthetic import ClassificationTaskConfig, generate_classification
from repro.utils.serialization import load_state, save_state
import pytest

pytestmark = pytest.mark.tier2


class TestGeneratorProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(2, 8),
        st.sampled_from([8, 10, 12]),
        st.integers(0, 10_000),
    )
    def test_always_valid_images(self, num_classes, size, seed):
        cfg = ClassificationTaskConfig(num_classes=num_classes, image_size=size, seed=seed)
        images, labels = generate_classification(cfg, 12)
        assert images.shape == (12, 3, size, size)
        assert np.isfinite(images).all()
        assert images.min() >= 0 and images.max() <= 1
        assert (labels >= 0).all() and (labels < num_classes).all()

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1000))
    def test_seed_determinism(self, seed):
        cfg = ClassificationTaskConfig(num_classes=3, image_size=8, seed=seed)
        a, la = generate_classification(cfg, 6)
        b, lb = generate_classification(cfg, 6)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)


class TestCorruptionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from(available_corruptions()),
        st.integers(1, 5),
        st.integers(0, 100),
    )
    def test_output_always_valid(self, name, severity, seed):
        rng = np.random.default_rng(0)
        images = rng.random((4, 3, 8, 8)).astype(np.float32)
        out = corrupt(images, name, severity, seed=seed)
        assert out.shape == images.shape
        assert out.dtype == np.float32
        assert np.isfinite(out).all()
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestNoiseProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 1.0), st.integers(0, 100))
    def test_linf_bound_respected(self, eps, seed):
        x = np.zeros((3, 4, 4), dtype=np.float32)
        out = add_uniform_noise(x, eps, np.random.default_rng(seed))
        assert np.abs(out).max() <= eps + 1e-7


class TestSerializationProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="_./"),
                min_size=1,
                max_size=12,
            ).filter(lambda s: s != "__meta__"),
            st.sampled_from(["f32", "f64", "i64"]),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 1000),
    )
    def test_roundtrip_arbitrary_state(self, spec, seed):
        import tempfile
        from pathlib import Path

        rng = np.random.default_rng(seed)
        dtypes = {"f32": np.float32, "f64": np.float64, "i64": np.int64}
        arrays = {
            key: (rng.random((2, 3)) * 10).astype(dtypes[kind]) for key, kind in spec.items()
        }
        tmp = tempfile.mkdtemp(prefix="repro-ser-")
        path = Path(tmp) / "state"
        save_state(path, arrays, {"n": len(arrays)})
        loaded, meta = load_state(path)
        assert set(loaded) == set(arrays)
        for key in arrays:
            np.testing.assert_array_equal(loaded[key], arrays[key])
            assert loaded[key].dtype == arrays[key].dtype
        assert meta == {"n": len(arrays)}
