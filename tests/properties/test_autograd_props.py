"""Property-based tests of autograd invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, functional as F
from repro.autograd.tensor import unbroadcast
import pytest

pytestmark = pytest.mark.tier2

finite_floats = st.floats(-10, 10, allow_nan=False, width=32)


def small_arrays(max_side=4, min_dims=1, max_dims=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, max_side=max_side),
        elements=st.floats(-5, 5, allow_nan=False),
    )


class TestBackwardLinearity:
    @settings(max_examples=25, deadline=None)
    @given(small_arrays())
    def test_grad_of_sum_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @settings(max_examples=25, deadline=None)
    @given(small_arrays(), st.floats(-3, 3, allow_nan=False))
    def test_scalar_mul_scales_grad(self, data, c):
        x = Tensor(data, requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(data, c), rtol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(small_arrays())
    def test_add_self_doubles_grad(self, data):
        x = Tensor(data, requires_grad=True)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones_like(data))


class TestUnbroadcast:
    @settings(max_examples=30, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=2))
    def test_row_broadcast_sums_rows(self, data):
        grad = unbroadcast(data, (1, data.shape[1]))
        np.testing.assert_allclose(grad, data.sum(axis=0, keepdims=True))

    @settings(max_examples=30, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=3))
    def test_scalar_broadcast_sums_all(self, data):
        grad = unbroadcast(data, ())
        np.testing.assert_allclose(grad, data.sum())

    @settings(max_examples=30, deadline=None)
    @given(small_arrays())
    def test_same_shape_identity(self, data):
        np.testing.assert_array_equal(unbroadcast(data, data.shape), data)


class TestNumericInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
            elements=st.floats(-30, 30, allow_nan=False),
        )
    )
    def test_softmax_is_distribution(self, logits):
        probs = F.softmax(Tensor(logits)).data
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
            elements=st.floats(-30, 30, allow_nan=False),
        )
    )
    def test_softmax_shift_invariant(self, logits):
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 5)),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        st.data(),
    )
    def test_cross_entropy_nonnegative(self, logits, data):
        n, k = logits.shape
        targets = np.array(
            data.draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
        )
        loss = F.cross_entropy(Tensor(logits), targets)
        assert loss.item() >= 0

    @settings(max_examples=15, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(2, 6), st.integers(2, 6)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_max_pool_upper_bounds_avg_pool(self, x):
        mx = F.max_pool2d(Tensor(x), 2, stride=1).data
        av = F.avg_pool2d(Tensor(x), 2, stride=1).data
        assert (mx >= av - 1e-9).all()

    @settings(max_examples=15, deadline=None)
    @given(small_arrays(min_dims=2, max_dims=2))
    def test_relu_idempotent(self, x):
        once = Tensor(x).relu()
        twice = once.relu()
        np.testing.assert_array_equal(once.data, twice.data)


class TestConvGeometryProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(1, 2),  # batch
        st.integers(1, 3),  # in channels
        st.integers(1, 3),  # out channels
        st.integers(4, 7),  # spatial size
        st.sampled_from([1, 3]),  # kernel
        st.sampled_from([1, 2]),  # stride
        st.sampled_from([0, 1]),  # padding
        st.integers(0, 100),  # seed
    )
    def test_conv_forward_backward_shapes(self, n, c, f, s, k, stride, pad, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((n, c, s, s)), requires_grad=True)
        w = Tensor(rng.standard_normal((f, c, k, k)), requires_grad=True)
        out = F.conv2d(x, w, stride=stride, padding=pad)
        expected = (s + 2 * pad - k) // stride + 1
        assert out.shape == (n, f, expected, expected)
        out.sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape
        assert np.isfinite(x.grad).all() and np.isfinite(w.grad).all()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50))
    def test_conv_linearity_in_input(self, seed):
        """conv(a*x) == a*conv(x) — convolution is linear."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 2, 5, 5))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)))
        a = float(rng.uniform(0.5, 2.0))
        out1 = F.conv2d(Tensor(a * x), w, padding=1).data
        out2 = a * F.conv2d(Tensor(x), w, padding=1).data
        np.testing.assert_allclose(out1, out2, rtol=1e-6)
