"""Property-based tests of layer-budget allocation (FT / PFP / SiPP).

The allocation contract shared by all three methods: per-layer budgets sum
to the global prune ratio, no layer is ever pruned to zero surviving
filters/channels, and the channel choice is equivariant under channel
permutation (the *scores* decide, not the storage order).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pruning import build_method
from repro.pruning.ft import channel_l1_sensitivity
from repro.pruning.mask import (
    model_prune_ratio,
    prunable_layers,
    structured_prunable_layers,
    total_prunable_weights,
)
from repro.pruning.sipp import relative_weight_sensitivity
from repro.pruning.structured import (
    apply_channel_counts,
    channel_weight_cost,
    pruned_channels,
)

from tests.conftest import make_tiny_cnn

pytestmark = pytest.mark.tier2


def _sample_inputs(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((16, 3, 8, 8)).astype(
        np.float32
    )


def _max_structured_ratio(model) -> float:
    """The ratio when every structured layer keeps exactly one channel."""
    pruned = sum(
        (layer.in_channels - 1) * channel_weight_cost(layer)
        for _, layer in structured_prunable_layers(model)
    )
    return pruned / total_prunable_weights(model)


class TestStructuredAllocation:
    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.05, 0.95), st.sampled_from(["ft", "pfp"]))
    def test_target_reached_or_saturated(self, target, method_name):
        model = make_tiny_cnn()
        achieved = build_method(method_name).prune(model, target, _sample_inputs())
        assert achieved == pytest.approx(model_prune_ratio(model))
        saturated = _max_structured_ratio(model)
        # Either the budget allocation met the global target, or the model
        # hit the structural ceiling (one surviving channel everywhere).
        assert achieved >= target - 1e-9 or achieved == pytest.approx(saturated)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.05, 0.95), st.sampled_from(["ft", "pfp"]))
    def test_never_prunes_layer_to_zero_channels(self, target, method_name):
        model = make_tiny_cnn()
        build_method(method_name).prune(model, target, _sample_inputs())
        for name, layer in structured_prunable_layers(model):
            alive = layer.in_channels - int(pruned_channels(layer).sum())
            assert alive >= 1, f"{name} lost all input channels"

    @settings(max_examples=8, deadline=None)
    @given(st.floats(0.1, 0.9))
    def test_budgets_sum_to_global_ratio(self, target):
        model = make_tiny_cnn()
        build_method("ft").prune(model, target)
        structured = dict(structured_prunable_layers(model))
        by_budget = sum(
            int(pruned_channels(layer).sum()) * channel_weight_cost(layer)
            for layer in structured.values()
        )
        by_mask = sum(layer.num_pruned for layer in structured.values())
        assert by_budget == by_mask
        assert model_prune_ratio(model) == pytest.approx(
            by_mask / total_prunable_weights(model)
        )


class TestSiPPAllocation:
    @settings(max_examples=8, deadline=None)
    @given(st.floats(0.05, 0.95))
    def test_layer_budgets_sum_to_global_count(self, target):
        model = make_tiny_cnn()
        achieved = build_method("sipp").prune(model, target, _sample_inputs())
        total = total_prunable_weights(model)
        per_layer = sum(layer.num_pruned for _, layer in prunable_layers(model))
        assert per_layer == round(achieved * total)
        assert achieved == pytest.approx(target, abs=2 / total)

    @settings(max_examples=8, deadline=None)
    @given(st.floats(0.05, 0.9))
    def test_no_layer_fully_pruned(self, target):
        # Relative sensitivities give every output unit a dominant incoming
        # edge, so a global threshold never wipes out an entire layer.
        model = make_tiny_cnn()
        build_method("sipp").prune(model, target, _sample_inputs())
        for name, layer in prunable_layers(model):
            assert layer.num_pruned < layer.weight_mask.size, f"{name} fully pruned"


class TestPermutationEquivariance:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_ft_sensitivity_equivariant(self, seed):
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((8, 6, 3, 3))
        perm = rng.permutation(6)
        np.testing.assert_allclose(
            channel_l1_sensitivity(weight[:, perm]),
            channel_l1_sensitivity(weight)[perm],
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_sipp_sensitivity_equivariant(self, seed):
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((8, 6, 3, 3))
        activation = rng.uniform(0.1, 1.0, 6)
        perm = rng.permutation(6)
        np.testing.assert_allclose(
            relative_weight_sensitivity(weight[:, perm], activation[perm]),
            relative_weight_sensitivity(weight, activation)[:, perm],
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 7))
    def test_channel_choice_follows_scores_not_order(self, seed, count):
        """Permuting a layer's sensitivity scores prunes the permuted channels."""
        rng = np.random.default_rng(seed)

        def lowest_pruned(scores):
            model = make_tiny_cnn()
            layers = dict(structured_prunable_layers(model))
            name = next(iter(layers))
            sens = {
                n: scores if n == name else channel_l1_sensitivity(l.weight.data)
                for n, l in layers.items()
            }
            apply_channel_counts(model, sens, {name: count})
            return name, pruned_channels(layers[name])

        # Distinct scores: the pruned set is determined by values alone.
        n_channels = 8
        scores = rng.permutation(n_channels).astype(np.float64) + 1.0
        perm = rng.permutation(n_channels)
        _, base = lowest_pruned(scores)
        _, permuted = lowest_pruned(scores[perm])
        np.testing.assert_array_equal(base[perm], permuted)
