"""Property-based tests of pruning invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.prune_potential import prune_potential_from_curve
from repro.pruning import (
    FilterThresholding,
    WeightThresholding,
    model_prune_ratio,
)
from repro.pruning.mask import prunable_layers, structured_prunable_layers
from repro.pruning.structured import pruned_channels

from tests.conftest import make_tiny_cnn

pytestmark = pytest.mark.tier2


class TestWTProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.floats(0.01, 0.97))
    def test_any_target_achieved(self, target):
        model = make_tiny_cnn()
        achieved = WeightThresholding().prune(model, target)
        assert achieved == pytest.approx(target, abs=0.01)
        assert model_prune_ratio(model) == pytest.approx(achieved)

    @settings(max_examples=8, deadline=None)
    @given(
        st.lists(st.floats(0.05, 0.95), min_size=2, max_size=4, unique=True).map(sorted)
    )
    def test_iterative_sequence_monotone(self, targets):
        model = make_tiny_cnn()
        wt = WeightThresholding()
        prev_masks = None
        for target in targets:
            wt.prune(model, target)
            masks = {n: l.weight_mask.copy() for n, l in prunable_layers(model)}
            if prev_masks is not None:
                for name in masks:
                    revived = (prev_masks[name] == 0) & (masks[name] == 1)
                    assert not revived.any()
            prev_masks = masks

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.05, 0.95))
    def test_kept_weights_dominate_pruned(self, target):
        """Every surviving weight's magnitude >= every pruned weight's."""
        model = make_tiny_cnn(seed=2)
        WeightThresholding().prune(model, target)
        all_kept, all_pruned = [], []
        for _, layer in prunable_layers(model):
            w = np.abs(layer.weight.data)  # zeroed where pruned
            m = layer.weight_mask
            # Recover original magnitudes for pruned entries is impossible
            # post-zeroing, so check on a fresh model with same seed.
        fresh = make_tiny_cnn(seed=2)
        sens = np.concatenate(
            [np.abs(l.weight.data).ravel() for _, l in prunable_layers(fresh)]
        )
        masks = np.concatenate(
            [l.weight_mask.ravel() for _, l in prunable_layers(model)]
        )
        kept_min = sens[masks == 1].min()
        pruned_max = sens[masks == 0].max() if (masks == 0).any() else -np.inf
        assert kept_min >= pruned_max - 1e-9


class TestFTProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.floats(0.05, 0.6))
    def test_columns_fully_pruned_or_kept(self, target):
        model = make_tiny_cnn()
        FilterThresholding().prune(model, target)
        for _, layer in structured_prunable_layers(model):
            col = layer.weight_mask.sum(axis=(0, 2, 3))
            full = float(layer.weight_mask[:, 0].size)
            assert set(np.unique(col)) <= {0.0, full}

    @settings(max_examples=8, deadline=None)
    @given(st.floats(0.05, 0.9))
    def test_at_least_one_channel_survives(self, target):
        model = make_tiny_cnn()
        FilterThresholding().prune(model, target)
        for _, layer in structured_prunable_layers(model):
            assert pruned_channels(layer).sum() < layer.in_channels


class TestPrunePotentialProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
        st.floats(0.0, 0.5),
        st.floats(0.0, 0.2),
    )
    def test_bounded_by_max_ratio(self, errors, parent_error, delta):
        ratios = np.linspace(0.1, 0.9, len(errors))
        p = prune_potential_from_curve(ratios, np.array(errors), parent_error, delta)
        assert 0.0 <= p <= ratios.max()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6),
        st.floats(0.0, 0.5),
    )
    def test_monotone_in_delta(self, errors, parent_error):
        ratios = np.linspace(0.1, 0.9, len(errors))
        errors = np.array(errors)
        p_small = prune_potential_from_curve(ratios, errors, parent_error, 0.01)
        p_large = prune_potential_from_curve(ratios, errors, parent_error, 0.2)
        assert p_large >= p_small

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 0.3), min_size=1, max_size=6))
    def test_zero_delta_parent_level_errors(self, errors):
        """Errors at/below parent level always qualify."""
        ratios = np.linspace(0.1, 0.9, len(errors))
        errors = np.array(errors)
        p = prune_potential_from_curve(ratios, errors, errors.max(), 0.0)
        assert p == ratios[np.argwhere(errors <= errors.max()).max()]
