"""Trace reports: span forest assembly, rollups, rendering, JSON output."""

import json

import pytest

from repro import observe
from repro.observe import load_report
from repro.observe.trace import COLLAPSE_THRESHOLD, build_report


def make_ledger(tmp_path, body):
    """Record ``body()`` under a fresh ledger and return its path."""
    path = observe.configure(dir=tmp_path)
    try:
        body()
    finally:
        observe.shutdown()
    return path


class TestReportStructure:
    def test_span_tree_and_rollups(self, tmp_path):
        def body():
            with observe.span("grid", jobs=2):
                with observe.span("cell", rep=0):
                    observe.incr("zoo.cache_miss")
                with observe.span("cell", rep=1):
                    observe.incr("zoo.cache_hit")
            observe.gauge("g", 7.0)
            observe.hist("h", 1.0)
            observe.hist("h", 3.0)

        path = make_ledger(tmp_path, body)
        report = load_report(path)
        assert report.n_spans == 3
        [root] = report.roots
        assert root.name == "grid"
        assert [c.name for c in root.children] == ["cell", "cell"]
        assert report.counters == {"zoo.cache_miss": 1, "zoo.cache_hit": 1}
        assert report.gauges == {"g": 7.0}
        assert report.hist_summary("h") == {
            "count": 2,
            "mean": 2.0,
            "min": 1.0,
            "max": 3.0,
            "p50": 2.0,
            "p99": pytest.approx(2.98),
        }
        assert report.cache_hit_rate == pytest.approx(0.5)

    def test_cache_hit_rate_none_without_zoo_counters(self, tmp_path):
        path = make_ledger(tmp_path, lambda: observe.incr("other"))
        assert load_report(path).cache_hit_rate is None

    def test_orphan_parent_becomes_root(self, tmp_path):
        events = [
            {"type": "span", "name": "lost", "id": "1.1", "parent": "9.9",
             "start": 1.0, "seconds": 0.1, "pid": 1},
        ]
        report = build_report(tmp_path / "x.jsonl", events)
        assert [r.name for r in report.roots] == ["lost"]


class TestRender:
    def test_render_contains_tree_and_metrics(self, tmp_path):
        def body():
            with observe.span("train", epochs=2):
                observe.incr("steps", 5)
                observe.hist("lr", 0.1)

        report = load_report(make_ledger(tmp_path, body))
        text = report.render()
        assert "- train" in text
        assert "epochs=2" in text
        assert "steps = 5" in text
        assert "lr: n=1" in text

    def test_error_span_flagged(self, tmp_path):
        def body():
            try:
                with observe.span("bad"):
                    raise ValueError("x")
            except ValueError:
                pass

        text = load_report(make_ledger(tmp_path, body)).render()
        assert "ERROR:ValueError" in text

    def test_large_sibling_groups_collapse(self, tmp_path):
        def body():
            with observe.span("grid"):
                for i in range(COLLAPSE_THRESHOLD + 3):
                    with observe.span("cell", i=i):
                        pass

        text = load_report(make_ledger(tmp_path, body)).render()
        assert f"cell ×{COLLAPSE_THRESHOLD + 3}" in text
        assert "total" in text and "mean" in text


class TestJson:
    def test_round_trip(self, tmp_path):
        def body():
            with observe.span("root", k=1):
                observe.incr("c", 2)

        report = load_report(make_ledger(tmp_path, body))
        parsed = json.loads(report.to_json())
        assert parsed["spans"] == 1
        assert parsed["tree"][0]["name"] == "root"
        assert parsed["counters"] == {"c": 2}


class TestLoadReport:
    def test_directory_picks_newest_run(self, tmp_path):
        old = tmp_path / "run-a.jsonl"
        old.write_text('{"type":"event","name":"old","ts":1}\n')
        new = tmp_path / "run-b.jsonl"
        new.write_text('{"type":"event","name":"new","ts":2}\n')
        import os

        os.utime(old, (1, 1))
        report = load_report(tmp_path)
        assert report.path == new

    def test_directory_ignores_worker_streams(self, tmp_path):
        run = tmp_path / "run-a.jsonl"
        run.write_text('{"type":"event","name":"main","ts":1}\n')
        worker = tmp_path / "run-a.worker-5.jsonl"
        worker.write_text('{"type":"event","name":"w","ts":2}\n')
        import os

        os.utime(run, (1, 1))
        assert load_report(tmp_path).path == run

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_report(tmp_path / "absent.jsonl")
        with pytest.raises(FileNotFoundError):
            load_report(tmp_path)  # dir with no ledgers
