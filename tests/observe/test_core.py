"""Observation core: configuration, span nesting, metrics, disabled path."""

import time

import numpy as np
import pytest

from repro import observe


def spans_of(path):
    return [e for e in observe.read_events(path) if e.get("type") == "span"]


class TestDisabled:
    def test_span_is_null_singleton(self):
        assert not observe.enabled()
        assert observe.span("a") is observe.NULL_SPAN
        assert observe.span("b", k=1) is observe.NULL_SPAN

    def test_null_span_api(self):
        with observe.span("x") as sp:
            assert sp.set(a=1) is sp
            assert sp.elapsed == 0.0

    def test_metric_calls_are_noops(self):
        observe.incr("c")
        observe.gauge("g", 1.0)
        observe.hist("h", 2.0)
        observe.event("e", k=1)
        assert observe.current_ledger_path() is None

    def test_disabled_overhead_negligible(self):
        """The acceptance-criteria micro-bench: an instrumented hot loop
        with ``REPRO_OBSERVE`` unset costs ~a dict lookup per call."""
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with observe.span("x"):
                pass
            observe.incr("c")
        per_iteration = (time.perf_counter() - t0) / n
        assert per_iteration < 50e-6  # measured ~2µs; 25x headroom for CI


class TestConfigure:
    def test_configure_creates_and_reports_path(self, tmp_path):
        path = observe.configure(dir=tmp_path / "obs")
        assert observe.enabled()
        assert observe.current_ledger_path() == path
        assert path.suffix == ".jsonl"

    def test_explicit_path(self, tmp_path):
        target = tmp_path / "my-run.jsonl"
        assert observe.configure(path=target) == target

    def test_shutdown_disables(self, tmp_path):
        observe.configure(dir=tmp_path)
        observe.shutdown()
        assert not observe.enabled()
        assert observe.current_ledger_path() is None

    def test_reconfigure_gets_fresh_ledger(self, tmp_path):
        a = observe.configure(dir=tmp_path)
        observe.event("marker")  # materialize the first ledger file
        b = observe.configure(dir=tmp_path)
        assert a != b

    def test_env_auto_configure(self, tmp_path, monkeypatch):
        monkeypatch.setenv(observe.ENV_VAR, "1")
        monkeypatch.setenv(observe.DIR_ENV, str(tmp_path))
        assert observe.enabled()
        observe.incr("c")
        path = observe.current_ledger_path()
        assert path is not None and path.parent == tmp_path
        observe.shutdown()
        assert len(observe.read_events(path)) == 1

    def test_falsy_env_stays_disabled(self, monkeypatch):
        for value in ("", "0", "false", "off", "no"):
            monkeypatch.setenv(observe.ENV_VAR, value)
            assert not observe.enabled()


class TestSpans:
    def test_nesting_and_attrs(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        with observe.span("outer", a=1):
            with observe.span("inner") as sp:
                sp.set(b=2)
        observe.shutdown()
        recorded = {e["name"]: e for e in spans_of(path)}
        assert set(recorded) == {"outer", "inner"}
        assert recorded["outer"]["parent"] is None
        assert recorded["inner"]["parent"] == recorded["outer"]["id"]
        assert recorded["outer"]["attrs"] == {"a": 1}
        assert recorded["inner"]["attrs"] == {"b": 2}
        assert recorded["inner"]["seconds"] <= recorded["outer"]["seconds"]

    def test_error_recorded_and_stack_unwound(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        with pytest.raises(RuntimeError):
            with observe.span("bad"):
                raise RuntimeError("boom")
        with observe.span("after"):
            pass
        observe.shutdown()
        recorded = {e["name"]: e for e in spans_of(path)}
        assert recorded["bad"]["error"] == "RuntimeError"
        assert "error" not in recorded["after"]
        assert recorded["after"]["parent"] is None  # stack fully unwound

    def test_numpy_attrs_serialized(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        with observe.span("np", ratio=np.float64(0.5), arr=np.array([1, 2])):
            pass
        observe.shutdown()
        [rec] = spans_of(path)
        assert rec["attrs"]["ratio"] == 0.5
        assert rec["attrs"]["arr"] == [1, 2]

    def test_open_span_iteration(self, tmp_path):
        observe.configure(dir=tmp_path)
        with observe.span("outer"):
            with observe.span("inner"):
                assert list(observe.iter_open_spans()) == ["outer", "inner"]


class TestMetrics:
    def test_emission_shapes(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        observe.incr("cells")
        observe.incr("cells", 2)
        observe.gauge("temp", 1.5)
        observe.hist("ratio", 0.25, layer="conv1")
        observe.event("epoch", epoch=0, loss=1.0)
        observe.shutdown()
        events = observe.read_events(path)
        by_type = {}
        for e in events:
            by_type.setdefault(e["type"], []).append(e)
        assert sum(e["value"] for e in by_type["counter"]) == 3
        assert by_type["gauge"][0]["value"] == 1.5
        assert by_type["hist"][0]["attrs"] == {"layer": "conv1"}
        assert by_type["event"][0]["attrs"]["epoch"] == 0

    def test_records_carry_ts_and_pid(self, tmp_path):
        import os

        path = observe.configure(dir=tmp_path)
        observe.incr("c")
        observe.shutdown()
        [rec] = observe.read_events(path)
        assert rec["pid"] == os.getpid()
        assert rec["ts"] > 0

    def test_metric_inside_span_is_attributed(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        with observe.span("work"):
            observe.incr("c")
        observe.shutdown()
        events = observe.read_events(path)
        counter = next(e for e in events if e["type"] == "counter")
        span_rec = next(e for e in events if e["type"] == "span")
        assert counter["span"] == span_rec["id"]
