"""Observe-test isolation: every test starts and ends with a clean,
disabled observation state (no leaked env vars or open writers)."""

import pytest

from repro import observe


@pytest.fixture(autouse=True)
def _clean_observe_state(monkeypatch):
    observe.shutdown()
    # configure(dir=...) exports REPRO_OBSERVE_DIR; registering the delete
    # with monkeypatch makes teardown restore the pre-test value.
    monkeypatch.delenv(observe.DIR_ENV, raising=False)
    yield
    observe.shutdown()
