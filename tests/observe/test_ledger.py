"""Run-ledger streams: torn-line tolerance, worker merge, multiprocess use."""

import os

from repro import observe
from repro.observe.ledger import (
    iter_events,
    merge_worker_streams,
    worker_stream_path,
)
from repro.parallel import parallel_map


def _cell(x):
    """Worker-side grid cell (module-level for picklability)."""
    with observe.span("cell", item=x):
        observe.incr("cells")
    return x * x


class TestTornLines:
    def test_torn_tail_skipped(self, tmp_path):
        p = tmp_path / "run.jsonl"
        p.write_text('{"type":"event","name":"a","ts":1}\n{"type":"ev')
        events = list(iter_events(p))
        assert len(events) == 1
        assert events[0]["name"] == "a"

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "run.jsonl"
        p.write_text('\n\n{"type":"event","name":"a","ts":1}\n\n')
        assert len(list(iter_events(p))) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert list(iter_events(tmp_path / "absent.jsonl")) == []


class TestWorkerMerge:
    def test_manual_merge_appends_and_unlinks(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        ledger.write_text('{"type":"event","name":"parent","ts":1}\n')
        stream = worker_stream_path(ledger, 1234)
        stream.write_text('{"type":"event","name":"child","ts":2}\n')
        assert merge_worker_streams(ledger) == 1
        assert not stream.exists()
        assert [e["name"] for e in iter_events(ledger)] == ["parent", "child"]

    def test_merge_noop_without_streams(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        ledger.write_text('{"type":"event","name":"parent","ts":1}\n')
        assert merge_worker_streams(ledger) == 0

    def test_merge_noop_when_disabled(self):
        assert merge_worker_streams() == 0

    def test_read_events_includes_unmerged_streams(self, tmp_path):
        """A crash before the merge must not lose worker records."""
        ledger = tmp_path / "run.jsonl"
        ledger.write_text('{"type":"event","name":"parent","ts":2}\n')
        stream = worker_stream_path(ledger, 99)
        stream.write_text('{"type":"event","name":"child","ts":1}\n')
        names = [e["name"] for e in observe.read_events(ledger)]
        assert names == ["child", "parent"]  # ts-ordered across streams


class TestMultiprocessLedger:
    def test_parallel_map_merges_worker_records(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        try:
            result = parallel_map(_cell, list(range(6)), jobs=2)
        finally:
            observe.shutdown()
        assert result == [0, 1, 4, 9, 16, 25]
        events = observe.read_events(path)
        cell_spans = [
            e for e in events if e.get("type") == "span" and e["name"] == "cell"
        ]
        assert len(cell_spans) == 6
        assert all(e["pid"] != os.getpid() for e in cell_spans)
        cells = sum(
            e["value"]
            for e in events
            if e.get("type") == "counter" and e["name"] == "cells"
        )
        assert cells == 6
        assert not list(path.parent.glob("*.worker-*.jsonl"))

    def test_worker_spans_parented_under_parallel_map(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        try:
            parallel_map(_cell, list(range(4)), jobs=2, start_method="fork")
        finally:
            observe.shutdown()
        events = observe.read_events(path)
        [pm] = [
            e
            for e in events
            if e.get("type") == "span" and e["name"] == "parallel_map"
        ]
        cell_spans = [
            e for e in events if e.get("type") == "span" and e["name"] == "cell"
        ]
        assert all(e["parent"] == pm["id"] for e in cell_spans)

    def test_serial_jobs1_records_in_main_ledger(self, tmp_path):
        path = observe.configure(dir=tmp_path)
        parallel_map(_cell, list(range(3)), jobs=1)
        observe.shutdown()
        events = observe.read_events(path)
        cell_spans = [
            e for e in events if e.get("type") == "span" and e["name"] == "cell"
        ]
        assert len(cell_spans) == 3
        assert all(e["pid"] == os.getpid() for e in cell_spans)
