"""``python -m repro trace`` command surface."""

import json

from repro import observe
from repro.__main__ import main


def make_run(tmp_path):
    path = observe.configure(dir=tmp_path)
    with observe.span("work", k=1):
        observe.incr("cells", 3)
    observe.shutdown()
    return path


class TestTraceCommand:
    def test_renders_ledger_file(self, tmp_path, capsys):
        path = make_run(tmp_path)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "- work" in out
        assert "cells = 3" in out

    def test_renders_directory(self, tmp_path, capsys):
        make_run(tmp_path)
        assert main(["trace", str(tmp_path)]) == 0
        assert "- work" in capsys.readouterr().out

    def test_json_output_parses(self, tmp_path, capsys):
        path = make_run(tmp_path)
        assert main(["trace", str(path), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["tree"][0]["name"] == "work"

    def test_missing_ledger_fails(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "error" in capsys.readouterr().err
