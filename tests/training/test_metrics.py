"""Segmentation metrics."""

import numpy as np
import pytest

from repro.training.metrics import (
    confusion_matrix,
    mean_iou,
    per_class_iou,
    pixel_accuracy,
)


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        t = np.array([0, 1, 2, 1])
        conf = confusion_matrix(t, t, 3)
        np.testing.assert_array_equal(conf, np.diag([1, 2, 1]))

    def test_off_diagonal_counts(self):
        conf = confusion_matrix(np.array([1, 1]), np.array([0, 1]), 2)
        np.testing.assert_array_equal(conf, [[0, 1], [0, 1]])

    def test_rows_are_targets(self):
        conf = confusion_matrix(np.array([0]), np.array([2]), 3)
        assert conf[2, 0] == 1

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4), 2)

    def test_multidim_flattened(self):
        p = np.zeros((2, 2, 2), dtype=int)
        t = np.zeros((2, 2, 2), dtype=int)
        assert confusion_matrix(p, t, 2)[0, 0] == 8


class TestIoU:
    def test_perfect_is_one(self):
        t = np.array([0, 0, 1, 1, 2])
        assert mean_iou(t, t, 3) == 1.0

    def test_half_overlap(self):
        targets = np.array([1, 1, 0, 0])
        preds = np.array([1, 0, 0, 0])
        # class 0: tp=2 fp=1 fn=0 -> 2/3; class 1: tp=1 fp=0 fn=1 -> 1/2
        assert mean_iou(preds, targets, 2) == pytest.approx((2 / 3 + 1 / 2) / 2)

    def test_absent_class_is_nan_and_excluded(self):
        targets = np.array([0, 0])
        preds = np.array([0, 0])
        ious = per_class_iou(confusion_matrix(preds, targets, 3))
        assert np.isnan(ious[1]) and np.isnan(ious[2])
        assert mean_iou(preds, targets, 3) == 1.0

    def test_all_absent_raises(self):
        with pytest.raises(ValueError):
            mean_iou(np.array([], dtype=int), np.array([], dtype=int), 2)

    def test_iou_leq_accuracy_typical(self, rng):
        preds = rng.integers(0, 3, 500)
        targets = rng.integers(0, 3, 500)
        assert mean_iou(preds, targets, 3) <= pixel_accuracy(preds, targets) + 1e-9


class TestEvaluateModelIoU:
    def test_segmentation_eval_reports_iou(self):
        from repro.data import voc_like
        from repro.models import deeplab_small
        from repro.training import evaluate_model

        suite = voc_like(seed=5, n_train=8, n_test=6, image_size=16)
        model = deeplab_small(num_classes=suite.num_classes, base_width=4, rng=0)
        test = suite.test_set()
        out = evaluate_model(model, test.images, test.labels, suite.normalizer())
        assert "iou" in out
        assert 0 <= out["iou"] <= 1
        assert out["iou"] <= out["accuracy"] + 1e-9

    def test_classification_eval_has_no_iou(self, trained_setup):
        from repro.training import evaluate_model

        model, suite, _ = trained_setup
        test = suite.test_set()
        out = evaluate_model(model, test.images[:8], test.labels[:8], suite.normalizer())
        assert "iou" not in out
