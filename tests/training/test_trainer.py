"""Trainer behaviour: convergence, evaluation, schedules, history."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.optim import ConstantLR, MultiStepLR, WarmupLR
from repro.training import TrainConfig, Trainer, evaluate_model
from repro.training.metrics import accuracy_from_logits

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


class TestAccuracyHelper:
    # The trainer's old private _accuracy helper is gone; the shared
    # metrics implementation must keep covering both layouts.
    def test_classification(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert accuracy_from_logits(logits, np.array([0, 1])) == 1.0
        assert accuracy_from_logits(logits, np.array([1, 1])) == 0.5

    def test_segmentation(self):
        logits = np.zeros((1, 2, 2, 2))
        logits[0, 1] = 5.0  # class 1 everywhere
        assert accuracy_from_logits(logits, np.ones((1, 2, 2), dtype=np.int64)) == 1.0


class TestEvaluateModel:
    def test_returns_consistent_metrics(self, trained_setup):
        model, suite, trainer = trained_setup
        test = suite.test_set()
        out = evaluate_model(model, test.images, test.labels, suite.normalizer())
        assert 0 <= out["accuracy"] <= 1
        assert out["error"] == pytest.approx(1 - out["accuracy"])
        assert out["loss"] > 0

    def test_batching_invariant(self, trained_setup):
        model, suite, _ = trained_setup
        test = suite.test_set()
        a = evaluate_model(model, test.images, test.labels, suite.normalizer(), batch_size=7)
        b = evaluate_model(model, test.images, test.labels, suite.normalizer(), batch_size=64)
        assert a["accuracy"] == pytest.approx(b["accuracy"])
        assert a["loss"] == pytest.approx(b["loss"], rel=1e-5)

    def test_transform_applied(self, trained_setup):
        model, suite, _ = trained_setup
        test = suite.test_set()
        clean = evaluate_model(model, test.images, test.labels, suite.normalizer())
        destroyed = evaluate_model(
            model,
            test.images,
            test.labels,
            suite.normalizer(),
            transform=lambda x: np.zeros_like(x),
        )
        assert destroyed["accuracy"] <= clean["accuracy"] + 0.3

    def test_restores_training_mode(self, trained_setup):
        model, suite, _ = trained_setup
        model.train()
        test = suite.test_set()
        evaluate_model(model, test.images[:8], test.labels[:8], suite.normalizer())
        assert model.training


class TestTraining:
    def test_loss_decreases(self, trained_setup):
        _, _, trainer = trained_setup
        losses = trainer_history_losses(trainer)
        assert losses[-1] < losses[0]

    def test_beats_chance(self, trained_setup):
        model, suite, trainer = trained_setup
        acc = trainer.evaluate()["accuracy"]
        assert acc > 1.5 / suite.num_classes

    def test_history_records_epochs(self, tiny_suite, tiny_cnn):
        trainer = make_tiny_trainer(tiny_cnn, tiny_suite, epochs=2)
        history = trainer.train()
        assert len(history) == 2
        assert history.epochs[0].epoch == 0
        assert history.final_train_accuracy == history.epochs[-1].train_accuracy

    def test_explicit_epochs_override(self, tiny_suite, tiny_cnn):
        trainer = make_tiny_trainer(tiny_cnn, tiny_suite, epochs=5)
        history = trainer.train(epochs=1)
        assert len(history) == 1

    def test_retrain_uses_retrain_schedule(self, tiny_suite, tiny_cnn):
        config = TrainConfig(
            epochs=1,
            batch_size=32,
            lr=0.1,
            warmup_epochs=0.0,
            schedule=MultiStepLR([100], 0.1),
            retrain_schedule=MultiStepLR([0], 0.1),  # immediate decay
            seed=0,
        )
        trainer = Trainer(tiny_cnn, tiny_suite, config)
        history = trainer.retrain(1)
        assert history.epochs[-1].lr == pytest.approx(0.01, rel=1e-5)

    def test_first_step_lr_is_nonzero(self, tiny_suite, tiny_cnn):
        """Regression: the schedule used to be evaluated at epoch 0.0 for
        the first batch, making it a wasted lr=0 step under warm-up."""

        class SpyWarmup(WarmupLR):
            def __init__(self):
                super().__init__(ConstantLR(), warmup_epochs=1.0)
                self.calls = []

            def __call__(self, epoch):
                self.calls.append(epoch)
                return super().__call__(epoch)

        spy = SpyWarmup()
        config = TrainConfig(epochs=1, batch_size=32, lr=0.1, seed=0)
        Trainer(tiny_cnn, tiny_suite, config).train(schedule=spy)
        assert spy.calls, "schedule never consulted"
        assert min(spy.calls) > 0.0
        n_batches = len(spy.calls)
        assert spy.calls[0] == pytest.approx(1.0 / n_batches)

    def test_prewrapped_warmup_not_rewrapped(self, tiny_suite, tiny_cnn):
        """A caller-supplied WarmupLR must be used as-is: re-wrapping it in
        the config's warm-up would square the ramp (double warm-up)."""
        config = TrainConfig(
            epochs=1, batch_size=32, lr=0.1, warmup_epochs=10.0, seed=0
        )
        # Zero-epoch warm-up wrapper: if used as-is, the factor is 1
        # everywhere; if re-wrapped by the config's 10-epoch warm-up, the
        # epoch-0 mean factor would be ~0.
        history = Trainer(tiny_cnn, tiny_suite, config).train(
            schedule=WarmupLR(ConstantLR(), warmup_epochs=0.0)
        )
        assert history.epochs[0].lr_mean == pytest.approx(0.1, rel=1e-6)

    def test_history_records_mean_and_last_lr(self, tiny_suite, tiny_cnn):
        config = TrainConfig(
            epochs=1, batch_size=32, lr=0.1, warmup_epochs=1.0,
            schedule=ConstantLR(), seed=0,
        )
        history = Trainer(tiny_cnn, tiny_suite, config).train()
        record = history.epochs[0]
        # Under a 1-epoch linear warm-up the last step's lr tops the mean.
        assert 0 < record.lr_mean < record.lr_last <= 0.1
        assert record.lr == record.lr_last  # back-compat alias

    def test_augment_fn_hook_called(self, tiny_suite, tiny_cnn):
        calls = []

        def spy(batch):
            calls.append(len(batch))
            return batch

        config = TrainConfig(epochs=1, batch_size=32, lr=0.01, warmup_epochs=0, seed=0)
        Trainer(tiny_cnn, tiny_suite, config, augment_fn=spy).train()
        assert sum(calls) == len(tiny_suite.train_set())

    def test_training_is_seed_deterministic(self, tiny_suite):
        def run():
            model = make_tiny_cnn(seed=5)
            make_tiny_trainer(model, tiny_suite, epochs=1, seed=5).train()
            return model.state_dict()

        a, b = run(), run()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)


class TestEvaluateSegmentation:
    def test_dense_task(self):
        from repro.data import voc_like
        from repro.models import deeplab_small

        suite = voc_like(seed=0, n_train=16, n_test=8, image_size=16)
        model = deeplab_small(num_classes=suite.num_classes, base_width=4, rng=0)
        test = suite.test_set()
        out = evaluate_model(model, test.images, test.labels, suite.normalizer())
        assert 0 <= out["accuracy"] <= 1


def trainer_history_losses(trainer):
    """Losses from the session-scoped trained model's stored history."""
    # trained_setup trains once; re-running train would mutate the shared
    # model, so recompute a cheap fresh history on a copy.
    suite = make_tiny_suite(seed=2)
    model = make_tiny_cnn(seed=2)
    history = make_tiny_trainer(model, suite, epochs=3, seed=2).train()
    return history.losses()
