"""Robust-training protocol invariants (Table 11)."""

import numpy as np
import pytest

from repro.data.corruptions import available_corruptions
from repro.training.robust import RobustProtocol, default_robust_protocol


class TestDefaultProtocol:
    def test_train_test_disjoint(self):
        p = default_robust_protocol()
        assert not set(p.train_corruptions) & set(p.test_corruptions)

    def test_every_category_on_both_sides(self):
        p = default_robust_protocol()
        for category, (in_train, in_test) in p.categories_covered().items():
            assert in_train, f"{category} missing from train distribution"
            assert in_test, f"{category} missing from test distribution"

    def test_all_names_valid(self):
        p = default_robust_protocol()
        names = set(available_corruptions())
        assert set(p.train_corruptions) <= names
        assert set(p.test_corruptions) <= names

    def test_severity_threaded(self):
        assert default_robust_protocol(severity=2).severity == 2


class TestValidation:
    def test_overlap_raises(self):
        with pytest.raises(ValueError, match="overlap"):
            RobustProtocol(("snow",), ("snow",))

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            RobustProtocol(("snow",), ("blizzard",))


class TestAugmenter:
    def test_augmenter_uses_train_corruptions(self, rng):
        p = RobustProtocol(("brightness",), ("fog",), severity=5)
        aug = p.augmenter(rng=0)
        x = rng.random((32, 3, 8, 8)).astype(np.float32) * 0.5
        out = aug(x)
        # brightness only ever increases pixel values where applied
        changed = np.abs(out - x).max(axis=(1, 2, 3)) > 1e-6
        assert changed.any()
        assert (out[changed] >= x[changed] - 1e-6).all()
