"""Trainer.train through the compiled gradient-plan path.

The compiled engine is the default; these tests pin its contract to the
tape path: same ``History`` within tolerance (bitwise under the exact
kernel table), clean opt-out via ``REPRO_TRAINC=0``, the hoisted
no-augmentation normalization, and the empty-train-set error.
"""

import functools

import numpy as np
import pytest

from repro.data.datasets import Dataset, Normalizer
from repro.infer import train_engine_for
from repro.infer.trainengine import _TRAIN_ENGINES

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


def train_fresh(seed=3, epochs=2, **trainer_kw):
    """A fresh (suite, model, history) triple from one deterministic seed."""
    suite = make_tiny_suite(seed=seed)
    model = make_tiny_cnn(seed=seed)
    trainer = make_tiny_trainer(model, suite, epochs=epochs, seed=seed, **trainer_kw)
    return model, trainer.train()


class TestCompiledVsTape:
    def test_history_and_weights_match_tape(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAINC", "0")
        tape_model, tape_history = train_fresh()
        monkeypatch.setenv("REPRO_TRAINC", "1")
        fast_model, fast_history = train_fresh()
        np.testing.assert_allclose(
            fast_history.losses(), tape_history.losses(), rtol=1e-3
        )
        for tape_rec, fast_rec in zip(tape_history.epochs, fast_history.epochs):
            assert abs(fast_rec.train_accuracy - tape_rec.train_accuracy) <= 0.05
        tape_state, fast_state = tape_model.state_dict(), fast_model.state_dict()
        for key in tape_state:
            np.testing.assert_allclose(
                fast_state[key], tape_state[key], atol=1e-3, err_msg=key
            )

    def test_exact_engine_is_bitwise_with_tape(self, monkeypatch):
        """Under the exact kernel table the whole training run — every
        loss, every weight — reproduces the tape bit for bit."""
        import repro.training.trainer as trainer_mod

        monkeypatch.setenv("REPRO_TRAINC", "0")
        tape_model, tape_history = train_fresh()
        monkeypatch.setenv("REPRO_TRAINC", "1")
        monkeypatch.setattr(
            trainer_mod,
            "train_engine_for",
            functools.partial(train_engine_for, exact=True),
        )
        exact_model, exact_history = train_fresh()
        assert exact_history.losses() == tape_history.losses()
        tape_state, exact_state = tape_model.state_dict(), exact_model.state_dict()
        for key in tape_state:
            np.testing.assert_array_equal(
                exact_state[key], tape_state[key], err_msg=key
            )

    def test_compiled_path_actually_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAINC", "1")
        model, _ = train_fresh(epochs=1)
        engine = _TRAIN_ENGINES.get(model)
        assert engine is not None
        assert any(plan is not None for plan in engine._plans.values())

    def test_trainc_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAINC", "0")
        model, history = train_fresh(epochs=1)
        assert len(history) == 1
        engine = _TRAIN_ENGINES.get(model)
        # The engine seam is still entered, but nothing ever compiles.
        assert engine is None or not engine._plans


class TestTrainerEdgeCases:
    def test_empty_train_set_raises(self):
        suite = make_tiny_suite()

        class EmptyTask:
            num_classes = suite.num_classes

            def train_set(self):
                return Dataset(
                    images=np.zeros((0, 3, 8, 8), dtype=np.float32),
                    labels=np.zeros((0,), dtype=np.int64),
                )

            def normalizer(self):
                return Normalizer(
                    mean=np.zeros(3, np.float32), std=np.ones(3, np.float32)
                )

        trainer = make_tiny_trainer(make_tiny_cnn(), EmptyTask())
        with pytest.raises(ValueError, match="training set is empty"):
            trainer.train()

    def test_normalization_hoist_is_bitwise(self):
        """``augment=False`` hoists normalization out of the epoch loop;
        an identity ``augment_fn`` forces the per-batch path on identical
        data, so the two runs must end bit-identical."""

        def run(augment_fn):
            suite = make_tiny_suite(seed=4)
            model = make_tiny_cnn(seed=4)
            trainer = make_tiny_trainer(model, suite, epochs=1, seed=4)
            trainer.config.augment = False
            trainer._extra_augment = augment_fn
            history = trainer.train()
            return model.state_dict(), history

        hoisted_state, hoisted_history = run(None)
        batched_state, batched_history = run(lambda batch: batch)
        assert hoisted_history.losses() == batched_history.losses()
        for key in hoisted_state:
            np.testing.assert_array_equal(
                hoisted_state[key], batched_state[key], err_msg=key
            )
