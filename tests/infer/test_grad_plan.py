"""Compiled gradient plans: tape parity, fused-kernel gradients, registry smoke."""

import numpy as np
import pytest

from repro.infer import GradPlan, TrainEngine, trace_training
from repro.infer.grad import _k_conv_bn_relu, _k_conv_bn_relu_bwd
from repro.models.registry import available_models, build_model
from repro.nn.losses import CrossEntropyLoss
from repro.nn.prunable import PrunableWeightMixin
from repro.optim import SGD
from repro.verify import oracle_grad_plan_parity

from tests.conftest import make_tiny_cnn


@pytest.fixture
def batch(rng):
    x = rng.standard_normal((8, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 4, 8)
    return x, y


def prune_half(model):
    for module in model.modules():
        if isinstance(module, PrunableWeightMixin):
            weight = module.weight.data
            cut = np.median(np.abs(weight))
            module.set_weight_mask((np.abs(weight) > cut).astype(np.float32))


class TestGradPlanParity:
    """The oracle twins: exact plans bitwise, fast plans within tolerance."""

    def test_tiny_cnn(self, batch):
        model = make_tiny_cnn()
        report = oracle_grad_plan_parity(model, *batch)
        assert report.passed, report.summary()

    def test_tiny_cnn_pruned(self, batch):
        model = make_tiny_cnn()
        prune_half(model)
        report = oracle_grad_plan_parity(model, *batch)
        assert report.passed, report.summary()

    def test_exact_plan_gradients_bitwise(self, batch):
        """Direct restatement of the exact half of the oracle: every grad
        out of the exact plan is the tape's array, bit for bit."""
        from repro.autograd.tensor import Tensor

        x, y = batch
        model = make_tiny_cnn()
        loss_fn = CrossEntropyLoss()
        model.train()
        logits = model(Tensor(x))
        loss = loss_fn(logits, y)
        loss.backward()
        want = {name: p.grad.copy() for name, p in model.named_parameters()}
        for _, p in model.named_parameters():
            p.grad = None
        plan = GradPlan(trace_training(model, loss_fn, x, y), model, exact=True)
        plan_loss, plan_logits, grads, _ = plan.run(x, y)
        assert float(plan_loss) == float(loss.data)
        np.testing.assert_array_equal(plan_logits, logits.data)
        assert set(grads) == set(want)
        for name in want:
            np.testing.assert_array_equal(grads[name], want[name], err_msg=name)

    def test_plan_is_repeatable(self, batch):
        """Scratch/in-place buffer reuse must not leak state across runs."""
        x, y = batch
        model = make_tiny_cnn()
        plan = GradPlan(
            trace_training(model, CrossEntropyLoss(), x, y), model, exact=False
        )
        first = plan.run(x, y)
        second = plan.run(x, y)
        assert float(first[0]) == float(second[0])
        for name, grad in first[2].items():
            np.testing.assert_array_equal(grad, second[2][name], err_msg=name)


class TestFusedConvBnReluGradients:
    """Finite-difference gradcheck of the fused forward/backward pair.

    The fused kernels never see the autograd tape, so the generic
    ``gradcheck`` machinery cannot reach them; this drives them directly
    in float64 against central differences.
    """

    def setup_method(self):
        rng = np.random.default_rng(7)
        self.x = rng.standard_normal((2, 2, 4, 4))
        self.w = rng.standard_normal((3, 2, 3, 3)) * 0.5
        self.gamma = rng.uniform(0.5, 1.5, 3)
        self.beta = rng.standard_normal(3) * 0.1
        self.params = {
            "stride": 1,
            "padding": 1,
            "eps": 1e-5,
            "ndim": 4,
            "n_conv_args": 2,
            "has_bias": False,
            "need_gx": True,
            "wshape": self.w.shape,
            "xshape": self.x.shape,
        }

    def _loss(self):
        out = _k_conv_bn_relu(
            (self.x, self.w, self.gamma, self.beta), dict(self.params)
        )
        return float(out[0].sum())

    def _fd(self, array, eps=1e-6):
        grad = np.zeros_like(array)
        flat, gflat = array.ravel(), grad.ravel()
        for j in range(flat.size):
            orig = flat[j]
            flat[j] = orig + eps
            hi = self._loss()
            flat[j] = orig - eps
            lo = self._loss()
            flat[j] = orig
            gflat[j] = (hi - lo) / (2 * eps)
        return grad

    def test_against_finite_differences(self):
        params = dict(self.params)
        tup = _k_conv_bn_relu((self.x, self.w, self.gamma, self.beta), params)
        g = np.ones_like(tup[0])
        gx, gw, gb, ggamma, gbeta = _k_conv_bn_relu_bwd(
            (g, tup, self.x, self.w, self.gamma), params
        )
        assert gb is None  # bias-free conv, as under BatchNorm
        for name, analytic, array in (
            ("gx", gx, self.x),
            ("gw", gw, self.w),
            ("ggamma", ggamma, self.gamma),
            ("gbeta", gbeta, self.beta),
        ):
            numeric = self._fd(array)
            np.testing.assert_allclose(
                analytic, numeric, atol=1e-5, rtol=1e-4, err_msg=name
            )


@pytest.mark.parametrize("name", available_models())
def test_registry_compiled_step_smoke(name, monkeypatch):
    """Tier-1 canary: every registry architecture takes one *compiled*
    training step — compile, validate against the tape, and apply — with
    the environment override pinned on."""
    monkeypatch.setenv("REPRO_TRAINC", "1")
    model = build_model(name, rng=np.random.default_rng(3))
    rng = np.random.default_rng(0)
    shape = (4, 3, 4, 4) if name == "mlp" else (4, 3, 16, 16)
    x = rng.standard_normal(shape).astype(np.float32)
    if name == "deeplab_small":
        y = rng.integers(0, 6, (4, 16, 16))
    else:
        y = rng.integers(0, 10, 4)
    before = {k: v.copy() for k, v in model.state_dict().items()}
    engine = TrainEngine(
        model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.05, momentum=0.9)
    )
    loss, logits = engine.step(x, y)
    assert engine.compiled_for(x, y), f"{name} fell back to the tape"
    assert np.isfinite(loss) and np.all(np.isfinite(logits))
    changed = any(
        not np.array_equal(before[k], v)
        for k, v in model.state_dict().items()
    )
    assert changed, "compiled step left the model untouched"
