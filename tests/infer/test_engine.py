"""The inference engine: parity, cache invalidation, fallback, opt-out."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.infer import InferenceEngine, engine_for
from repro.pruning import build_method
from repro.pruning.mask import prunable_layers

from tests.conftest import make_tiny_cnn


def module_logits(model, images):
    """Reference eval forward through the plain module."""
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            return model(Tensor(images)).data.copy()
    finally:
        model.train(was_training)


def assert_parity(got, want):
    """Scale-aware bound: BN-folding error rides on the largest activation."""
    bound = 1e-5 + 1e-5 * float(np.abs(want).max())
    assert float(np.abs(got - want).max()) <= bound


class Detour(nn.Module):
    """Untraceable forward: the output tensor is built outside the tape."""

    def forward(self, x):
        return Tensor(np.tanh(x.data).sum(axis=(2, 3)))


@pytest.fixture
def images(rng):
    return rng.standard_normal((32, 3, 8, 8)).astype(np.float32)


class TestParity:
    def test_compiled_logits_match_module(self, images):
        model = make_tiny_cnn()
        engine = InferenceEngine(model)
        got = engine.logits(images)
        assert engine.compiled_for(images)
        assert_parity(got, module_logits(model, images))

    def test_pruned_model_parity(self, images):
        model = make_tiny_cnn()
        build_method("wt").prune(model, 0.5)
        engine = InferenceEngine(model)
        got = engine.logits(images)
        assert engine.compiled_for(images)
        assert_parity(got, module_logits(model, images))

    def test_tail_chunk_is_padded_not_recompiled(self, images):
        engine = InferenceEngine(make_tiny_cnn(), batch_size=8)
        got = engine.logits(images[:5])
        assert_parity(got, module_logits(engine.model, images[:5]))
        # 5 rows pad up to 8; only the one 8-row plan exists.
        assert len([p for p in engine._plans.values() if p is not None]) == 1
        assert_parity(engine.logits(images), module_logits(engine.model, images))

    def test_train_mode_untouched_and_eval_stats_used(self, images):
        model = make_tiny_cnn()
        want = module_logits(model, images)  # eval-mode running stats
        model.train()
        got = InferenceEngine(model).logits(images)
        assert model.training
        assert_parity(got, want)


class TestInvalidation:
    def test_weight_update_refreshes_constants(self, images):
        model = make_tiny_cnn()
        engine = InferenceEngine(model)
        engine.logits(images)
        for _, param in model.named_parameters():
            param.data += 0.01  # in-place, like an SGD step
        assert_parity(engine.logits(images), module_logits(model, images))

    def test_new_mask_refreshes_densified_weights(self, images):
        model = make_tiny_cnn()
        engine = InferenceEngine(model)
        before = engine.logits(images)
        for _, layer in prunable_layers(model):
            weight = layer.weight.data
            cut = np.median(np.abs(weight))
            layer.set_weight_mask((np.abs(weight) > cut).astype(np.float32))
        after = engine.logits(images)
        assert not np.allclose(before, after)
        assert_parity(after, module_logits(model, images))

    def test_mutate_then_restore_does_not_serve_stale_constants(self, images):
        """Drift a param in place, restore via load_state_dict (which rebinds
        parameter arrays), and check the plan does not keep serving the
        drifted orphans.  The content signature is identical before and
        after the round-trip, so this only passes if refresh snapshots by
        copy instead of aliasing the model's live arrays."""
        model = make_tiny_cnn()
        engine = InferenceEngine(model)
        state = model.state_dict()
        want = engine.logits(images)
        assert engine.compiled_for(images)
        for _, param in model.named_parameters():
            param.data += 0.05  # in-place: drifts any array the plan aliased
        model.load_state_dict(state)  # rebinds params; contents == original
        got = engine.logits(images)
        np.testing.assert_array_equal(got, want)
        assert_parity(got, module_logits(model, images))


class TestFallback:
    def test_untraceable_model_falls_back(self, images):
        model = Detour()
        engine = InferenceEngine(model)
        got = engine.logits(images)
        assert not engine.compiled_for(images)
        np.testing.assert_array_equal(got, module_logits(model, images))

    def test_opt_out_env(self, images, monkeypatch):
        monkeypatch.setenv("REPRO_INFER", "0")
        model = make_tiny_cnn()
        engine = InferenceEngine(model)
        got = engine.logits(images)
        assert not engine.compiled_for(images)
        np.testing.assert_array_equal(got, module_logits(model, images))

    def test_fallback_restores_train_mode_on_exception(self, images):
        class Boom(nn.Module):
            def forward(self, x):
                raise RuntimeError("boom")

        model = Boom()
        model.train()
        with pytest.raises(RuntimeError):
            InferenceEngine(model).logits(images)
        assert model.training


class TestApi:
    def test_empty_batch_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            InferenceEngine(make_tiny_cnn()).logits(np.empty((0, 3, 8, 8)))

    def test_predict_and_proba(self, images):
        engine = InferenceEngine(make_tiny_cnn())
        preds = engine.predict(images)
        probs = engine.predict_proba(images)
        assert preds.shape == (32,)
        assert probs.shape == (32, 4)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)
        np.testing.assert_array_equal(probs.argmax(axis=1), preds)

    def test_autotune_adopts_a_candidate(self, images):
        engine = InferenceEngine(make_tiny_cnn())
        best = engine.autotune_batch_size(images, candidates=(8, 16), repeats=1)
        assert best in (8, 16)
        assert engine.batch_size == best

    def test_engine_for_caches_and_passes_through(self):
        model = make_tiny_cnn()
        engine = engine_for(model)
        assert engine_for(model) is engine
        assert engine_for(engine) is engine
