"""Every registry architecture through the engine: train/eval × pruned/unpruned."""

import numpy as np
import pytest

from repro.infer import InferenceEngine
from repro.models.registry import available_models, build_model
from repro.nn.prunable import PrunableWeightMixin
from repro.verify import oracle_registry_plan_parity

from tests.infer.test_engine import assert_parity, module_logits


def probe_for(name, rng, batch=4):
    shape = (batch, 3, 4, 4) if name == "mlp" else (batch, 3, 16, 16)
    return rng.standard_normal(shape).astype(np.float32)


def prune_half(model):
    for module in model.modules():
        if isinstance(module, PrunableWeightMixin):
            weight = module.weight.data
            cut = np.median(np.abs(weight))
            module.set_weight_mask((np.abs(weight) > cut).astype(np.float32))


@pytest.mark.tier2
class TestRegistryParity:
    def test_oracle_sweep_passes(self):
        report = oracle_registry_plan_parity()
        assert report.passed, report.summary()

    @pytest.mark.parametrize("name", available_models())
    @pytest.mark.parametrize("mode", ["train", "eval"])
    @pytest.mark.parametrize("pruned", [False, True])
    def test_engine_matches_module(self, name, mode, pruned, rng):
        model = build_model(name, rng=np.random.default_rng(3))
        if pruned:
            prune_half(model)
        images = probe_for(name, rng)
        want = module_logits(model, images)  # always eval-mode stats
        model.train(mode == "train")
        engine = InferenceEngine(model, batch_size=len(images))
        got = engine.logits(images)
        assert engine.compiled_for(images), f"{name} fell back to module forward"
        assert model.training == (mode == "train")
        assert_parity(got, want)
