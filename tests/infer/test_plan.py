"""Compiled plans: BN folding numerics, the exact reference mode, bn_affine."""

import numpy as np
import pytest

from repro import nn
from repro.infer import CompiledPlan, trace

from tests.conftest import make_tiny_cnn
from tests.infer.test_engine import assert_parity, module_logits


@pytest.fixture
def images(rng):
    return rng.standard_normal((8, 3, 8, 8)).astype(np.float32)


def randomize_bn_stats(model, rng):
    """Non-trivial running stats so folding errors cannot cancel out."""
    for name, buf in model.named_buffers():
        if name.endswith("running_mean"):
            buf[:] = rng.standard_normal(buf.shape).astype(np.float32)
        elif name.endswith("running_var"):
            buf[:] = rng.uniform(0.5, 2.0, buf.shape).astype(np.float32)


class TestBnFolding:
    def test_folds_into_conv_and_matches_module(self, images, rng):
        model = make_tiny_cnn()
        randomize_bn_stats(model, rng)
        plan = CompiledPlan(trace(model, images), fold_bn=True)
        plan.refresh(model)
        # All three BNs sit directly on a single-consumer conv: folded away.
        assert plan.n_folded == 3
        assert "bn_affine" not in plan.op_counts
        assert_parity(plan.run(images), module_logits(model, images))

    def test_unfoldable_bn_becomes_affine(self, images, rng):
        # BN on the raw input has no conv/linear producer to fold into.
        model = nn.Sequential(
            nn.BatchNorm2d(3),
            nn.Conv2d(3, 4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 2, rng=rng),
        )
        randomize_bn_stats(model, rng)
        plan = CompiledPlan(trace(model, images), fold_bn=True)
        plan.refresh(model)
        assert plan.n_folded == 0
        assert plan.op_counts.get("bn_affine") == 1
        assert_parity(plan.run(images), module_logits(model, images))

    def test_fold_disabled_keeps_affine_path(self, images, rng):
        model = make_tiny_cnn()
        randomize_bn_stats(model, rng)
        plan = CompiledPlan(trace(model, images), fold_bn=False)
        plan.refresh(model)
        assert plan.n_folded == 0
        assert_parity(plan.run(images), module_logits(model, images))


class TestExactMode:
    def test_exact_plan_is_bit_identical_to_module(self, images, rng):
        model = make_tiny_cnn()
        randomize_bn_stats(model, rng)
        plan = CompiledPlan(trace(model, images), fold_bn=False, exact=True)
        plan.refresh(model)
        np.testing.assert_array_equal(plan.run(images), module_logits(model, images))
