"""Shared fixtures (tiny tasks, models, a session-scoped trained model) and
the test-tier marker scheme.

Tests are split into two tiers: ``tier1`` is the fast default that every
PR runs (`pytest -m tier1`), ``tier2`` holds the slow integration,
hypothesis-property, and differential-oracle tests that run nightly.  Any
test not explicitly marked ``tier2`` is auto-marked ``tier1``, so new
tests land in the fast tier unless someone deliberately opts them out.
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "tier2" not in item.keywords:
            item.add_marker(pytest.mark.tier1)

from repro import data, models, nn
from repro.data.datasets import TaskSuite
from repro.data.synthetic import ClassificationTaskConfig
from repro.optim import MultiStepLR
from repro.training import TrainConfig, Trainer


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def make_tiny_suite(seed: int = 0, n_train: int = 120, n_test: int = 80) -> TaskSuite:
    """A 4-class, 8x8 task small enough for test-time training."""
    cfg = ClassificationTaskConfig(num_classes=4, image_size=8, seed=seed)
    return TaskSuite(cfg, n_train=n_train, n_test=n_test, name="tiny")


@pytest.fixture
def tiny_suite() -> TaskSuite:
    return make_tiny_suite()


def make_tiny_cnn(num_classes: int = 4, seed: int = 0) -> nn.Module:
    """A 3-conv network: fast but has structured-prunable layers."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.Conv2d(8, 12, 3, padding=1, stride=2, bias=False, rng=rng),
        nn.BatchNorm2d(12),
        nn.ReLU(),
        nn.Conv2d(12, 12, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(12),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(12, num_classes, rng=rng),
    )


@pytest.fixture
def tiny_cnn() -> nn.Module:
    return make_tiny_cnn()


def make_tiny_trainer(
    model: nn.Module, suite: TaskSuite, epochs: int = 2, seed: int = 0
) -> Trainer:
    config = TrainConfig(
        epochs=epochs,
        batch_size=32,
        lr=0.05,
        warmup_epochs=0.25,
        schedule=MultiStepLR([0.75 * epochs], 0.1),
        seed=seed,
    )
    return Trainer(model, suite, config)


@pytest.fixture(scope="session")
def trained_setup():
    """A tiny CNN trained for a few epochs, shared across analysis tests.

    Returns ``(model, suite, trainer)``.  Tests must not mutate the model's
    weights; ones that prune should deep-copy the state first.
    """
    suite = make_tiny_suite(seed=1)
    model = make_tiny_cnn(seed=1)
    trainer = make_tiny_trainer(model, suite, epochs=4, seed=1)
    trainer.train()
    return model, suite, trainer


@pytest.fixture
def mlp_model() -> models.MLP:
    return models.MLP(3 * 8 * 8, hidden=(16,), num_classes=4, rng=np.random.default_rng(0))
