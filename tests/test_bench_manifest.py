"""Static validity of the benchmark zoo manifest (no training involved)."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.models import available_models
from repro.pruning import available_methods

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestZooManifest:
    def test_entries_reference_real_models_and_methods(self):
        mod = _load("build_zoo")
        tasks = {"cifar", "imagenet", "voc"}
        for task, model, method, reps, robust in mod.BENCH_ZOO:
            assert task in tasks
            assert model in available_models(), model
            assert method in available_methods(), method
            assert reps >= 1
            assert isinstance(robust, bool)

    def test_covers_all_methods_on_cifar(self):
        mod = _load("build_zoo")
        cifar_methods = {
            method for task, _, method, _, robust in mod.BENCH_ZOO
            if task == "cifar" and not robust
        }
        assert cifar_methods == set(available_methods())

    def test_covers_all_tasks(self):
        mod = _load("build_zoo")
        assert {t for t, *_ in mod.BENCH_ZOO} == {"cifar", "imagenet", "voc"}
