"""Learning-rate schedule factors."""

import pytest

from repro.optim import (
    ConstantLR,
    MultiStepLR,
    PolynomialLR,
    StepEveryLR,
    WarmupLR,
)


class TestConstant:
    def test_always_one(self):
        s = ConstantLR()
        assert s(0) == s(5.5) == s(1000) == 1.0


class TestMultiStep:
    def test_decays_at_milestones(self):
        s = MultiStepLR([10, 20], gamma=0.1)
        assert s(5) == 1.0
        assert s(10) == pytest.approx(0.1)
        assert s(15) == pytest.approx(0.1)
        assert s(20) == pytest.approx(0.01)

    def test_unsorted_milestones_handled(self):
        s = MultiStepLR([20, 10], gamma=0.5)
        assert s(15) == pytest.approx(0.5)


class TestStepEvery:
    def test_periodic_decay(self):
        s = StepEveryLR(30, gamma=0.5)
        assert s(29.9) == 1.0
        assert s(30) == pytest.approx(0.5)
        assert s(90) == pytest.approx(0.125)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            StepEveryLR(0, 0.5)


class TestPolynomial:
    def test_boundary_values(self):
        s = PolynomialLR(100, power=0.9)
        assert s(0) == 1.0
        assert s(100) == 0.0
        assert 0 < s(50) < 1

    def test_clamps_past_end(self):
        assert PolynomialLR(10)(20) == 0.0

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            PolynomialLR(0)


class TestWarmup:
    def test_linear_ramp(self):
        s = WarmupLR(ConstantLR(), warmup_epochs=2)
        assert s(0) == 0.0
        assert s(1) == pytest.approx(0.5)
        assert s(2) == 1.0
        assert s(5) == 1.0

    def test_composes_with_base(self):
        s = WarmupLR(MultiStepLR([10], 0.1), warmup_epochs=2)
        assert s(1) == pytest.approx(0.5)
        assert s(10) == pytest.approx(0.1)

    def test_zero_warmup_is_base(self):
        s = WarmupLR(ConstantLR(), warmup_epochs=0)
        assert s(0) == 1.0

    def test_negative_warmup_raises(self):
        with pytest.raises(ValueError):
            WarmupLR(ConstantLR(), -1)
