"""SGD update rule vs hand-computed references."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD


def make_param(value=1.0):
    p = Parameter(np.array([value], dtype=np.float32))
    p.grad = np.array([0.5], dtype=np.float32)
    return p


class TestVanilla:
    def test_plain_step(self):
        p = make_param()
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5])

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_weight_decay(self):
        p = make_param()
        SGD([p], lr=0.1, weight_decay=0.01).step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * (0.5 + 0.01 * 1.0)], rtol=1e-6)

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestMomentum:
    def test_two_steps_accumulate_velocity(self):
        p = make_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()  # v = 0.5, w = 1 - 0.05 = 0.95
        p.grad = np.array([0.5], dtype=np.float32)
        opt.step()  # v = 0.9*0.5 + 0.5 = 0.95, w = 0.95 - 0.095
        np.testing.assert_allclose(p.data, [0.95 - 0.1 * 0.95], rtol=1e-6)

    def test_nesterov_uses_lookahead(self):
        p = make_param()
        opt = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        opt.step()  # v = 0.5; update = grad + 0.9*v = 0.95
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.95], rtol=1e-6)

    def test_reset_state_clears_velocity(self):
        p = make_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()
        opt.reset_state()
        p.grad = np.array([0.5], dtype=np.float32)
        before = p.data.copy()
        opt.step()
        np.testing.assert_allclose(p.data, before - 0.1 * 0.5, rtol=1e-6)


class TestValidation:
    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_nesterov_without_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)


class TestConvergence:
    def test_minimizes_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(300):
            p.grad = 2 * p.data  # d/dw of w^2
            opt.step()
        assert abs(p.data[0]) < 1e-3
