"""The worker loop (inline, VirtualClock): execution, failure journaling,
duplicate suppression, idempotent-result shortcut, and fn-path rules."""

from __future__ import annotations

import math

import pytest

from repro.queue import TaskSpec, WorkQueue, run_worker, task_fn_path
from repro.queue.core import DONE, PENDING, QUARANTINED
from repro.queue.worker import resolve_task_fn
from repro.serve.clock import VirtualClock

CALLS = []


def record_call(payload):
    """Module-level task used to observe executions."""
    CALLS.append(payload)
    return payload * 2


def always_fails(payload):
    """Module-level task that deterministically raises."""
    raise ValueError(f"cannot process {payload!r}")


@pytest.fixture(autouse=True)
def _clear_calls():
    CALLS.clear()


def make_queue(tmp_path, **kw):
    kw.setdefault("lease_seconds", 10.0)
    kw.setdefault("clock", VirtualClock())
    return WorkQueue(tmp_path / "q", **kw)


class TestTaskFnPath:
    def test_module_level_function_round_trips(self):
        path = task_fn_path(record_call)
        assert path.endswith(":record_call")
        assert resolve_task_fn(path) is record_call

    def test_stdlib_function_round_trips(self):
        assert resolve_task_fn(task_fn_path(math.sqrt)) is math.sqrt

    def test_lambda_rejected(self):
        with pytest.raises(ValueError, match="module-level"):
            task_fn_path(lambda x: x)

    def test_nested_function_rejected(self):
        def inner(x):
            return x

        with pytest.raises(ValueError, match="module-level"):
            task_fn_path(inner)

    def test_bad_paths_rejected(self):
        with pytest.raises(ValueError, match="bad task function path"):
            resolve_task_fn("no-colon-here")
        with pytest.raises(ValueError, match="non-callable"):
            resolve_task_fn("math:pi")


class TestRunWorker:
    def test_drains_queue_and_publishes_results(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue(
            TaskSpec(key=f"k{i}", fn=task_fn_path(record_call), payload=i)
            for i in range(4)
        )
        report = run_worker(queue, worker_id="w")
        assert report.completed == 4 and report.failed == 0
        assert sorted(CALLS) == [0, 1, 2, 3]
        assert queue.drained()
        assert [queue.load_result(f"k{i}") for i in range(4)] == [0, 2, 4, 6]

    def test_failing_task_is_retried_then_quarantined(self, tmp_path):
        queue = make_queue(tmp_path, max_leases=2)
        queue.enqueue([TaskSpec(key="bad", fn=task_fn_path(always_fails))])
        report = run_worker(queue, worker_id="w")
        assert report.failed == 2  # two leases burned, then poison
        assert queue.counts()[QUARANTINED] == 1
        [failure] = queue.failures()
        assert failure.error_type == "ValueError"
        assert "traceback" in failure.remote_traceback.lower()

    def test_max_tasks_bounds_one_invocation(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue(
            TaskSpec(key=f"k{i}", fn=task_fn_path(record_call), payload=i)
            for i in range(3)
        )
        report = run_worker(queue, worker_id="w", max_tasks=2)
        assert report.completed == 2
        assert queue.counts()[PENDING] == 1

    def test_existing_result_short_circuits_execution(self, tmp_path):
        """A task whose previous holder published but died before ``done``
        is completed from the published result, not re-executed."""
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock=clock)
        queue.enqueue(
            [TaskSpec(key="k", fn=task_fn_path(record_call), payload=21)]
        )
        dead = queue.claim(worker="dead")
        queue.publish_result("k", 42)  # published, then the worker died
        clock.sleep(10.0)
        queue.reclaim_expired()
        report = run_worker(queue, worker_id="w")
        assert report.completed == 1
        assert CALLS == []  # not re-executed
        assert queue.load_result("k") == 42
        assert queue.complete(dead) is False

    def test_interleaved_workers_split_the_queue(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue(
            TaskSpec(key=f"k{i}", fn=task_fn_path(record_call), payload=i)
            for i in range(6)
        )
        a = run_worker(queue, worker_id="a", max_tasks=3)
        b = run_worker(queue, worker_id="b")
        assert a.completed == 3 and b.completed == 3
        assert queue.counts()[DONE] == 6
        assert set(a.keys).isdisjoint(b.keys)
