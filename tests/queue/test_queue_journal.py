"""The append-only JSONL journal: durability, tail repair, incremental reads."""

from __future__ import annotations

import json

from repro.queue.journal import Journal


class TestAppend:
    def test_append_creates_file_and_round_trips(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"op": "add", "task": "a"})
        journal.append({"op": "claim", "task": "a", "lease": "w.1"})
        assert journal.read_all() == [
            {"op": "add", "task": "a"},
            {"op": "claim", "task": "a", "lease": "w.1"},
        ]

    def test_appends_are_one_json_line_each(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"op": "add", "task": "a", "n": 1})
        journal.append({"op": "add", "task": "b", "n": 2})
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["op"] == "add" for line in lines)

    def test_creates_parent_directories(self, tmp_path):
        journal = Journal(tmp_path / "deep" / "nested" / "journal.jsonl")
        journal.append({"op": "add", "task": "a"})
        assert journal.read_all() == [{"op": "add", "task": "a"}]

    def test_tail_repair_isolates_torn_line(self, tmp_path):
        """A crash mid-append leaves a torn final line; the next append
        must not fuse onto it — the torn record is lost, the new one
        survives."""
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.append({"op": "add", "task": "a"})
        with open(path, "ab") as fh:  # simulate a torn write (no newline)
            fh.write(b'{"op": "add", "task": "torn-and-inco')
        journal.append({"op": "add", "task": "b"})
        records = Journal(path).read_all()
        assert records == [
            {"op": "add", "task": "a"},
            {"op": "add", "task": "b"},
        ]


class TestReadNew:
    def test_incremental_reads_return_only_new_records(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"n": 1})
        reader = Journal(tmp_path / "journal.jsonl")
        assert [r["n"] for r in reader.read_new()] == [1]
        assert reader.read_new() == []
        journal.append({"n": 2})
        journal.append({"n": 3})
        assert [r["n"] for r in reader.read_new()] == [2, 3]

    def test_missing_file_reads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").read_new() == []

    def test_partial_tail_buffered_until_complete(self, tmp_path):
        """A reader that sees a half-written line holds it back and
        completes it on the next read once the rest arrives."""
        path = tmp_path / "journal.jsonl"
        with open(path, "wb") as fh:
            fh.write(b'{"n": 1}\n{"n": ')
        reader = Journal(path)
        assert [r["n"] for r in reader.read_new()] == [1]
        with open(path, "ab") as fh:
            fh.write(b"2}\n")
        assert [r["n"] for r in reader.read_new()] == [2]

    def test_unparseable_complete_lines_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with open(path, "wb") as fh:
            fh.write(b'{"n": 1}\nnot json at all\n{"n": 2}\n[1, 2]\n')
        records = Journal(path).read_all()
        assert [r["n"] for r in records] == [1, 2]  # non-dicts dropped too

    def test_read_all_is_offset_independent(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"n": 1})
        journal.read_new()
        journal.append({"n": 2})
        assert [r["n"] for r in journal.read_all()] == [1, 2]
