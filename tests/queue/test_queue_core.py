"""WorkQueue lease state machine, entirely on a VirtualClock — no wall
sleeps: claim → heartbeat → expiry → reclaim → quarantine, stale-lease
completion, idempotent enqueue, and cross-instance journal replay."""

from __future__ import annotations

import pytest

from repro.queue import LEASE_SECONDS_ENV, TaskSpec, WorkQueue
from repro.queue.core import (
    DONE,
    LEASED,
    PENDING,
    QUARANTINED,
    resolve_lease_seconds,
)
from repro.resilience.failures import KIND_QUARANTINE
from repro.serve.clock import VirtualClock


def make_queue(tmp_path, clock=None, **kw):
    kw.setdefault("lease_seconds", 10.0)
    return WorkQueue(tmp_path / "q", clock=clock or VirtualClock(), **kw)


def enqueue_one(queue, key="cell-a", payload=4.0):
    queue.enqueue([TaskSpec(key=key, fn="math:sqrt", payload=payload)])


class TestEnqueue:
    def test_enqueue_dedupes_by_key(self, tmp_path):
        queue = make_queue(tmp_path)
        spec = TaskSpec(key="a", fn="math:sqrt", payload=1.0)
        assert queue.enqueue([spec]) == 1
        assert queue.enqueue([spec]) == 0  # idempotent driver restart
        assert queue.counts()[PENDING] == 1

    def test_done_tasks_are_not_re_added(self, tmp_path):
        queue = make_queue(tmp_path)
        enqueue_one(queue)
        lease = queue.claim(worker="w")
        queue.publish_result(lease.key, 2.0)
        queue.complete(lease)
        assert queue.enqueue([TaskSpec(key="cell-a", fn="math:sqrt")]) == 0
        assert queue.counts()[DONE] == 1

    def test_payload_round_trips_through_pickle(self, tmp_path):
        queue = make_queue(tmp_path)
        payload = {"nested": [1, 2.5, "three"], "flag": True}
        queue.enqueue([TaskSpec(key="p", fn="math:sqrt", payload=payload)])
        assert queue.claim(worker="w").payload == payload


class TestLeaseLifecycle:
    def test_claim_is_fifo_and_leases_expire_ahead(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock)
        enqueue_one(queue, "first")
        enqueue_one(queue, "second")
        lease = queue.claim(worker="w")
        assert lease.key == "first"
        assert lease.attempt == 0
        assert lease.expires == clock.now() + 10.0
        assert queue.counts() == {
            PENDING: 1, LEASED: 1, DONE: 0, QUARANTINED: 0,
        }

    def test_claim_returns_none_when_nothing_pending(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.claim(worker="w") is None
        enqueue_one(queue)
        queue.claim(worker="w")
        assert queue.claim(worker="w") is None  # only task is leased

    def test_heartbeat_extends_expiry(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock)
        enqueue_one(queue)
        lease = queue.claim(worker="w")
        clock.sleep(8.0)
        assert queue.renew(lease) == clock.now() + 10.0
        clock.sleep(8.0)  # 16s after claim: dead without the renewal
        assert queue.reclaim_expired() == []
        assert queue.counts()[LEASED] == 1

    def test_expired_lease_is_reclaimed_to_pending(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock)
        enqueue_one(queue)
        lease = queue.claim(worker="w")
        clock.sleep(10.0)  # expiry is inclusive: expires <= now
        assert queue.reclaim_expired() == [("cell-a", PENDING)]
        assert queue.renew(lease) is None  # original lease is dead
        replacement = queue.claim(worker="w2")
        assert replacement.key == "cell-a"
        assert replacement.attempt == 1

    def test_complete_marks_done_and_stops_reclaim(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock)
        enqueue_one(queue)
        lease = queue.claim(worker="w")
        queue.publish_result(lease.key, 2.0)
        assert queue.complete(lease, seconds=1.5) is True
        clock.sleep(100.0)
        assert queue.reclaim_expired() == []
        assert queue.drained()
        assert queue.load_result("cell-a") == 2.0

    def test_stale_lease_completion_is_accepted(self, tmp_path):
        """A worker that published its artifact but lost its lease still
        gets to mark the task done — the work exists (at-least-once)."""
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock)
        enqueue_one(queue)
        stale = queue.claim(worker="slow")
        clock.sleep(10.0)
        queue.reclaim_expired()
        queue.claim(worker="fast")  # second holder, mid-flight
        queue.publish_result(stale.key, 2.0)
        assert queue.complete(stale) is True
        assert queue.counts()[DONE] == 1

    def test_duplicate_completion_reports_false(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock)
        enqueue_one(queue)
        stale = queue.claim(worker="slow")
        clock.sleep(10.0)
        queue.reclaim_expired()
        fresh = queue.claim(worker="fast")
        queue.publish_result(fresh.key, 2.0)
        assert queue.complete(fresh) is True
        assert queue.complete(stale) is False  # first done wins


class TestQuarantine:
    def test_task_burning_lease_budget_is_quarantined(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock, max_leases=2)
        enqueue_one(queue)
        for _ in range(2):
            assert queue.claim(worker="w") is not None
            clock.sleep(10.0)
            reclaimed = queue.reclaim_expired()
        assert reclaimed == [("cell-a", QUARANTINED)]
        assert queue.claim(worker="w") is None  # poison: never re-leased
        assert queue.drained()  # quarantined counts as terminal

    def test_failing_task_quarantines_with_its_error(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock, max_leases=2)
        enqueue_one(queue)
        for _ in range(2):
            lease = queue.claim(worker="w")
            status = queue.fail(lease, ValueError("bad payload"))
        assert status == QUARANTINED
        [failure] = queue.failures()
        assert failure.kind == KIND_QUARANTINE
        assert failure.error_type == "ValueError"
        assert failure.message == "bad payload"
        assert failure.attempts == 2
        assert failure.retryable is True

    def test_fail_below_budget_returns_to_pending(self, tmp_path):
        queue = make_queue(tmp_path, max_leases=3)
        enqueue_one(queue)
        lease = queue.claim(worker="w")
        assert queue.fail(lease, RuntimeError("transient")) == PENDING
        retry = queue.claim(worker="w")
        assert retry.key == "cell-a" and retry.attempt == 1

    def test_quarantine_failure_carries_index_mapping(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock, max_leases=1)
        enqueue_one(queue, "k0")
        enqueue_one(queue, "k1")
        lease = queue.claim(worker="w")
        queue.fail(lease, RuntimeError("boom"))
        [failure] = queue.failures(index_of={"k0": 0, "k1": 1}.__getitem__)
        assert (failure.key, failure.index) == ("k0", 0)


class TestReplay:
    def test_fresh_instance_folds_identical_state(self, tmp_path):
        clock = VirtualClock()
        queue = make_queue(tmp_path, clock, max_leases=2)
        for key in ("a", "b", "c"):
            enqueue_one(queue, key)
        done = queue.claim(worker="w")
        queue.publish_result(done.key, 1.0)
        queue.complete(done)
        queue.claim(worker="w")  # leave "b" leased
        replayed = WorkQueue(
            queue.directory, clock=clock, lease_seconds=10.0, max_leases=2
        )
        assert replayed.counts() == queue.counts()
        assert replayed.counts() == {
            PENDING: 1, LEASED: 1, DONE: 1, QUARANTINED: 0,
        }

    def test_two_instances_interleave_through_one_journal(self, tmp_path):
        clock = VirtualClock()
        first = make_queue(tmp_path, clock)
        second = WorkQueue(first.directory, clock=clock, lease_seconds=10.0)
        enqueue_one(first, "a")
        enqueue_one(first, "b")
        la = first.claim(worker="w1")
        lb = second.claim(worker="w2")
        assert {la.key, lb.key} == {"a", "b"}  # no double-claim
        assert second.claim(worker="w2") is None


class TestConfig:
    def test_lease_seconds_from_env(self, monkeypatch):
        monkeypatch.setenv(LEASE_SECONDS_ENV, "7.5")
        assert resolve_lease_seconds() == 7.5
        assert resolve_lease_seconds(3.0) == 3.0  # explicit wins

    def test_bad_lease_seconds_rejected(self, monkeypatch):
        monkeypatch.setenv(LEASE_SECONDS_ENV, "soon")
        with pytest.raises(ValueError, match="must be a number"):
            resolve_lease_seconds()
        with pytest.raises(ValueError, match="> 0"):
            resolve_lease_seconds(0)

    def test_max_leases_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_leases"):
            WorkQueue(tmp_path / "q", max_leases=0)
