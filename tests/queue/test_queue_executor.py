"""queue_map and the ``executor="queue"`` seam of parallel_map (inline
``jobs=1`` worker on a VirtualClock — no subprocesses, no wall sleeps)."""

from __future__ import annotations

import math
import operator

import pytest

from repro.parallel import MapOutcome, WorkerError, parallel_map
from repro.parallel.pool import EXECUTOR_ENV, resolve_executor
from repro.queue import QUEUE_DIR_ENV, Journal, queue_map
from repro.queue.executor import resolve_queue_dir
from repro.resilience.failures import KIND_QUARANTINE
from repro.serve.clock import VirtualClock


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv(QUEUE_DIR_ENV, raising=False)
    monkeypatch.delenv(EXECUTOR_ENV, raising=False)


def run(items=(1.0, 4.0, 9.0), keys=("a", "b", "c"), **kw):
    kw.setdefault("jobs", 1)
    kw.setdefault("clock", VirtualClock())
    return queue_map(math.sqrt, list(items), keys=list(keys), **kw)


class TestResolveExecutor:
    def test_default_is_pool(self):
        assert resolve_executor() == "pool"

    def test_env_and_explicit(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "queue")
        assert resolve_executor() == "queue"
        assert resolve_executor("pool") == "pool"  # explicit wins

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            resolve_executor("carrier-pigeon")


class TestResolveQueueDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(QUEUE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_queue_dir(tmp_path / "mine", "m:f", ["k"]) == (
            tmp_path / "mine"
        )
        assert resolve_queue_dir(None, "m:f", ["k"]) == tmp_path / "env"

    def test_derived_dir_is_stable_per_grid(self):
        first = resolve_queue_dir(None, "m:f", ["k1", "k2"])
        assert first == resolve_queue_dir(None, "m:f", ["k2", "k1"])  # order-free
        assert first != resolve_queue_dir(None, "m:f", ["k1", "k3"])
        assert first != resolve_queue_dir(None, "m:g", ["k1", "k2"])


class TestQueueMap:
    def test_ordered_results_match_items(self):
        assert run() == [1.0, 2.0, 3.0]

    def test_failure_raises_worker_error_by_default(self):
        with pytest.raises(WorkerError, match="TypeError"):
            queue_map(
                operator.neg,
                ["not-a-number"],
                jobs=1,
                keys=["bad"],
                clock=VirtualClock(),
                max_retries=0,
            )

    def test_collect_mode_returns_quarantine_failures(self):
        out = queue_map(
            operator.neg,
            [1, "bad", 3],
            jobs=1,
            keys=["k0", "k1", "k2"],
            clock=VirtualClock(),
            on_error="collect",
            max_retries=1,
        )
        assert isinstance(out, MapOutcome)
        assert out.results == [-1, None, -3]
        [failure] = out.failures
        assert failure.kind == KIND_QUARANTINE
        assert (failure.key, failure.index) == ("k1", 1)
        assert failure.attempts == 2  # max_retries=1 -> 2 leases
        assert out.successes() == [-1, -3]

    def test_rerun_resumes_from_journal(self, tmp_path):
        queue_dir = tmp_path / "grid"
        assert run(queue_dir=queue_dir) == [1.0, 2.0, 3.0]
        claims_before = sum(
            1
            for r in Journal(queue_dir / "journal.jsonl").read_all()
            if r["op"] == "claim"
        )
        assert run(queue_dir=queue_dir) == [1.0, 2.0, 3.0]
        claims_after = sum(
            1
            for r in Journal(queue_dir / "journal.jsonl").read_all()
            if r["op"] == "claim"
        )
        assert claims_before == 3
        assert claims_after == 3  # all cells served from results, no re-run

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique cell keys"):
            run(keys=("a", "a", "c"))

    def test_unordered_collect_drops_holes(self):
        out = queue_map(
            operator.neg,
            [1, "bad"],
            jobs=1,
            keys=["k0", "k1"],
            clock=VirtualClock(),
            on_error="collect",
            max_retries=0,
            ordered=False,
        )
        assert out.results == [-1]


class TestParallelMapSeam:
    def test_parallel_map_routes_to_queue(self, tmp_path):
        result = parallel_map(
            math.sqrt,
            [1.0, 16.0],
            jobs=1,
            keys=["a", "b"],
            executor="queue",
            queue_dir=tmp_path / "via-seam",
        )
        assert result == [1.0, 4.0]
        assert (tmp_path / "via-seam" / "journal.jsonl").exists()

    def test_env_routes_to_queue(self, tmp_path, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "queue")
        monkeypatch.setenv(QUEUE_DIR_ENV, str(tmp_path / "via-env"))
        assert parallel_map(math.sqrt, [25.0], jobs=1, keys=["a"]) == [5.0]
        assert (tmp_path / "via-env" / "journal.jsonl").exists()

    def test_pool_default_untouched(self, tmp_path):
        assert parallel_map(math.sqrt, [25.0], jobs=1) == [5.0]
        assert not (tmp_path / "cache").exists()  # no queue dir created
