"""Chaos on the queue: lease kills mid-claim.

Tier-1 covers the injection site inline (owner-degraded ChaosError on a
VirtualClock).  The tier-2 test is the acceptance scenario: a MICRO zoo
grid through ``executor="queue"`` with two subprocess workers where
chaos SIGKILLs every first lease — the supervisor must reclaim and
respawn until the grid completes with zero lost cells, and the artifacts
must be bitwise identical to an undisturbed single-process build.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.experiments import SMOKE, ZooSpec, zoo
from repro.queue import TaskSpec, WorkQueue, run_worker, task_fn_path
from repro.queue.core import DONE, QUARANTINED
from repro.resilience import chaos
from repro.resilience.chaos import ChaosError
from repro.serve.clock import VirtualClock

MICRO = SMOKE.with_(
    n_train=48, n_test=24, image_size=8, num_classes=4, base_width=2,
    parent_epochs=1, retrain_epochs=0, target_ratios=(0.4,), n_repetitions=1,
)


@pytest.fixture(autouse=True)
def chaos_isolation(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.OWNER_ENV, raising=False)
    chaos.disable()
    yield
    chaos.disable()


def double(payload):
    """Module-level task so its path survives the journal round-trip."""
    return payload * 2


class TestOnQueueTaskInline:
    def test_owner_degrades_kill_to_chaos_error(self):
        chaos.configure(lease_kill_rate=1.0, seed=7)
        with pytest.raises(ChaosError, match="lease kill"):
            chaos.on_queue_task("cell-a", attempt=0)

    def test_first_attempts_only_spares_the_retry(self):
        chaos.configure(lease_kill_rate=1.0, seed=7, first_attempts_only=1)
        with pytest.raises(ChaosError):
            chaos.on_queue_task("cell-a", attempt=0)
        chaos.on_queue_task("cell-a", attempt=1)  # must not raise

    def test_inline_worker_recovers_after_injected_kill(self, tmp_path):
        """Inline (owner) worker: the injected kill becomes a journaled
        failure, and the next lease — spared by ``first_attempts_only``
        — completes the task."""
        chaos.configure(lease_kill_rate=1.0, seed=7, first_attempts_only=1)
        queue = WorkQueue(
            tmp_path / "q", clock=VirtualClock(), lease_seconds=10.0,
            max_leases=3,
        )
        queue.enqueue(
            [TaskSpec(key="k", fn=task_fn_path(double), payload=4)]
        )
        report = run_worker(queue, worker_id="w")
        assert report.failed == 1  # attempt 0: injected ChaosError
        assert report.completed == 1  # attempt 1: survives
        assert queue.counts()[DONE] == 1
        assert queue.load_result("k") == 8


def _artifact_digests(cache_dir):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in cache_dir.glob("*.npz")
    }


def _journal_ops(queue_dir, op):
    total = 0
    for journal in queue_dir.rglob("journal.jsonl"):
        with open(journal, encoding="utf-8") as fh:
            total += sum(
                1 for line in fh if json.loads(line).get("op") == op
            )
    return total


@pytest.mark.tier2
class TestLeaseKillEndToEnd:
    def test_sigkilled_workers_lose_no_cells(self, tmp_path, monkeypatch):
        """Acceptance: two subprocess workers, every first lease SIGKILLed
        mid-cell; the grid completes, nothing is lost, and the artifacts
        match an undisturbed single-process build bit for bit."""
        specs = [ZooSpec("cifar", "resnet20", m, 0) for m in ("wt", "ft")]

        # Baseline: single-process in-pool build, no chaos.
        baseline_cache = tmp_path / "baseline"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(baseline_cache))
        zoo.build_zoo(specs, MICRO, jobs=1)
        baseline = _artifact_digests(baseline_cache)
        assert len(baseline) == 3  # parent + wt + ft

        # Chaos build: subprocess workers inherit the exported plan and,
        # not being the chaos owner, really SIGKILL themselves on every
        # first lease.  Short leases keep reclamation fast.
        chaos_cache = tmp_path / "chaos"
        queue_dir = tmp_path / "queue"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(chaos_cache))
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "2.0")
        chaos.configure(lease_kill_rate=1.0, seed=7, first_attempts_only=1)
        timing = zoo.build_zoo(
            specs, MICRO, jobs=2, executor="queue", queue_dir=queue_dir,
        )
        chaos.disable()

        assert not timing.degraded  # zero lost cells
        assert len(timing.cells) == 3
        # Every task's first lease died and was reclaimed, none poisoned.
        assert _journal_ops(queue_dir, "reclaim") >= 1
        assert _journal_ops(queue_dir, "quarantine") == 0
        assert _artifact_digests(chaos_cache) == baseline  # bitwise equal
