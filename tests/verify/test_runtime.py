"""REPRO_VERIFY runtime hooks: no-op by default, fail fast when enabled."""

import numpy as np
import pytest

from repro.pruning import PruneRetrain, build_method
from repro.pruning.mask import prunable_layers
from repro.verify import VerificationError
from repro.verify.runtime import verify_enabled, verify_prune_step, verify_retrained

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


def _corrupted_pruned_cnn():
    model = make_tiny_cnn()
    build_method("wt").prune(model, 0.5)
    for _, layer in prunable_layers(model):
        idx = np.argwhere(layer.weight_mask == 0)
        if len(idx):
            layer.weight.data[tuple(idx[0])] = 1.234
            return model
    raise AssertionError("no masked weight to corrupt")


class TestVerifyEnabled:
    @pytest.mark.parametrize("value", ["", "0", "false", "FALSE", "off", "no"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert not verify_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VERIFY", value)
        assert verify_enabled()

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not verify_enabled()


class TestHookGating:
    def test_disabled_hooks_ignore_corruption(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        model = _corrupted_pruned_cnn()
        verify_prune_step(model, 0.5, 0.5, "wt", structured=False, step=0)
        verify_retrained(model, "wt", step=0)

    def test_enabled_hook_raises_on_corruption(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        model = _corrupted_pruned_cnn()
        with pytest.raises(VerificationError, match="mask_weight_consistency"):
            verify_prune_step(model, 0.5, 0.5, "wt", structured=False, step=0)

    def test_enabled_hook_raises_on_misreported_ratio(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        model = make_tiny_cnn()
        achieved = build_method("wt").prune(model, 0.5)
        with pytest.raises(VerificationError, match="reported_ratio_matches"):
            verify_prune_step(
                model, achieved + 0.1, 0.5, "wt", structured=False, step=0
            )
        # Error payload carries the structured report.
        try:
            verify_prune_step(model, achieved + 0.1, 0.5, "wt", False, 0)
        except VerificationError as err:
            assert err.report.failures


class TestPipelineUnderVerify:
    @pytest.mark.parametrize("method_name", ["wt", "ft"])
    def test_healthy_pipeline_stays_green(self, monkeypatch, method_name):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        suite = make_tiny_suite(n_train=48, n_test=24)
        trainer = make_tiny_trainer(make_tiny_cnn(), suite, epochs=1)
        pipeline = PruneRetrain(
            trainer, build_method(method_name), retrain_epochs=0, sample_size=16
        )
        run = pipeline.run(target_ratios=(0.3, 0.5))
        assert len(run.checkpoints) == 2

    def test_misreporting_method_fails_at_its_step(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        suite = make_tiny_suite(n_train=48, n_test=24)
        trainer = make_tiny_trainer(make_tiny_cnn(), suite, epochs=1)
        method = build_method("wt")
        real_prune = method.prune
        method.prune = lambda model, target, sample=None: (
            real_prune(model, target, sample) + 0.03
        )
        pipeline = PruneRetrain(trainer, method, retrain_epochs=0)
        with pytest.raises(VerificationError, match="reported_ratio_matches"):
            pipeline.run(target_ratios=(0.3,))
