"""Invariant checkers: pass on healthy models, catch planted corruption."""

import numpy as np
import pytest

from repro.pruning import build_method
from repro.pruning.mask import prunable_layers, structured_prunable_layers
from repro.verify import (
    VerificationReport,
    check_curve_sanity,
    check_flop_accounting,
    check_mask_weight_consistency,
    check_potential_sanity,
    check_prune_accounting,
    check_state_consistency,
    check_structured_masks,
    check_structured_shape_propagation,
)

from tests.conftest import make_tiny_cnn

INPUT_SHAPE = (3, 8, 8)


@pytest.fixture
def pruned_cnn():
    model = make_tiny_cnn()
    achieved = build_method("wt").prune(model, 0.5)
    return model, achieved


@pytest.fixture
def structured_cnn():
    model = make_tiny_cnn()
    achieved = build_method("ft").prune(model, 0.4)
    return model, achieved


def _revive_one_masked_weight(model) -> None:
    for _, layer in prunable_layers(model):
        idx = np.argwhere(layer.weight_mask == 0)
        if len(idx):
            layer.weight.data[tuple(idx[0])] = 1.234
            return
    raise AssertionError("no masked weight to corrupt")


class TestMaskWeightConsistency:
    def test_healthy_model_passes(self, pruned_cnn):
        model, _ = pruned_cnn
        assert check_mask_weight_consistency(model).passed

    def test_revived_weight_detected(self, pruned_cnn):
        model, _ = pruned_cnn
        _revive_one_masked_weight(model)
        report = check_mask_weight_consistency(model)
        assert not report.passed
        assert any("mask_weight_consistency" in r.name for r in report.failures)

    def test_non_binary_mask_detected(self, pruned_cnn):
        model, _ = pruned_cnn
        _, layer = prunable_layers(model)[0]
        layer._buffers["weight_mask"].reshape(-1)[0] = 0.5
        report = check_mask_weight_consistency(model)
        assert any("mask_binary" in r.name for r in report.failures)


class TestPruneAccounting:
    def test_reported_ratio_matches(self, pruned_cnn):
        model, achieved = pruned_cnn
        assert check_prune_accounting(model, reported_ratio=achieved).passed

    def test_misreported_ratio_detected(self, pruned_cnn):
        model, achieved = pruned_cnn
        report = check_prune_accounting(model, reported_ratio=achieved + 0.05)
        assert any("reported_ratio_matches" in r.name for r in report.failures)


class TestFlopAccounting:
    def test_two_accounting_routes_agree(self, pruned_cnn):
        model, _ = pruned_cnn
        report = check_flop_accounting(model, INPUT_SHAPE)
        assert report.passed

    def test_structured_pruning_reduces_flops(self, structured_cnn):
        model, _ = structured_cnn
        report = check_flop_accounting(model, INPUT_SHAPE)
        assert report.passed
        ctx = next(
            r.context for r in report.results if r.name == "flops_dense_minus_pruned"
        )
        assert ctx["pruned"] < ctx["dense"]


class TestStructuredMasks:
    def test_ft_masks_channel_aligned(self, structured_cnn):
        model, _ = structured_cnn
        assert check_structured_masks(model).passed

    def test_partial_channel_detected(self, structured_cnn):
        model, _ = structured_cnn
        name, layer = structured_prunable_layers(model)[0]
        mask = layer.weight_mask.copy()
        alive = np.flatnonzero(mask.sum(axis=(0, 2, 3)) > 0)
        mask[0, alive[0], 0, 0] = 0.0  # prune part of one channel column
        layer.set_weight_mask(mask)
        report = check_structured_masks(model)
        assert any("channel_aligned_mask" in r.name for r in report.failures)


class TestStructuredShapePropagation:
    def test_ft_pruned_channels_are_dead_upstream(self, structured_cnn, rng):
        model, _ = structured_cnn
        probe = rng.standard_normal((2, *INPUT_SHAPE)).astype(np.float32)
        report = check_structured_shape_propagation(model, probe)
        assert report.passed
        assert any(
            "structured_shape_propagation[" in r.name for r in report.results
        ), "expected at least one chain to be checked"

    def test_stale_mask_cache_detected(self, structured_cnn, rng):
        # weight_mask says channels are dead, but a stale _mask_active flag
        # makes forward use the raw weights: propagation must notice.
        model, _ = structured_cnn
        for _, layer in structured_prunable_layers(model):
            if layer.num_pruned:
                layer.weight.data += 0.1  # desync weights from masks
                layer._mask_active = False
        probe = rng.standard_normal((2, *INPUT_SHAPE)).astype(np.float32)
        report = check_structured_shape_propagation(model, probe)
        assert not report.passed


class TestStateConsistency:
    def test_state_dict_roundtrip_passes(self, pruned_cnn):
        model, achieved = pruned_cnn
        assert check_state_consistency(
            model.state_dict(), reported_ratio=achieved
        ).passed

    def test_nan_weight_detected(self, pruned_cnn):
        model, _ = pruned_cnn
        state = model.state_dict()
        key = next(k for k in state if k.endswith(".weight"))
        state[key] = state[key].copy()
        state[key].reshape(-1)[0] = np.nan
        report = check_state_consistency(state)
        assert any("finite" in r.name for r in report.failures)

    def test_no_masks_flagged(self):
        report = check_state_consistency({"w": np.ones(3)})
        assert any("has_prunable_state" in r.name for r in report.failures)


class TestCurveSanity:
    def test_healthy_curve(self):
        report = check_curve_sanity([0.3, 0.5, 0.8], [0.1, 0.12, 0.3], 0.1)
        assert report.passed

    def test_decreasing_ratios_detected(self):
        report = check_curve_sanity([0.5, 0.3], [0.1, 0.2], 0.1)
        assert any("ratios_monotone" in r.name for r in report.failures)

    def test_error_out_of_range_detected(self):
        report = check_curve_sanity([0.5], [1.7], 0.1)
        assert any("error_range" in r.name for r in report.failures)

    def test_nan_detected(self):
        report = check_curve_sanity([0.5], [np.nan], 0.1)
        assert any("finite" in r.name for r in report.failures)


class TestPotentialSanity:
    def test_in_range(self):
        assert check_potential_sanity(0.5, [0.3, 0.5, 0.8]).passed

    def test_above_curve_detected(self):
        report = check_potential_sanity(0.9, [0.3, 0.5])
        assert any("bounded_by_curve" in r.name for r in report.failures)


class TestReport:
    def test_summary_and_json(self, pruned_cnn):
        model, _ = pruned_cnn
        report = check_mask_weight_consistency(model)
        assert "checks passed" in report.summary()
        assert '"passed": true' in report.to_json()

    def test_raise_if_failed(self):
        from repro.verify import VerificationError

        report = VerificationReport("x")
        report.add("boom", False, detail="planted")
        with pytest.raises(VerificationError, match="boom"):
            report.raise_if_failed()
