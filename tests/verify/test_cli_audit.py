"""``python -m repro verify``: passes on a fresh zoo, catches corruption."""

import json
import os
import shutil

import numpy as np
import pytest

from repro.__main__ import main
from repro.experiments import SMOKE, ZooSpec, zoo
from repro.utils.serialization import load_state, save_state
from repro.verify import VerificationError, audit_path

MICRO = SMOKE.with_(
    n_train=48, n_test=24, image_size=8, num_classes=4, base_width=2,
    parent_epochs=1, retrain_epochs=0, target_ratios=(0.4,), n_repetitions=1,
)


@pytest.fixture(scope="module")
def zoo_dir(tmp_path_factory):
    """A freshly built tiny zoo (1 parent, wt + ft prune runs)."""
    cache = tmp_path_factory.mktemp("zoo")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    try:
        specs = [ZooSpec("cifar", "resnet20", m, 0) for m in ("wt", "ft")]
        zoo.build_zoo(specs, MICRO, jobs=1)
        yield cache
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


def _prune_run_artifact(directory):
    path = next(p for p in sorted(directory.glob("*.npz")) if "-wt-" in p.name)
    return path


def _revive_masked_weight(path):
    """Rewrite the artifact with one checkpoint weight revived behind its mask."""
    arrays, meta = load_state(path)
    for key in sorted(arrays):
        if key.startswith("ckpt0/") and key.endswith(".weight_mask"):
            weight_key = key[: -len("_mask")]
            mask = arrays[key]
            idx = np.argwhere(mask == 0)
            if len(idx):
                weight = arrays[weight_key].copy()
                weight[tuple(idx[0])] = 7.0
                arrays[weight_key] = weight
                save_state(path, arrays, meta)
                return
    raise AssertionError("no masked checkpoint weight to corrupt")


class TestCliAudit:
    def test_fresh_zoo_passes(self, zoo_dir, capsys):
        assert main(["verify", str(zoo_dir)]) == 0
        assert "checks passed" in capsys.readouterr().out

    def test_default_path_is_cache_dir(self, zoo_dir, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(zoo_dir))
        assert main(["verify"]) == 0
        capsys.readouterr()

    def test_corrupted_artifact_detected(self, zoo_dir, tmp_path, capsys):
        audited = tmp_path / "zoo"
        shutil.copytree(zoo_dir, audited)
        _revive_masked_weight(_prune_run_artifact(audited))
        assert main(["verify", str(audited)]) == 1
        assert "mask_weight_consistency" in capsys.readouterr().out
        report = audit_path(audited)
        assert any("mask_weight_consistency" in r.name for r in report.failures)

    def test_misrecorded_ratio_detected(self, zoo_dir, tmp_path):
        audited = tmp_path / "zoo"
        shutil.copytree(zoo_dir, audited)
        path = _prune_run_artifact(audited)
        arrays, meta = load_state(path)
        meta["checkpoints"][0]["achieved_ratio"] += 0.2
        save_state(path, arrays, meta)
        report = audit_path(audited)
        assert any("reported_ratio_matches" in r.name for r in report.failures)

    def test_unreadable_artifact_detected(self, tmp_path, capsys):
        (tmp_path / "broken.npz").write_bytes(b"not an archive")
        assert main(["verify", str(tmp_path)]) == 1
        assert "readable" in capsys.readouterr().out

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path)]) == 1
        assert "artifacts_found" in capsys.readouterr().out

    def test_single_artifact_and_deep_audit(self, zoo_dir, capsys):
        path = _prune_run_artifact(zoo_dir)
        assert main(["verify", str(path), "--deep"]) == 0
        capsys.readouterr()

    def test_json_report_and_verbose(self, zoo_dir, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["verify", str(zoo_dir), "--json", str(out), "--verbose"]) == 0
        assert "[ok]" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["passed"] is True
        assert report["results"]


class TestCacheHitVerification:
    def test_loaded_run_verified_on_cache_hit(self, zoo_dir, tmp_path, monkeypatch):
        audited = tmp_path / "zoo"
        shutil.copytree(zoo_dir, audited)
        _revive_masked_weight(_prune_run_artifact(audited))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(audited))
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with pytest.raises(VerificationError, match="mask_weight_consistency"):
            zoo.get_prune_run(ZooSpec("cifar", "resnet20", "wt", 0), MICRO)

    def test_cache_hit_clean_when_disabled(self, zoo_dir, tmp_path, monkeypatch):
        audited = tmp_path / "zoo"
        shutil.copytree(zoo_dir, audited)
        _revive_masked_weight(_prune_run_artifact(audited))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(audited))
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        run = zoo.get_prune_run(ZooSpec("cifar", "resnet20", "wt", 0), MICRO)
        assert run.checkpoints
