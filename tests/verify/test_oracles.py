"""Differential oracles: masked forward, round-trips, determinism, jobs."""

import numpy as np
import pytest

from repro.experiments import SMOKE, ZooSpec
from repro.pruning import build_method
from repro.pruning.mask import prunable_layers
from repro.verify import (
    oracle_jobs_equivalence,
    oracle_masked_forward,
    oracle_plan_parity,
    oracle_registry_plan_parity,
    oracle_retrain_determinism,
    oracle_save_load_roundtrip,
    state_mismatches,
)

from tests.conftest import make_tiny_cnn, make_tiny_suite, make_tiny_trainer


class TestStateMismatches:
    def test_equal_states_clean(self, rng):
        a = {"w": rng.standard_normal((3, 4)), "b": np.arange(5)}
        assert state_mismatches(a, {k: v.copy() for k, v in a.items()}) == []

    def test_missing_shape_and_value_diffs(self, rng):
        a = {"w": np.ones((3, 4)), "b": np.arange(5), "extra": np.ones(2)}
        b = {"w": np.ones((4, 3)), "b": np.arange(1, 6)}
        assert sorted(state_mismatches(a, b)) == ["b", "extra", "w"]


class TestMaskedForwardOracle:
    def test_pruned_model_equivalent(self, rng):
        model = make_tiny_cnn()
        build_method("wt").prune(model, 0.5)
        probe = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        report = oracle_masked_forward(model, probe)
        assert report.passed

    def test_stale_mask_cache_detected(self, rng):
        # Weights revived behind the mask *and* the mask flag cleared: the
        # live forward no longer matches the mask-baked forward.
        model = make_tiny_cnn()
        build_method("wt").prune(model, 0.5)
        for _, layer in prunable_layers(model):
            if layer.num_pruned:
                layer.weight.data += 0.5
                layer._mask_active = False
        probe = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        report = oracle_masked_forward(model, probe)
        assert not report.passed

    def test_restores_model_state(self, rng):
        model = make_tiny_cnn()
        build_method("wt").prune(model, 0.5)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        oracle_masked_forward(model, rng.standard_normal((1, 3, 8, 8)))
        assert state_mismatches(before, model.state_dict()) == []


class TestSaveLoadRoundtrip:
    def test_arrays_and_meta_roundtrip(self, rng):
        arrays = {
            "f32": rng.standard_normal((4, 3)).astype(np.float32),
            "f64": rng.standard_normal(7),
            "i64": np.arange(6).reshape(2, 3),
            "nested/key": np.zeros(1),
        }
        meta = {"ratio": 0.5, "checkpoints": [{"test_error": 0.1}], "name": "x"}
        report = oracle_save_load_roundtrip(arrays, meta)
        assert report.passed

    def test_explicit_path(self, tmp_path, rng):
        arrays = {"w": rng.standard_normal((2, 2))}
        report = oracle_save_load_roundtrip(arrays, path=tmp_path / "state.npz")
        assert report.passed


class TestPlanParityOracle:
    def test_pruned_tiny_cnn_passes_both_checks(self, rng):
        model = make_tiny_cnn()
        build_method("wt").prune(model, 0.5)
        probe = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        report = oracle_plan_parity(model, probe)
        assert report.passed
        assert {r.name for r in report.results} == {
            "plan_parity_unfolded",
            "plan_parity_folded",
        }

    def test_untraceable_model_reported_not_raised(self, rng):
        from repro import nn
        from repro.autograd import Tensor

        class Detour(nn.Module):
            def forward(self, x):
                return Tensor(np.tanh(x.data).sum(axis=(2, 3)))

        report = oracle_plan_parity(Detour(), rng.standard_normal((2, 3, 8, 8)))
        assert not report.passed
        (result,) = report.failures
        assert result.name == "plan_parity_unfolded"

    @pytest.mark.tier2
    def test_registry_sweep(self):
        report = oracle_registry_plan_parity()
        assert report.passed, report.summary()


@pytest.mark.tier2
class TestRetrainDeterminism:
    def test_fixed_seed_is_deterministic(self):
        suite = make_tiny_suite(n_train=48, n_test=24)

        def factory():
            return make_tiny_trainer(make_tiny_cnn(), suite, epochs=1)

        report = oracle_retrain_determinism(factory)
        assert report.passed

    def test_seed_change_detected(self):
        suite = make_tiny_suite(n_train=48, n_test=24)
        seeds = iter([0, 1])

        def factory():
            return make_tiny_trainer(make_tiny_cnn(), suite, epochs=1, seed=next(seeds))

        report = oracle_retrain_determinism(factory)
        assert not report.passed
        (result,) = report.failures
        assert result.context["mismatched_keys"]


@pytest.mark.tier2
class TestJobsEquivalence:
    def test_serial_and_parallel_zoo_builds_match(self):
        scale = SMOKE.with_(
            n_train=48, n_test=24, image_size=8, num_classes=4, base_width=2,
            parent_epochs=1, retrain_epochs=0, target_ratios=(0.4,),
            n_repetitions=1,
        )
        specs = [ZooSpec("cifar", "resnet20", m, 0) for m in ("wt", "ft")]
        report = oracle_jobs_equivalence(specs, scale, jobs=2)
        assert report.passed
        # 1 shared parent + 2 prune runs were compared.
        assert len(report.results) == 3
