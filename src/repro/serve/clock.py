"""Injectable clocks: the seam that makes the serving layer simulable.

Every time-dependent decision in :mod:`repro.serve` — batch coalescing
windows, request deadlines, retry backoff, latency accounting — reads one
:class:`Clock`.  Production uses :class:`MonotonicClock` (wall time);
tests and the load harness use :class:`VirtualClock`, which only moves
when told to, so hundreds of simulated seconds of queueing behaviour run
in microseconds with zero wall-clock sleeps and bit-identical outcomes.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: ``now()``, ``sleep(s)``, ``advance_to(t)``, ``virtual``."""

    #: True when time only moves on demand (sleeps are free).  The server
    #: uses this to decide whether measured service time must be *added*
    #: to the clock (virtual) or has already passed (wall).
    virtual: bool = False

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    def advance_to(self, t: float) -> None:
        """Move time forward to ``t`` (no-op if ``t`` is in the past)."""
        delta = t - self.now()
        if delta > 0:
            self.sleep(delta)


class MonotonicClock(Clock):
    """Wall time via ``time.monotonic``; ``sleep`` really sleeps."""

    virtual = False

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class WallClock(Clock):
    """Epoch wall time via ``time.time``; ``sleep`` really sleeps.

    Used where timestamps must be meaningful *across* processes and hosts
    — lease expiries in the :mod:`repro.queue` journal are absolute epoch
    seconds written by one worker and compared by another, which
    ``time.monotonic`` (whose origin is per-boot, per-host) cannot
    support.
    """

    virtual = False

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Deterministic manual time: ``sleep``/``advance_to`` just move ``now``.

    Never blocks — a test drives the schedule explicitly, so flush windows
    and deadlines fire exactly when the test says they do.
    """

    virtual = True

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self._now += seconds

    def advance_to(self, t: float) -> None:
        if t > self._now:
            self._now = float(t)
