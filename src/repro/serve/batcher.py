"""Dynamic batching queue: coalesce, flush on deadline, shed under pressure.

Requests for the same ``(model, row shape, dtype)`` coalesce into one
engine call.  A group flushes when it holds enough rows to fill the
model's batch, when its oldest request has waited out the coalescing
window, or when waiting longer would blow a request's deadline.  The
queue is bounded: when full, the *oldest* pending request anywhere is
shed to admit the new one (shed-oldest favours fresh traffic — the
oldest request is the one most likely to miss its deadline anyway).

The batcher never reads a clock itself: every method takes ``now`` from
the caller, which is what lets the whole policy run deterministically on
a virtual clock (and makes each decision a pure function of the queue
state and the given instant).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

_seq = itertools.count()

#: Terminal request statuses (every submitted request ends in exactly one).
TERMINAL = ("ok", "shed", "deadline", "error")


@dataclass(frozen=True)
class GroupKey:
    """Coalescing identity: one engine call serves one group at a time."""

    model: str
    row_shape: tuple[int, ...]
    dtype: str


class PendingResponse:
    """Caller-facing handle for one submitted request.

    ``status`` moves from ``"pending"`` to exactly one of ``"ok"``
    (``value`` holds the logits), ``"shed"`` (dropped under backpressure),
    ``"deadline"`` (expired before service), or ``"error"`` (the batch's
    engine call failed; ``error`` holds the exception).  ``wait`` blocks
    only in threaded serving; under a virtual clock the server resolves
    responses synchronously during ``pump``/``run_until_idle``.
    """

    __slots__ = (
        "status", "value", "error", "latency", "batch_rows", "_event",
    )

    def __init__(self):
        self.status = "pending"
        self.value: np.ndarray | None = None
        self.error: BaseException | None = None
        self.latency: float | None = None
        self.batch_rows: int | None = None
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        return self.status != "pending"

    def wait(self, timeout: float | None = None) -> bool:
        """Block until resolved (threaded serving); returns ``done``."""
        self._event.wait(timeout)
        return self.done

    def result(self) -> np.ndarray:
        """The logits, or a raise describing why there are none."""
        if self.status == "ok":
            return self.value
        if self.status == "pending":
            raise RuntimeError(
                "response pending — drive the server (pump/run_until_idle) "
                "or wait() on a threaded server"
            )
        if self.status == "error":
            raise RuntimeError(f"request failed: {self.error!r}") from self.error
        raise RuntimeError(f"request was not served: {self.status}")

    def _resolve(self, status: str, **fields) -> None:
        for name, value in fields.items():
            setattr(self, name, value)
        self.status = status
        self._event.set()


@dataclass
class Request:
    """One queued inference request (images share a single row shape)."""

    model: str
    images: np.ndarray
    enqueued: float
    deadline: float | None
    response: PendingResponse = field(default_factory=PendingResponse)
    seq: int = field(default_factory=lambda: next(_seq))

    @property
    def rows(self) -> int:
        return self.images.shape[0]

    @property
    def group(self) -> GroupKey:
        return GroupKey(self.model, self.images.shape[1:], self.images.dtype.str)


@dataclass
class Batch:
    """A flushed group slice: requests served by one engine call."""

    group: GroupKey
    requests: list[Request]

    @property
    def rows(self) -> int:
        return sum(r.rows for r in self.requests)


class DynamicBatcher:
    """Bounded multi-group FIFO with time-windowed coalescing.

    Parameters
    ----------
    max_wait:
        Coalescing window: a group flushes no later than ``max_wait``
        after its oldest request arrived (earlier if a deadline looms or
        the batch fills).
    max_pending:
        Bound on queued requests across all groups.  ``offer`` sheds the
        oldest pending request to admit a new one once the bound is hit.
    """

    def __init__(self, max_wait: float = 0.005, max_pending: int = 1024):
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_wait = float(max_wait)
        self.max_pending = int(max_pending)
        self._groups: dict[GroupKey, list[Request]] = {}
        self.pending = 0

    def __len__(self) -> int:
        return self.pending

    def _iter_requests(self) -> Iterator[Request]:
        for queue in self._groups.values():
            yield from queue

    def offer(self, request: Request) -> list[Request]:
        """Enqueue ``request``; returns the requests shed to make room.

        The caller resolves shed responses (the batcher never touches a
        clock, so it cannot compute latencies).
        """
        shed: list[Request] = []
        while self.pending >= self.max_pending:
            oldest = min(self._iter_requests(), key=lambda r: r.seq)
            self._remove(oldest)
            shed.append(oldest)
        self._groups.setdefault(request.group, []).append(request)
        self.pending += 1
        return shed

    def _remove(self, request: Request) -> None:
        queue = self._groups[request.group]
        queue.remove(request)
        if not queue:
            del self._groups[request.group]
        self.pending -= 1

    # ------------------------------------------------------------- flushing

    def _due_time(self, queue: list[Request]) -> float:
        """The instant this group must flush: coalescing window or the
        earliest request deadline, whichever comes first."""
        due = queue[0].enqueued + self.max_wait
        for request in queue:
            if request.deadline is not None and request.deadline < due:
                due = request.deadline
        return due

    def next_due(self, now: float) -> float | None:
        """Earliest future flush instant, or ``None`` when queue is empty.

        Returns ``now`` (not the past instant) for already-due groups so
        callers can ``advance_to`` it directly.
        """
        times = [self._due_time(q) for q in self._groups.values()]
        return max(min(times), now) if times else None

    def take_due(
        self,
        now: float,
        limit_for: Callable[[GroupKey], int],
        force: bool = False,
    ) -> list[Batch]:
        """Pop at most one batch per due group.

        A group is due when it can fill a batch (``limit_for`` rows), its
        flush instant has arrived, or ``force`` is set (final drain).
        Requests join a batch FIFO until the next one would overflow the
        limit; an oversized single request becomes its own batch (the
        engine chunks internally).
        """
        batches: list[Batch] = []
        for group in list(self._groups):
            queue = self._groups[group]
            limit = max(1, int(limit_for(group)))
            rows = sum(r.rows for r in queue)
            if not (force or rows >= limit or now >= self._due_time(queue)):
                continue
            taken: list[Request] = []
            taken_rows = 0
            while queue and (not taken or taken_rows + queue[0].rows <= limit):
                request = queue.pop(0)
                taken.append(request)
                taken_rows += request.rows
            if not queue:
                del self._groups[group]
            self.pending -= len(taken)
            batches.append(Batch(group=group, requests=taken))
        return batches
