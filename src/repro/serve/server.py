"""The serving loop: queue → dynamic batches → warm engines → responses.

:class:`PruneServer` joins the pieces: requests enter a bounded
:class:`~repro.serve.batcher.DynamicBatcher`, flush as coalesced batches
into the registry's warm fixed-pad engines, and resolve into
:class:`~repro.serve.batcher.PendingResponse` handles.  Engine faults are
retried with the resilience layer's seeded backoff and, past the budget,
contained to the failing batch — the queue keeps draining.

Two drive modes share every line of policy code:

- **simulated** (default): a :class:`~repro.serve.clock.VirtualClock`
  plus :meth:`pump`/:meth:`run_until_idle` — single-threaded, no wall
  sleeps, deterministic; what the test suite and the load harness use.
- **threaded**: :meth:`start` spawns one executor thread driven by a
  wall clock; ``submit`` is thread-safe and responses are awaited with
  ``wait()``.  One executor by design: compiled plans reuse scratch
  buffers, so batch execution per engine must be serialized anyway.

The ``safety`` endpoint answers the paper's Section 7 question at
request time: a prediction plus the registered model's cached Def.-1
prune-potential context and the guideline recommendation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import observe
from repro.resilience.chaos import on_worker_cell
from repro.resilience.retry import RetryPolicy, is_retryable
from repro.serve.batcher import Batch, DynamicBatcher, GroupKey, PendingResponse, Request
from repro.serve.clock import Clock, VirtualClock
from repro.serve.registry import ModelKey, ModelZooRegistry, as_model_key
from repro.serve.safety import SafetyContext


@dataclass(frozen=True)
class ServeConfig:
    """Serving policy knobs.

    ``default_deadline`` is relative (seconds from submission); ``None``
    disables deadlines.  ``service_time`` maps one executed batch —
    ``(group, rows, measured_wall_seconds)`` — to the seconds charged to
    a *virtual* clock; ``None`` charges the measured wall time, and tests
    inject a constant model for bit-identical schedules.
    """

    max_wait: float = 0.005
    max_pending: int = 1024
    default_deadline: float | None = 0.25
    max_retries: int = 1
    retry_base_delay: float = 0.002
    service_time: Callable[[GroupKey, int, float], float] | None = None


@dataclass
class SafetyAnswer:
    """``safety`` endpoint payload: prediction + deployment evidence."""

    prediction: np.ndarray
    logits: np.ndarray
    context: SafetyContext | None

    def to_dict(self) -> dict:
        out: dict = {"prediction": self.prediction.tolist()}
        if self.context is not None:
            out["safety"] = self.context.to_dict()
        return out


class PruneServer:
    """Multi-model inference server over a :class:`ModelZooRegistry`."""

    def __init__(
        self,
        registry: ModelZooRegistry,
        config: ServeConfig | None = None,
        clock: Clock | None = None,
    ):
        self.registry = registry
        self.config = config or ServeConfig()
        self.clock = clock if clock is not None else VirtualClock()
        self._batcher = DynamicBatcher(
            max_wait=self.config.max_wait,
            max_pending=self.config.max_pending,
        )
        self._policy = RetryPolicy(
            max_retries=self.config.max_retries,
            base_delay=self.config.retry_base_delay,
            max_delay=1.0,
        )
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._metrics = {
            "requests": 0, "ok": 0, "shed": 0, "deadline": 0,
            "error": 0, "batches": 0, "retries": 0,
        }
        self._occupancies: list[int] = []

    # -------------------------------------------------------------- ingress

    @property
    def pending(self) -> int:
        """Requests queued but not yet resolved."""
        with self._lock:
            return self._batcher.pending

    def metrics(self) -> dict:
        """Counter snapshot plus batch-occupancy observations."""
        with self._lock:
            out = dict(self._metrics)
            out["occupancies"] = list(self._occupancies)
            return out

    def next_due(self) -> float | None:
        """Next instant a queued group must flush (``None``: queue empty)."""
        with self._lock:
            return self._batcher.next_due(self.clock.now())

    def submit(
        self,
        key: ModelKey | str,
        images: np.ndarray,
        deadline: float | None = None,
    ) -> PendingResponse:
        """Enqueue one request; returns its response handle immediately.

        ``images`` must be batch-shaped ``(rows, *row_shape)``; ``deadline``
        is relative seconds (defaults to the config's), measured on the
        server clock from submission.
        """
        key_str = str(as_model_key(key))
        self.registry.get(key_str)  # fail fast: don't queue doomed requests
        arr = np.asarray(images)
        if arr.ndim < 2 or arr.size == 0:
            raise ValueError(
                f"images must be a non-empty batch (rows, *row_shape); "
                f"got shape {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        relative = self.config.default_deadline if deadline is None else deadline
        with self._lock:
            now = self.clock.now()
            request = Request(
                model=key_str,
                images=arr,
                enqueued=now,
                deadline=None if relative is None else now + relative,
            )
            self._metrics["requests"] += 1
            observe.incr("serve.requests", model=key_str)
            for victim in self._batcher.offer(request):
                self._resolve(victim, "shed", now)
            self._cond.notify_all()
        return request.response

    def _resolve(self, request: Request, status: str, now: float, **fields) -> None:
        self._metrics[status] += 1
        if status != "ok":
            observe.incr(f"serve.{status}", model=request.model)
        request.response._resolve(
            status, latency=now - request.enqueued, **fields
        )

    # ------------------------------------------------------------ execution

    def _limit_for(self, group: GroupKey) -> int:
        try:
            return self.registry.engine(group.model).batch_size
        except KeyError:
            return self.registry.batch_size

    def _take_due(self, now: float, force: bool = False) -> list[Batch]:
        return self._batcher.take_due(now, self._limit_for, force=force)

    def _execute(self, batch: Batch) -> None:
        now = self.clock.now()
        live: list[Request] = []
        with self._lock:
            for request in batch.requests:
                if request.deadline is not None and now > request.deadline:
                    self._resolve(request, "deadline", now)
                else:
                    live.append(request)
        if not live:
            return
        rows = sum(r.rows for r in live)
        with observe.span(
            "serve.batch", model=batch.group.model, rows=rows, requests=len(live)
        ) as span:
            try:
                engine = self.registry.engine(batch.group.model)
                arr = (
                    live[0].images
                    if len(live) == 1
                    else np.concatenate([r.images for r in live], axis=0)
                )
                logits, elapsed = self._run_with_retries(batch.group, engine, arr)
            except Exception as exc:  # contained: only this batch fails
                now = self.clock.now()
                with self._lock:
                    for request in live:
                        self._resolve(request, "error", now, error=exc)
                observe.event(
                    "serve.batch_error", model=batch.group.model, reason=repr(exc)
                )
                span.set(error=type(exc).__name__)
                return
            if self.clock.virtual:
                charge = (
                    self.config.service_time(batch.group, rows, elapsed)
                    if self.config.service_time is not None
                    else elapsed
                )
                self.clock.sleep(charge)
            done = self.clock.now()
            with self._lock:
                self._metrics["batches"] += 1
                self._occupancies.append(rows)
                offset = 0
                for request in live:
                    self._resolve(
                        request, "ok", done,
                        value=logits[offset : offset + request.rows],
                        batch_rows=rows,
                    )
                    offset += request.rows
                    observe.hist(
                        "serve.latency_s", request.response.latency,
                        model=request.model,
                    )
        observe.incr("serve.batches", model=batch.group.model)
        observe.hist("serve.batch_occupancy", rows, model=batch.group.model)

    def _run_with_retries(
        self, group: GroupKey, engine, arr: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """One batch through the engine under the retry policy.

        The chaos hook sits where a real backend fault would surface (in
        front of the engine call), so fault drills can deterministically
        fail a specific model's batches.  Backoff sleeps go through the
        server clock: free under a virtual clock, real in production.
        """
        chaos_key = f"serve/{group.model}"
        attempt = 0
        while True:
            try:
                on_worker_cell(chaos_key, attempt)
                t0 = time.perf_counter()
                logits = engine.logits(arr)
                return logits, time.perf_counter() - t0
            except Exception as exc:
                if attempt >= self._policy.max_retries or not is_retryable(exc):
                    raise
                attempt += 1
                with self._lock:
                    self._metrics["retries"] += 1
                observe.incr("serve.retries", model=group.model)
                self.clock.sleep(self._policy.backoff(attempt, chaos_key))

    # -------------------------------------------------------- simulated mode

    def pump(self, force: bool = False) -> int:
        """Dispatch every currently-due batch; returns batches executed."""
        executed = 0
        while True:
            with self._lock:
                batches = self._take_due(self.clock.now(), force=force)
            if not batches:
                return executed
            for batch in batches:
                self._execute(batch)
                executed += 1

    def run_until_idle(self) -> int:
        """Advance the clock through every flush until the queue drains.

        The simulated-mode main loop: executes due batches, and when none
        are due fast-forwards the (virtual) clock to the next flush
        instant.  Returns total batches executed.
        """
        if self._thread is not None:
            raise RuntimeError("run_until_idle is for non-threaded serving")
        executed = 0
        with observe.span("serve.run"):
            while True:
                executed += self.pump()
                with self._lock:
                    if not self._batcher.pending:
                        return executed
                    next_due = self._batcher.next_due(self.clock.now())
                self.clock.advance_to(next_due)

    def flush(self) -> int:
        """Force-dispatch everything queued right now (final drain)."""
        return self.pump(force=True)

    # -------------------------------------------------------- threaded mode

    def start(self) -> "PruneServer":
        """Spawn the executor thread (requires a wall clock)."""
        if self.clock.virtual:
            raise ValueError(
                "threaded serving needs a wall clock (MonotonicClock); "
                "a VirtualClock never advances on its own"
            )
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._stopping = False
        self._thread = threading.Thread(
            target=self._worker_loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the executor; ``drain`` serves the backlog before exit."""
        thread = self._thread
        if thread is None:
            return
        with self._lock:
            self._stopping = True
            self._drain_on_stop = drain
            self._cond.notify_all()
        thread.join()
        self._thread = None

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                now = self.clock.now()
                force = self._stopping and getattr(self, "_drain_on_stop", True)
                batches = self._take_due(now, force=force)
                if not batches:
                    if self._stopping:
                        if not getattr(self, "_drain_on_stop", True):
                            for request in list(self._batcher._iter_requests()):
                                self._batcher._remove(request)
                                self._resolve(request, "shed", now)
                        return
                    next_due = self._batcher.next_due(now)
                    timeout = (
                        None if next_due is None else max(next_due - now, 0.0005)
                    )
                    self._cond.wait(timeout=timeout)
                    continue
            for batch in batches:
                self._execute(batch)

    def __enter__(self) -> "PruneServer":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._thread is not None:
            self.stop()

    # ------------------------------------------------------------ endpoints

    def predict_logits(
        self,
        key: ModelKey | str,
        images: np.ndarray,
        deadline: float | None = None,
        timeout: float | None = 30.0,
    ) -> np.ndarray:
        """Synchronous logits through the batching path."""
        response = self.submit(key, images, deadline=deadline)
        if self._thread is not None:
            if not response.wait(timeout):
                raise TimeoutError(f"no response within {timeout}s")
        else:
            self.run_until_idle()
        return response.result()

    def predict(
        self,
        key: ModelKey | str,
        images: np.ndarray,
        deadline: float | None = None,
        timeout: float | None = 30.0,
    ) -> np.ndarray:
        """Synchronous argmax predictions through the batching path."""
        logits = self.predict_logits(key, images, deadline=deadline, timeout=timeout)
        return np.argmax(logits, axis=1)

    def safety(
        self,
        key: ModelKey | str,
        images: np.ndarray,
        deadline: float | None = None,
        timeout: float | None = 30.0,
    ) -> SafetyAnswer:
        """Prediction plus the model's cached prune-potential evidence.

        The paper's deployment question as an endpoint: the answer says
        what the model predicts *and* how far this model may safely be
        pruned given every hold-out shift it was audited on (Def. 1),
        with the Section 7 guideline recommendation spelled out.
        """
        logits = self.predict_logits(key, images, deadline=deadline, timeout=timeout)
        return SafetyAnswer(
            prediction=np.argmax(logits, axis=1),
            logits=logits,
            context=self.registry.safety_context(key),
        )
