"""The model-zoo registry: warm engines + a plan LRU under a memory budget.

A serving process holds many variants of the paper's networks at once —
``(architecture, prune_method, ratio)`` triples — each behind a warm
:class:`~repro.infer.InferenceEngine`.  Compiled plans are the expensive
resident state (densified masked weights, folded BN constants), so the
registry tracks every plan that serves traffic in one recency list and
evicts least-recently-used plans whenever their total constant bytes
exceed the configured budget.  Evicted shapes recompile on next use;
staleness is *not* the LRU's problem — the engine's adler32 state
signature already re-densifies a plan whenever the model's weights
change (``load_state_dict``, in-place SGD drift).

Engines are built with ``pad="fixed"`` so every batch occupancy of one
row shape routes through the *same* compiled plan: that is what makes a
coalesced batch's per-row outputs bitwise equal to serving each request
alone, and it also caps resident plans at one per (model, row shape).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import observe
from repro.infer import InferenceEngine, adopt_engine
from repro.nn.module import Module
from repro.serve.safety import SafetyContext

DEFAULT_BATCH_SIZE = 64


@dataclass(frozen=True)
class ModelKey:
    """Identity of one servable model: architecture × prune method × ratio."""

    architecture: str
    prune_method: str | None = None
    ratio: float | None = None

    def __str__(self) -> str:
        if self.prune_method is None:
            return self.architecture
        tag = f"{self.architecture}/{self.prune_method}"
        return tag if self.ratio is None else f"{tag}@{self.ratio:g}"

    @classmethod
    def parse(cls, text: str) -> "ModelKey":
        """Inverse of ``str()``: ``"resnet20/wt@0.5"`` → a :class:`ModelKey`."""
        if "/" not in text:
            return cls(text)
        architecture, rest = text.split("/", 1)
        if "@" in rest:
            method, ratio = rest.split("@", 1)
            return cls(architecture, method, float(ratio))
        return cls(architecture, rest)


def as_model_key(key: "ModelKey | str") -> ModelKey:
    """Normalize a registry key (accepts a :class:`ModelKey` or its string)."""
    return key if isinstance(key, ModelKey) else ModelKey.parse(str(key))


@dataclass
class RegisteredModel:
    """One registry entry: the module, its warm engine, and safety evidence."""

    key: ModelKey
    model: Module
    engine: InferenceEngine
    safety: SafetyContext | None = None


class ModelZooRegistry:
    """Warm engines for every registered model, plans LRU-bounded by bytes.

    Parameters
    ----------
    memory_budget_bytes:
        Cap on the summed constant bytes of all resident compiled plans
        across every registered engine (``None``: unbounded).  When a plan
        touch pushes the total over budget, least-recently-used plans are
        evicted until it fits again — except the plan that just served,
        which is always retained even if it alone exceeds the budget
        (evicting it would recompile on every request forever).
    batch_size:
        Default engine batch size (and therefore the fixed pad width) for
        models registered without an explicit one.
    """

    def __init__(
        self,
        memory_budget_bytes: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError(
                f"memory_budget_bytes must be positive, got {memory_budget_bytes}"
            )
        self.memory_budget_bytes = memory_budget_bytes
        self.batch_size = int(batch_size)
        self._models: dict[str, RegisteredModel] = {}
        # (key_str, plan_key) -> constant bytes; order = recency (LRU first).
        self._lru: OrderedDict[tuple[str, tuple], int] = OrderedDict()
        self._by_engine: dict[int, str] = {}  # id(engine) -> key_str
        self._lock = threading.RLock()
        self.evictions = 0

    # ------------------------------------------------------------- entries

    def register(
        self,
        key: ModelKey | str,
        model: Module,
        safety: SafetyContext | None = None,
        batch_size: int | None = None,
    ) -> RegisteredModel:
        """Add ``model`` under ``key`` with a warm fixed-pad engine.

        Re-registering a key replaces its entry (and forgets the old
        engine's plans in the LRU).  The engine is adopted as the model's
        shared :func:`repro.infer.engine_for` engine, so out-of-band
        consumers (parity checks, analysis code) use identical plans.
        """
        key = as_model_key(key)
        key_str = str(key)
        engine = InferenceEngine(
            model,
            batch_size=batch_size or self.batch_size,
            pad="fixed",
        )
        adopt_engine(engine)
        engine.plan_used_hook = self._on_plan_used
        entry = RegisteredModel(key=key, model=model, engine=engine, safety=safety)
        with self._lock:
            if key_str in self._models:
                self._forget(key_str)
            self._models[key_str] = entry
            self._by_engine[id(engine)] = key_str
        observe.event("serve.register", model=key_str)
        return entry

    def unregister(self, key: ModelKey | str) -> None:
        """Drop ``key`` and its plans (no-op if absent)."""
        key_str = str(as_model_key(key))
        with self._lock:
            entry = self._models.pop(key_str, None)
            if entry is not None:
                self._forget(key_str)
                self._by_engine.pop(id(entry.engine), None)

    def _forget(self, key_str: str) -> None:
        for lru_key in [k for k in self._lru if k[0] == key_str]:
            del self._lru[lru_key]

    def keys(self) -> list[str]:
        """String keys of every registered model, sorted."""
        with self._lock:
            return sorted(self._models)

    def get(self, key: ModelKey | str) -> RegisteredModel:
        """The full entry for ``key`` (raises ``KeyError`` with choices)."""
        key_str = str(as_model_key(key))
        with self._lock:
            try:
                return self._models[key_str]
            except KeyError:
                raise KeyError(
                    f"unknown model {key_str!r}; registered: {sorted(self._models)}"
                ) from None

    def engine(self, key: ModelKey | str) -> InferenceEngine:
        """The warm engine serving ``key``."""
        return self.get(key).engine

    def model(self, key: ModelKey | str) -> Module:
        """The module registered under ``key``."""
        return self.get(key).model

    def safety_context(self, key: ModelKey | str) -> SafetyContext | None:
        """Cached Def.-1 safety evidence for ``key`` (``None`` if unset)."""
        return self.get(key).safety

    # ----------------------------------------------------------------- LRU

    def _on_plan_used(self, engine: InferenceEngine, plan_key: tuple, plan) -> None:
        """Engine hook: refresh recency and enforce the byte budget."""
        with self._lock:
            key_str = self._by_engine.get(id(engine))
            if key_str is None:  # engine was unregistered mid-flight
                return
            lru_key = (key_str, plan_key)
            known = lru_key in self._lru
            self._lru[lru_key] = plan.nbytes if not known else self._lru[lru_key]
            self._lru.move_to_end(lru_key)
            if not known:
                observe.incr("serve.plan_compiles")
            self._evict_over_budget(keep=lru_key)

    def _evict_over_budget(self, keep: tuple[str, tuple]) -> None:
        if self.memory_budget_bytes is None:
            return
        while (
            sum(self._lru.values()) > self.memory_budget_bytes
            and len(self._lru) > 1
        ):
            victim, nbytes = next(iter(self._lru.items()))
            if victim == keep:
                break
            del self._lru[victim]
            key_str, plan_key = victim
            entry = self._models.get(key_str)
            if entry is not None:
                entry.engine.evict_plan(plan_key)
            self.evictions += 1
            observe.incr("serve.plan_evictions")
            observe.event(
                "serve.evict", model=key_str,
                shape=list(plan_key[0]), bytes=nbytes,
            )

    def plan_memory_bytes(self) -> int:
        """Summed constant bytes of every resident tracked plan."""
        with self._lock:
            return sum(self._lru.values())

    def resident_plans(self) -> list[tuple[str, tuple]]:
        """Tracked ``(model key, plan key)`` pairs, least recent first."""
        with self._lock:
            return list(self._lru)

    # ---------------------------------------------------------------- warm

    def warm(
        self,
        key: ModelKey | str,
        row_shapes: list[tuple[int, ...]],
        dtype=np.float32,
    ) -> None:
        """Pre-compile plans for ``row_shapes`` so first requests hit warm.

        With fixed padding a one-row probe compiles the full-width plan
        that will serve every occupancy of that shape.
        """
        engine = self.engine(key)
        for shape in row_shapes:
            probe = np.zeros((1,) + tuple(shape), dtype=dtype)
            engine.logits(probe)

    def stats(self) -> dict:
        """Registry occupancy snapshot for rollups and benchmarks."""
        with self._lock:
            return {
                "models": len(self._models),
                "resident_plans": len(self._lru),
                "plan_memory_bytes": sum(self._lru.values()),
                "memory_budget_bytes": self.memory_budget_bytes,
                "evictions": self.evictions,
            }
