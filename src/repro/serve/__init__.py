"""Prune-potential-as-a-service: multi-model serving over ``repro.infer``.

The compiled-plan engine (PR 5) is a per-call library; this package turns
it into a long-running serving subsystem, built simulation-first so every
latency, batching, and shedding behaviour is deterministically testable:

- :class:`ModelZooRegistry` — warm fixed-pad engines keyed by
  ``(architecture, prune_method, ratio)``, with a cross-model compiled-
  plan LRU under an explicit memory budget;
- :class:`DynamicBatcher` — bounded request queue that coalesces
  same-model/same-shape traffic, flushes on window or deadline, and
  sheds oldest under backpressure;
- :class:`PruneServer` — the serving loop (simulated on a
  :class:`VirtualClock`, or threaded on a wall clock) with retry/
  containment on engine faults and a ``safety`` endpoint attaching the
  paper's Def.-1 prune-potential context to predictions;
- :func:`run_load` / :func:`run_serve_bench` — the seeded heavy-tail
  load harness behind ``python -m repro serve-bench`` and
  ``BENCH_serve.json``.
"""

from repro.serve.batcher import (
    TERMINAL,
    Batch,
    DynamicBatcher,
    GroupKey,
    PendingResponse,
    Request,
)
from repro.serve.clock import Clock, MonotonicClock, VirtualClock, WallClock
from repro.serve.loadgen import (
    Arrival,
    LoadProfile,
    LoadReport,
    TrafficMix,
    audit_parity,
    build_bench_registry,
    generate_arrivals,
    run_load,
    run_serve_bench,
)
from repro.serve.registry import (
    ModelKey,
    ModelZooRegistry,
    RegisteredModel,
    as_model_key,
)
from repro.serve.safety import (
    SafetyContext,
    safety_from_arrays,
    safety_from_curves,
)
from repro.serve.server import (
    PruneServer,
    SafetyAnswer,
    ServeConfig,
)

__all__ = [
    "Arrival",
    "Batch",
    "Clock",
    "DynamicBatcher",
    "GroupKey",
    "LoadProfile",
    "LoadReport",
    "ModelKey",
    "ModelZooRegistry",
    "MonotonicClock",
    "PendingResponse",
    "PruneServer",
    "RegisteredModel",
    "Request",
    "SafetyAnswer",
    "SafetyContext",
    "ServeConfig",
    "TERMINAL",
    "TrafficMix",
    "VirtualClock",
    "WallClock",
    "as_model_key",
    "audit_parity",
    "build_bench_registry",
    "generate_arrivals",
    "run_load",
    "run_serve_bench",
    "safety_from_arrays",
    "safety_from_curves",
]
