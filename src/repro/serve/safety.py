"""Per-model safety context for the ``safety`` endpoint (paper Def. 1).

The paper's Section 7 deployment guidelines say a pruned model must not
ship on its nominal (test-set) prune potential alone: potential has to be
re-evaluated on every anticipated deployment shift, and the *worst* of
those numbers governs how far to prune.  :class:`SafetyContext` is that
evaluation, cached at registration time so the serving layer can attach
it to any prediction without re-running curve sweeps per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.prune_potential import (
    DEFAULT_DELTA,
    PruneAccuracyCurve,
    prune_potential_from_curve,
)

#: ``worst >= RETENTION * nominal`` is the paper's "all anticipated shifts
#: retain the nominal potential" bar for pruning to the full extent.
RETENTION = 0.9


@dataclass(frozen=True)
class SafetyContext:
    """Cached Def.-1 prune-potential evidence for one registered model.

    ``potentials`` maps each evaluated distribution (nominal test set,
    hold-out shifts, corruptions) to its prune potential at ``delta``;
    ``parent_errors`` carries the unpruned parent's error per distribution
    when known; ``functional`` carries noise-similarity metrics (match
    rate / softmax L2) against the parent when known.
    """

    delta: float
    potentials: Mapping[str, float]
    parent_errors: Mapping[str, float] = field(default_factory=dict)
    functional: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if not self.potentials:
            raise ValueError("SafetyContext requires at least one distribution")
        if "nominal" not in self.potentials:
            raise ValueError("SafetyContext requires a 'nominal' distribution")

    @property
    def nominal(self) -> float:
        return float(self.potentials["nominal"])

    @property
    def worst(self) -> float:
        return float(min(self.potentials.values()))

    @property
    def worst_distribution(self) -> str:
        return min(self.potentials, key=lambda k: self.potentials[k])

    @property
    def guideline(self) -> int:
        """Which of the paper's Section 1 guidelines applies.

        3 — every anticipated shift retains the nominal potential: prune
        to the full extent; 2 — partial retention: prune only to the
        worst-case potential; 1 — some shift tolerates no pruning at all:
        don't prune (or robust-(re)train on that shift first).
        """
        if self.worst >= RETENTION * self.nominal and self.nominal > 0:
            return 3
        if self.worst > 0:
            return 2
        return 1

    @property
    def safe_ratio(self) -> float:
        """The deployment prune ratio the guidelines license."""
        return self.nominal if self.guideline == 3 else self.worst

    def recommendation(self) -> str:
        """One-line deployment recommendation, mirroring the guidelines."""
        if self.guideline == 3:
            return (
                f"prune to the full nominal extent ({100 * self.nominal:.0f}%): "
                "all anticipated shifts retain the nominal potential"
            )
        if self.guideline == 2:
            return (
                f"prune moderately: deploy at the worst-case potential "
                f"({100 * self.worst:.0f}%, under {self.worst_distribution}), "
                f"not the nominal ({100 * self.nominal:.0f}%)"
            )
        return (
            f"do not prune: {self.worst_distribution} tolerates no pruning; "
            "add it to (re-)training first"
        )

    def to_dict(self) -> dict:
        out: dict = {
            "delta": self.delta,
            "potentials": dict(self.potentials),
            "nominal_potential": self.nominal,
            "worst_potential": self.worst,
            "worst_distribution": self.worst_distribution,
            "guideline": self.guideline,
            "safe_ratio": self.safe_ratio,
            "recommendation": self.recommendation(),
        }
        if self.parent_errors:
            out["parent_errors"] = dict(self.parent_errors)
        if self.functional:
            out["functional"] = dict(self.functional)
        return out


def safety_from_curves(
    curves: Mapping[str, PruneAccuracyCurve],
    delta: float = DEFAULT_DELTA,
    functional: Mapping[str, float] | None = None,
) -> SafetyContext:
    """Build a :class:`SafetyContext` from per-distribution prune curves.

    ``curves`` maps distribution names to :class:`PruneAccuracyCurve`
    (as produced by ``repro.analysis.evaluate_curve``); one of them must
    be named ``"nominal"``.
    """
    potentials = {name: c.potential(delta) for name, c in curves.items()}
    parent_errors = {name: float(c.parent_error) for name, c in curves.items()}
    return SafetyContext(
        delta=delta,
        potentials=potentials,
        parent_errors=parent_errors,
        functional=dict(functional or {}),
    )


def safety_from_arrays(
    ratios,
    errors_by_distribution: Mapping[str, object],
    parent_errors: Mapping[str, float],
    delta: float = DEFAULT_DELTA,
    functional: Mapping[str, float] | None = None,
) -> SafetyContext:
    """Build a :class:`SafetyContext` straight from curve arrays.

    Convenience for callers that already hold ``(ratios, errors)`` series
    per distribution (benchmark scenarios, cached study outputs) without
    re-wrapping them in :class:`PruneAccuracyCurve` objects.
    """
    potentials = {
        name: prune_potential_from_curve(
            ratios, errors, parent_errors[name], delta
        )
        for name, errors in errors_by_distribution.items()
    }
    return SafetyContext(
        delta=delta,
        potentials=potentials,
        parent_errors={k: float(v) for k, v in parent_errors.items()},
        functional=dict(functional or {}),
    )
