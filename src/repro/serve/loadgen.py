"""Closed-loop load harness: seeded heavy-tail traffic against a server.

Arrivals are lognormal (heavy-tailed — bursts and lulls, like real
request streams), traffic mixes several models and input shapes, and the
whole run executes on the server's clock: under a
:class:`~repro.serve.clock.VirtualClock` the harness fast-forwards
between events, so a run simulating minutes of traffic finishes in
however long the engine calls themselves take, and with an injected
service-time model it is bit-for-bit reproducible.

:func:`run_load` drives one profile and returns a :class:`LoadReport`
(p50/p99 latency, throughput, shed/deadline-miss rates, batch-occupancy
histogram, zero-lost accounting).  :func:`run_serve_bench` is the
``python -m repro serve-bench`` scenario: a three-model, two-shape zoo
with synthetic Def.-1 safety contexts, ending in a bitwise parity audit
of served responses against direct ``engine_for`` calls and a
``BENCH_serve.json`` report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import observe
from repro.serve.batcher import TERMINAL, PendingResponse
from repro.serve.clock import VirtualClock
from repro.serve.registry import ModelKey, ModelZooRegistry
from repro.serve.safety import safety_from_arrays
from repro.serve.server import PruneServer, ServeConfig


@dataclass(frozen=True)
class TrafficMix:
    """One traffic class: a model key, a row shape, and a sampling weight."""

    key: str
    row_shape: tuple[int, ...]
    weight: float = 1.0


@dataclass
class LoadProfile:
    """A seeded traffic scenario.

    ``mean_interarrival``/``sigma`` parameterize the lognormal arrival
    process (the mean is the *actual* mean gap; ``sigma`` controls tail
    heaviness).  Each request carries 1–``max_rows`` rows drawn uniformly.
    """

    mixes: list[TrafficMix]
    n_requests: int = 500
    mean_interarrival: float = 0.002
    sigma: float = 1.2
    max_rows: int = 4
    deadline: float | None = None  # None: the server's default
    seed: int = 0

    def __post_init__(self):
        if not self.mixes:
            raise ValueError("LoadProfile needs at least one TrafficMix")
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, what model/shape, how many rows."""

    t: float
    mix: TrafficMix
    rows: int


def generate_arrivals(profile: LoadProfile) -> list[Arrival]:
    """The deterministic arrival schedule for ``profile``.

    Lognormal inter-arrival gaps with ``mu = ln(mean) - sigma²/2`` so the
    configured mean is the distribution's true mean; mixes are drawn by
    weight, request sizes uniformly in ``[1, max_rows]``.
    """
    rng = np.random.default_rng(profile.seed)
    mu = float(np.log(profile.mean_interarrival) - profile.sigma**2 / 2.0)
    gaps = rng.lognormal(mean=mu, sigma=profile.sigma, size=profile.n_requests)
    times = np.cumsum(gaps)
    weights = np.array([m.weight for m in profile.mixes], dtype=float)
    weights /= weights.sum()
    picks = rng.choice(len(profile.mixes), size=profile.n_requests, p=weights)
    rows = rng.integers(1, profile.max_rows + 1, size=profile.n_requests)
    return [
        Arrival(t=float(times[i]), mix=profile.mixes[picks[i]], rows=int(rows[i]))
        for i in range(profile.n_requests)
    ]


@dataclass
class LoadReport:
    """Outcome of one load run; ``lost`` must always be zero."""

    n_requests: int
    ok: int
    shed: int
    deadline_miss: int
    errors: int
    lost: int
    duration_s: float
    latency_p50_s: float
    latency_p99_s: float
    latency_mean_s: float
    throughput_rps: float
    occupancy_mean: float
    occupancy_max: int
    occupancy_hist: dict[int, int]
    retries: int
    batches: int
    per_model: dict[str, int] = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.n_requests

    @property
    def deadline_miss_rate(self) -> float:
        return self.deadline_miss / self.n_requests

    def to_dict(self) -> dict:
        out = {
            "n_requests": self.n_requests,
            "ok": self.ok,
            "shed": self.shed,
            "deadline_miss": self.deadline_miss,
            "errors": self.errors,
            "lost": self.lost,
            "duration_s": round(self.duration_s, 6),
            "latency_p50_ms": round(1e3 * self.latency_p50_s, 4),
            "latency_p99_ms": round(1e3 * self.latency_p99_s, 4),
            "latency_mean_ms": round(1e3 * self.latency_mean_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "shed_rate": round(self.shed_rate, 4),
            "deadline_miss_rate": round(self.deadline_miss_rate, 4),
            "batch_occupancy": {
                "mean": round(self.occupancy_mean, 3),
                "max": self.occupancy_max,
                "hist": {str(k): v for k, v in sorted(self.occupancy_hist.items())},
            },
            "retries": self.retries,
            "batches": self.batches,
            "per_model": dict(sorted(self.per_model.items())),
        }
        return out


def run_load(
    server: PruneServer,
    profile: LoadProfile,
    keep_responses: bool = False,
) -> "LoadReport | tuple[LoadReport, list]":
    """Drive ``profile`` through ``server`` (simulated mode) to completion.

    Interleaves scheduled arrivals with due batch flushes on the server's
    clock, then drains.  With ``keep_responses`` the per-request
    ``(Arrival, images, PendingResponse)`` triples come back too, for
    parity audits against direct engine calls.
    """
    if server._thread is not None:
        raise RuntimeError("run_load drives the server itself; don't start() it")
    rng = np.random.default_rng(profile.seed + 1)
    arrivals = generate_arrivals(profile)
    records: list[tuple[Arrival, np.ndarray, PendingResponse]] = []
    start = server.clock.now()
    with observe.span("serve.load", requests=profile.n_requests):
        for arrival in arrivals:
            while True:
                due = server.next_due()
                if due is None or due > start + arrival.t:
                    break
                server.clock.advance_to(due)
                server.pump()
            server.clock.advance_to(start + arrival.t)
            images = rng.standard_normal(
                (arrival.rows,) + tuple(arrival.mix.row_shape)
            ).astype(np.float32)
            response = server.submit(
                arrival.mix.key, images, deadline=profile.deadline
            )
            records.append((arrival, images, response))
            server.pump()  # full batches flush immediately
        server.run_until_idle()
    report = _summarize(server, profile, records, start)
    return (report, records) if keep_responses else report


def _summarize(
    server: PruneServer,
    profile: LoadProfile,
    records: list,
    start: float,
) -> LoadReport:
    statuses = [resp.status for _, _, resp in records]
    lost = sum(1 for s in statuses if s not in TERMINAL)
    latencies = np.array(
        [resp.latency for _, _, resp in records if resp.status == "ok"]
    )
    metrics = server.metrics()
    occupancies = metrics["occupancies"]
    hist: dict[int, int] = {}
    for rows in occupancies:
        hist[rows] = hist.get(rows, 0) + 1
    per_model: dict[str, int] = {}
    for arrival, _, _ in records:
        per_model[arrival.mix.key] = per_model.get(arrival.mix.key, 0) + 1
    duration = max(server.clock.now() - start, 1e-12)
    n_ok = int((np.array(statuses) == "ok").sum())
    report = LoadReport(
        n_requests=len(records),
        ok=n_ok,
        shed=statuses.count("shed"),
        deadline_miss=statuses.count("deadline"),
        errors=statuses.count("error"),
        lost=lost,
        duration_s=duration,
        latency_p50_s=float(np.percentile(latencies, 50)) if n_ok else float("nan"),
        latency_p99_s=float(np.percentile(latencies, 99)) if n_ok else float("nan"),
        latency_mean_s=float(latencies.mean()) if n_ok else float("nan"),
        throughput_rps=n_ok / duration,
        occupancy_mean=float(np.mean(occupancies)) if occupancies else 0.0,
        occupancy_max=int(max(occupancies)) if occupancies else 0,
        occupancy_hist=hist,
        retries=metrics["retries"],
        batches=metrics["batches"],
        per_model=per_model,
    )
    observe.event("serve.load_report", **report.to_dict())
    return report


# ----------------------------------------------------------------- benchmark

BENCH_MODELS = ("resnet20", "resnet56", "densenet22")
BENCH_SHAPES = ((3, 8, 8), (3, 16, 16))
BENCH_BATCH_SIZE = 32


BENCH_PRUNE_RATIO = 0.5


def _bench_methods() -> list[str]:
    """Every data-free registered method (the bench has no training data)."""
    from repro.pruning import available_methods, method_spec

    return [
        name
        for name in available_methods()
        if not method_spec(name).data_informed
    ]


def _synthetic_safety(name: str, seed: int):
    """A seeded Def.-1 context: nominal + three hold-out shift curves."""
    rng = np.random.default_rng(seed)
    ratios = np.linspace(0.1, 0.9, 9)
    parent = {"nominal": 0.08, "gaussian_noise": 0.12, "fog": 0.15, "jpeg": 0.10}
    errors = {}
    for i, dist in enumerate(parent):
        # Error stays flat then ramps past a per-distribution knee; shifts
        # break earlier than the nominal set, as in the paper's Fig. 6.
        knee = max(0.2, 0.85 - 0.2 * i - 0.1 * rng.random())
        ramp = np.clip(ratios - knee, 0.0, None) * (0.5 + 0.5 * rng.random())
        errors[dist] = parent[dist] + ramp
    return safety_from_arrays(ratios, errors, parent, delta=0.005)


def build_bench_registry(
    seed: int = 0,
    budget_mb: float | None = 48.0,
    models: tuple[str, ...] = BENCH_MODELS,
) -> ModelZooRegistry:
    """The serve-bench zoo: pruned registry models + synthetic safety.

    Each model is pruned to :data:`BENCH_PRUNE_RATIO` by a real registry
    method — the bench cycles through every data-free family, so the
    serving layer is exercised over the same masks (unstructured,
    per-layer uniform, random, and structured low-rank) the experiments
    produce, not a bespoke median cut.
    """
    from repro.models.registry import build_model
    from repro.pruning import build_method

    registry = ModelZooRegistry(
        memory_budget_bytes=(
            None if budget_mb is None else int(budget_mb * 2**20)
        ),
        batch_size=BENCH_BATCH_SIZE,
    )
    methods = _bench_methods()
    for i, name in enumerate(models):
        method_name = methods[i % len(methods)]
        model = build_model(name, rng=np.random.default_rng(seed + i))
        build_method(method_name).prune(model, BENCH_PRUNE_RATIO)
        registry.register(
            ModelKey(name, method_name, BENCH_PRUNE_RATIO),
            model,
            safety=_synthetic_safety(name, seed + i),
        )
    return registry


def run_serve_bench(
    n_requests: int = 400,
    seed: int = 0,
    mean_interarrival: float = 0.002,
    budget_mb: float | None = 48.0,
    parity_samples: int = 32,
    out: str | Path | None = None,
) -> dict:
    """The ``serve-bench`` scenario: mixed traffic, SLO report, parity audit.

    Three pruned models × two input shapes under seeded lognormal
    arrivals on a virtual clock; measured engine time is charged to the
    clock, so latencies reflect real service cost while the schedule
    itself needs no wall-clock waiting.  A seeded sample of served
    responses is re-computed through direct ``engine_for`` calls and must
    match **bitwise**.  Returns the full report dict (also written to
    ``out`` as JSON when given).
    """
    registry = build_bench_registry(seed=seed, budget_mb=budget_mb)
    keys = registry.keys()
    server = PruneServer(
        registry,
        ServeConfig(max_wait=0.004, max_pending=512, default_deadline=0.5),
        VirtualClock(),
    )
    for key in keys:
        registry.warm(key, list(BENCH_SHAPES))
    profile = LoadProfile(
        mixes=[
            TrafficMix(key, shape) for key in keys for shape in BENCH_SHAPES
        ],
        n_requests=n_requests,
        mean_interarrival=mean_interarrival,
        seed=seed,
    )
    report, records = run_load(server, profile, keep_responses=True)
    parity = audit_parity(registry, records, n_samples=parity_samples, seed=seed)
    result = {
        "models": keys,
        "shapes": [list(s) for s in BENCH_SHAPES],
        "batch_size": BENCH_BATCH_SIZE,
        "arrivals": {
            "process": "lognormal",
            "mean_interarrival_s": mean_interarrival,
            "sigma": profile.sigma,
            "seed": seed,
        },
        "load": report.to_dict(),
        "registry": registry.stats(),
        "parity": parity,
        "safety": {
            key: registry.safety_context(key).to_dict() for key in keys
        },
    }
    if out is not None:
        Path(out).write_text(json.dumps(result, indent=2) + "\n")
    return result


def audit_parity(
    registry: ModelZooRegistry,
    records: list,
    n_samples: int = 32,
    seed: int = 0,
) -> dict:
    """Bitwise-compare a sample of served responses to direct engine calls.

    Uses the model's shared ``engine_for`` engine — the same one the
    server batched through — so any mismatch means coalescing or padding
    changed the arithmetic, which the fixed-pad design forbids.
    """
    from repro.infer import engine_for

    served = [(a, images, r) for a, images, r in records if r.status == "ok"]
    if not served:
        return {"sampled": 0, "bitwise_equal": True, "mismatches": 0}
    rng = np.random.default_rng(seed)
    picks = rng.choice(
        len(served), size=min(n_samples, len(served)), replace=False
    )
    mismatches = 0
    for i in picks:
        arrival, images, response = served[i]
        direct = engine_for(registry.model(arrival.mix.key)).logits(images)
        if not np.array_equal(direct, response.value):
            mismatches += 1
    return {
        "sampled": int(len(picks)),
        "bitwise_equal": mismatches == 0,
        "mismatches": mismatches,
    }
