"""Trace reports: span trees and metric rollups over one run ledger.

``python -m repro trace <run.jsonl>`` renders what a run actually did:
the nested span tree with wall times (sibling groups of many same-named
spans — grid cells — are collapsed into one aggregate line), counter
sums, last-wins gauges, and histogram summaries.  ``--json`` emits the
same structure as machine-readable JSON for dashboards and CI artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.observe.ledger import read_events

COLLAPSE_THRESHOLD = 12  # sibling spans of one name rendered individually


@dataclass
class SpanNode:
    """One recorded span with its resolved children."""

    name: str
    span_id: str
    parent_id: str | None
    start: float
    seconds: float
    pid: int
    attrs: dict = field(default_factory=dict)
    error: str | None = None
    children: list["SpanNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "pid": self.pid,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.error:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


@dataclass
class TraceReport:
    """Parsed view of one run ledger."""

    path: Path
    roots: list[SpanNode]
    counters: dict[str, float]
    gauges: dict[str, float]
    hists: dict[str, list[float]]
    event_counts: dict[str, int]
    n_records: int
    n_spans: int
    pids: list[int]

    # ----------------------------------------------------------- rollups
    def hist_summary(self, name: str) -> dict[str, float]:
        values = self.hists[name]
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "p50": _percentile(values, 50.0),
            "p99": _percentile(values, 99.0),
        }

    @property
    def cache_hit_rate(self) -> float | None:
        """Zoo cache hit rate from the recorded counters (``None`` if unused)."""
        hits = self.counters.get("zoo.cache_hit", 0)
        misses = self.counters.get("zoo.cache_miss", 0)
        total = hits + misses
        return None if total == 0 else hits / total

    @property
    def resilience(self) -> dict[str, float] | None:
        """Fault-tolerance rollup: retries, crashes, timeouts, dead cells,
        chaos injections, and degraded/resumed grids (``None`` when the run
        recorded none of them)."""
        rollup = {
            "retries": self.counters.get("resilience.retry", 0),
            "crashes": self.counters.get("resilience.crash", 0),
            "timeouts": self.counters.get("resilience.timeout", 0),
            "failed_cells": self.counters.get("resilience.failed", 0),
            "chaos_injected": self.counters.get("chaos.injected", 0),
            "degraded_grids": self.event_counts.get("degraded", 0),
            "resumes": self.event_counts.get("resume", 0),
        }
        return rollup if any(rollup.values()) else None

    @property
    def queue(self) -> dict[str, Any] | None:
        """Work-queue rollup: claims, reclaims, quarantines, renewals, and
        per-worker throughput (``None`` when the run used no queue).

        Per-worker counts come from the ``queue.worker_tasks.<worker>``
        counters each completion increments, so a multi-process (or
        multi-host, given a merged ledger) drain shows who did the work.
        """
        claims = self.counters.get("queue.claims", 0)
        enqueued = self.counters.get("queue.enqueued", 0)
        if not claims and not enqueued:
            return None
        prefix = "queue.worker_tasks."
        per_worker = {
            name[len(prefix):]: int(value)
            for name, value in sorted(self.counters.items())
            if name.startswith(prefix)
        }
        rollup: dict[str, Any] = {
            "enqueued": enqueued,
            "claims": claims,
            "completions": self.counters.get("queue.completions", 0),
            "renewals": self.counters.get("queue.renewals", 0),
            "reclaims": self.counters.get("queue.reclaims", 0),
            "quarantines": self.counters.get("queue.quarantines", 0),
            "failures": self.counters.get("queue.failures", 0),
            "duplicate_completions": self.counters.get(
                "queue.duplicate_completions", 0
            ),
            "worker_deaths": self.counters.get("queue.worker_deaths", 0),
            "resumed_tasks": self.counters.get("queue.resumed_tasks", 0),
            "workers": per_worker,
        }
        if "queue.task_seconds" in self.hists:
            rollup["task_seconds_mean"] = self.hist_summary(
                "queue.task_seconds"
            )["mean"]
        return rollup

    @property
    def serve(self) -> dict[str, float] | None:
        """Serving rollup: request outcomes, batching, plan-cache churn
        (``None`` when the run served no traffic)."""
        requests = self.counters.get("serve.requests", 0)
        if not requests:
            return None
        rollup: dict[str, float] = {
            "requests": requests,
            "batches": self.counters.get("serve.batches", 0),
            "shed": self.counters.get("serve.shed", 0),
            "deadline_miss": self.counters.get("serve.deadline", 0),
            "batch_errors": self.event_counts.get("serve.batch_error", 0),
            "retries": self.counters.get("serve.retries", 0),
            "plan_compiles": self.counters.get("serve.plan_compiles", 0),
            "plan_evictions": self.counters.get("serve.plan_evictions", 0),
        }
        if "serve.batch_occupancy" in self.hists:
            rollup["occupancy_mean"] = self.hist_summary(
                "serve.batch_occupancy"
            )["mean"]
        if "serve.latency_s" in self.hists:
            latency = self.hist_summary("serve.latency_s")
            rollup["latency_p50_s"] = latency["p50"]
            rollup["latency_p99_s"] = latency["p99"]
        return rollup

    # ------------------------------------------------------------ output
    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "ledger": str(self.path),
            "records": self.n_records,
            "spans": self.n_spans,
            "processes": len(self.pids),
            "tree": [r.to_dict() for r in self.roots],
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": {n: self.hist_summary(n) for n in self.hists},
            "events": self.event_counts,
        }
        if self.cache_hit_rate is not None:
            out["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        if self.resilience is not None:
            out["resilience"] = self.resilience
        if self.queue is not None:
            out["queue"] = self.queue
        if self.serve is not None:
            out["serve"] = self.serve
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=repr)

    def render(self) -> str:
        lines = [
            f"{self.path.name}: {self.n_records} records, {self.n_spans} spans "
            f"across {len(self.pids)} process(es)"
        ]
        for root in self.roots:
            _render_node(root, lines, depth=0)
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name} = {_fmt_num(self.counters[name])}")
            if self.cache_hit_rate is not None:
                lines.append(f"  zoo cache hit rate = {self.cache_hit_rate:.1%}")
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name} = {_fmt_num(self.gauges[name])}")
        if self.hists:
            lines.append("histograms:")
            for name in sorted(self.hists):
                s = self.hist_summary(name)
                lines.append(
                    f"  {name}: n={s['count']} mean={_fmt_num(s['mean'])} "
                    f"min={_fmt_num(s['min'])} max={_fmt_num(s['max'])}"
                )
        if self.resilience is not None:
            r = self.resilience
            lines.append(
                "resilience: "
                f"{_fmt_num(r['retries'])} retried, "
                f"{_fmt_num(r['crashes'])} crashed, "
                f"{_fmt_num(r['timeouts'])} timed out, "
                f"{_fmt_num(r['failed_cells'])} cells failed, "
                f"{_fmt_num(r['chaos_injected'])} chaos injections, "
                f"{_fmt_num(r['degraded_grids'])} degraded grid(s), "
                f"{_fmt_num(r['resumes'])} resume(s)"
            )
        if self.queue is not None:
            q = self.queue
            line = (
                "queue: "
                f"{_fmt_num(q['enqueued'])} enqueued, "
                f"{_fmt_num(q['claims'])} claims, "
                f"{_fmt_num(q['completions'])} completed, "
                f"{_fmt_num(q['renewals'])} heartbeat(s), "
                f"{_fmt_num(q['reclaims'])} reclaimed, "
                f"{_fmt_num(q['quarantines'])} quarantined, "
                f"{_fmt_num(q['duplicate_completions'])} duplicate(s), "
                f"{_fmt_num(q['worker_deaths'])} worker death(s)"
            )
            if q["workers"]:
                per = ", ".join(
                    f"{worker}={count}"
                    for worker, count in sorted(q["workers"].items())
                )
                line += f"; per-worker: {per}"
            lines.append(line)
        if self.serve is not None:
            s = self.serve
            line = (
                "serve: "
                f"{_fmt_num(s['requests'])} requests in "
                f"{_fmt_num(s['batches'])} batches, "
                f"{_fmt_num(s['shed'])} shed, "
                f"{_fmt_num(s['deadline_miss'])} deadline-missed, "
                f"{_fmt_num(s['batch_errors'])} batch error(s), "
                f"{_fmt_num(s['retries'])} retried, "
                f"{_fmt_num(s['plan_compiles'])} plan compile(s), "
                f"{_fmt_num(s['plan_evictions'])} eviction(s)"
            )
            if "latency_p50_s" in s:
                line += (
                    f"; latency p50 {1e3 * s['latency_p50_s']:.2f}ms "
                    f"p99 {1e3 * s['latency_p99_s']:.2f}ms"
                )
            lines.append(line)
        return "\n".join(lines)


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile over a copy (stdlib-only on purpose:
    the trace renderer must work on any ledger without numpy loaded)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = _fmt_num(value)
        parts.append(f"{key}={value}")
    return " [" + " ".join(parts) + "]"


def _render_node(node: SpanNode, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    error = f" ERROR:{node.error}" if node.error else ""
    lines.append(
        f"{pad}- {node.name} {node.seconds:.3f}s{_fmt_attrs(node.attrs)}{error}"
    )
    by_name: dict[str, list[SpanNode]] = {}
    for child in node.children:
        by_name.setdefault(child.name, []).append(child)
    for name, group in by_name.items():
        if len(group) > COLLAPSE_THRESHOLD:
            total = sum(c.seconds for c in group)
            slowest = max(group, key=lambda c: c.seconds)
            lines.append(
                f"{pad}  - {name} ×{len(group)} (total {total:.3f}s, "
                f"mean {total / len(group):.3f}s, "
                f"max {slowest.seconds:.3f}s{_fmt_attrs(slowest.attrs)})"
            )
        else:
            for child in group:
                _render_node(child, lines, depth + 1)


def build_report(path: str | Path, events: list[dict]) -> TraceReport:
    """Assemble the span forest and metric rollups from raw records."""
    nodes: dict[str, SpanNode] = {}
    spans: list[SpanNode] = []
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, list[float]] = {}
    event_counts: dict[str, int] = {}
    pids: set[int] = set()
    for record in events:
        pids.add(int(record.get("pid", 0)))
        kind = record.get("type")
        if kind == "span":
            node = SpanNode(
                name=str(record.get("name", "?")),
                span_id=str(record.get("id", "")),
                parent_id=record.get("parent"),
                start=float(record.get("start", record.get("ts", 0.0))),
                seconds=float(record.get("seconds", 0.0)),
                pid=int(record.get("pid", 0)),
                attrs=record.get("attrs") or {},
                error=record.get("error"),
            )
            nodes[node.span_id] = node
            spans.append(node)
        elif kind == "counter":
            name = str(record.get("name"))
            counters[name] = counters.get(name, 0) + float(record.get("value", 0))
        elif kind == "gauge":
            gauges[str(record.get("name"))] = float(record.get("value", 0))
        elif kind == "hist":
            hists.setdefault(str(record.get("name")), []).append(
                float(record.get("value", 0))
            )
        elif kind == "event":
            name = str(record.get("name"))
            event_counts[name] = event_counts.get(name, 0) + 1
    roots: list[SpanNode] = []
    for node in spans:
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in spans:
        node.children.sort(key=lambda c: c.start)
    roots.sort(key=lambda c: c.start)
    return TraceReport(
        path=Path(path),
        roots=roots,
        counters=counters,
        gauges=gauges,
        hists=hists,
        event_counts=event_counts,
        n_records=len(events),
        n_spans=len(spans),
        pids=sorted(pids),
    )


def load_report(path: str | Path) -> TraceReport:
    """Read ``path`` (a ``*.jsonl`` ledger, or a directory holding runs —
    the newest ``run-*.jsonl`` is picked) into a :class:`TraceReport`."""
    path = Path(path)
    if path.is_dir():
        runs = sorted(
            (p for p in path.glob("*.jsonl") if ".worker-" not in p.name),
            key=lambda p: p.stat().st_mtime,
        )
        if not runs:
            raise FileNotFoundError(f"no run ledgers (*.jsonl) under {path}")
        path = runs[-1]
    elif not path.exists():
        raise FileNotFoundError(f"no run ledger at {path}")
    return build_report(path, read_events(path))
