"""Observation state: configuration, spans, events, and metric emitters.

Everything funnels into :func:`_emit`, which appends one JSON line to the
process's ledger stream (see :mod:`repro.observe.ledger`).  The module is
deliberately free of top-level ``repro.*`` imports so any subsystem —
including :mod:`repro.parallel.pool`, which this package's ledger merge
relies on — can import it without cycles.

Process model
-------------
The process that calls :func:`configure` (or first emits under
``REPRO_OBSERVE=1``) owns the run ledger and writes to it directly.  The
configuration is exported through environment variables
(``REPRO_OBSERVE_LEDGER``), so worker processes — whether forked (inherit
this module's state) or spawned (re-read the environment) — detect that
their pid differs from the owner's and write to a sibling
``*.worker-<pid>.jsonl`` stream instead; the parent merges those on pool
join.  Span parentage crosses the fork: a cell span opened in a forked
worker records the parent process's enclosing span as its parent, so the
merged ledger renders as one tree.

Disabled fast path
------------------
With ``REPRO_OBSERVE`` unset every public function returns immediately
after one dict lookup, and :func:`span` returns the shared
:data:`NULL_SPAN` context manager without allocating anything, so
instrumented hot paths cost effectively nothing.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterator

ENV_VAR = "REPRO_OBSERVE"
DIR_ENV = "REPRO_OBSERVE_DIR"
LEDGER_ENV = "REPRO_OBSERVE_LEDGER"
DEFAULT_DIR = ".cache/repro/observe"

_FALSY = ("", "0", "false", "off", "no")


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


class _State:
    """Per-process observation state (ledger writer + open span stack)."""

    __slots__ = ("ledger_path", "pid", "writer", "stack", "next_id")

    def __init__(self, ledger_path: Path):
        from repro.observe.ledger import LedgerWriter, worker_stream_path

        self.ledger_path = Path(ledger_path)
        self.pid = os.getpid()
        owner = os.environ.get(LEDGER_ENV + "_OWNER", "")
        is_worker = owner.isdigit() and int(owner) != self.pid
        target = (
            worker_stream_path(self.ledger_path, self.pid)
            if is_worker
            else self.ledger_path
        )
        self.writer = LedgerWriter(target)
        self.stack: list[Span] = []
        self.next_id = 0


_state: _State | None = None


def _get_state() -> _State | None:
    """The active state, re-targeted after a fork, or ``None`` if disabled.

    The check order keeps the disabled path to one dict lookup: explicit
    :func:`configure` wins, then the environment (which also lets a child
    process of a configured run attach itself)."""
    global _state
    if _state is None:
        if not _env_enabled():
            return None
        ledger = os.environ.get(LEDGER_ENV, "").strip()
        path = Path(ledger) if ledger else _default_ledger_path()
        if not ledger:
            _export_env(path)
        _state = _State(path)
    elif _state.pid != os.getpid():
        # Forked child: inherit the run (and the open span stack, so spans
        # recorded here keep their cross-process parents) but write to a
        # private worker stream; the inherited file handle is abandoned.
        _state = _fork_attach(_state)
    return _state


def _fork_attach(parent_state: _State) -> _State:
    state = _State(parent_state.ledger_path)
    state.stack = list(parent_state.stack)
    return state


def _default_ledger_path() -> Path:
    directory = Path(os.environ.get(DIR_ENV, "").strip() or DEFAULT_DIR)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    path = directory / f"run-{stamp}-{os.getpid()}.jsonl"
    n = 1
    while path.exists():  # same process+second: probe for a fresh run file
        n += 1
        path = directory / f"run-{stamp}-{os.getpid()}-{n}.jsonl"
    return path


def _export_env(path: Path) -> None:
    os.environ[LEDGER_ENV] = str(path)
    os.environ[LEDGER_ENV + "_OWNER"] = str(os.getpid())


def configure(
    dir: str | Path | None = None,
    path: str | Path | None = None,
) -> Path:
    """Enable observation for this process tree and return the ledger path.

    ``path`` names the ledger file exactly; otherwise a timestamped
    ``run-*.jsonl`` is created under ``dir`` (default: ``REPRO_OBSERVE_DIR``
    or ``.cache/repro/observe``).  Also sets ``REPRO_OBSERVE=1`` plus the
    ledger-path variables so worker processes attach automatically.
    """
    global _state
    shutdown()
    if path is None:
        directory = Path(dir) if dir is not None else None
        if directory is not None:
            os.environ[DIR_ENV] = str(directory)
        path = _default_ledger_path()
    os.environ[ENV_VAR] = "1"
    _export_env(Path(path))
    _state = _State(Path(path))
    return _state.ledger_path


def shutdown() -> None:
    """Flush and disable observation in this process (test teardown hook).

    Clears both the in-process state and the exported environment, so a
    subsequent :func:`enabled` reflects only the caller's environment.
    """
    global _state
    if _state is not None:
        _state.writer.close()
        _state = None
    for key in (ENV_VAR, LEDGER_ENV, LEDGER_ENV + "_OWNER"):
        os.environ.pop(key, None)


def enabled() -> bool:
    """True when this process is recording (configured or env-enabled)."""
    return _state is not None or _env_enabled()


def current_ledger_path() -> Path | None:
    """The active run's ledger path, or ``None`` when disabled."""
    state = _get_state()
    return None if state is None else state.ledger_path


# ------------------------------------------------------------------ emission


def _emit(state: _State, record: dict) -> None:
    record["ts"] = time.time()
    record["pid"] = state.pid
    if state.stack:
        record.setdefault("span", state.stack[-1].span_id)
    state.writer.write(record)


def event(name: str, **attrs: Any) -> None:
    """Record a point-in-time event with arbitrary JSON-able attributes."""
    state = _get_state()
    if state is None:
        return
    _emit(state, {"type": "event", "name": name, "attrs": attrs})


def incr(name: str, value: float = 1, **attrs: Any) -> None:
    """Increment counter ``name`` (rolled up as a sum by the trace report)."""
    state = _get_state()
    if state is None:
        return
    _emit(state, {"type": "counter", "name": name, "value": value, "attrs": attrs})


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Record the current value of ``name`` (rolled up as last-wins)."""
    state = _get_state()
    if state is None:
        return
    _emit(state, {"type": "gauge", "name": name, "value": value, "attrs": attrs})


def hist(name: str, value: float, **attrs: Any) -> None:
    """Record one histogram observation (rolled up as count/mean/min/max)."""
    state = _get_state()
    if state is None:
        return
    _emit(state, {"type": "hist", "name": name, "value": value, "attrs": attrs})


# --------------------------------------------------------------------- spans


class Span:
    """An open span; ``set()`` attaches attributes before it closes."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_t0", "_start_ts")

    def __init__(self, name: str, span_id: str, parent_id: str | None, attrs: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = time.perf_counter()
        self._start_ts = time.time()

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._t0


class _NullSpan:
    """Shared do-nothing span/context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    @property
    def elapsed(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager recording one span into the ledger on exit."""

    __slots__ = ("_state", "_span")

    def __init__(self, state: _State, name: str, attrs: dict):
        self._state = state
        parent = state.stack[-1].span_id if state.stack else None
        state.next_id += 1
        self._span = Span(name, f"{state.pid:x}.{state.next_id:x}", parent, attrs)

    def __enter__(self) -> Span:
        self._state.stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        span_obj = self._span
        state = self._state
        if state.stack and state.stack[-1] is span_obj:
            state.stack.pop()
        record = {
            "type": "span",
            "name": span_obj.name,
            "id": span_obj.span_id,
            "parent": span_obj.parent_id,
            "start": span_obj._start_ts,
            "seconds": span_obj.elapsed,
            "attrs": span_obj.attrs,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        _emit(state, record)


def span(name: str, **attrs: Any):
    """Open a named span: ``with span("retrain", epochs=3) as sp: ...``.

    Nesting is tracked per process; the yielded :class:`Span` accepts
    late attributes via ``sp.set(...)``.  Returns :data:`NULL_SPAN` when
    observation is disabled, so the call costs one lookup and no
    allocation.
    """
    state = _get_state()
    if state is None:
        return NULL_SPAN
    return _SpanContext(state, name, attrs)


def iter_open_spans() -> Iterator[str]:
    """Names of currently open spans, outermost first (debug helper)."""
    state = _get_state()
    if state is not None:
        for item in state.stack:
            yield item.name


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of numpy scalars/arrays for attribute values."""
    if hasattr(value, "item") and getattr(value, "ndim", None) == 0:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


def json_default(value: Any) -> Any:
    """``json.dumps`` fallback used by the ledger writer."""
    converted = _to_jsonable(value)
    if converted is value and not isinstance(value, (str, int, float, bool)):
        return repr(value)
    return converted


def dumps(record: dict) -> str:
    return json.dumps(record, default=json_default, separators=(",", ":"))
