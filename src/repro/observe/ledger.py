"""The JSONL run ledger: crash-safe appends and worker-stream merging.

One observation record is one JSON line.  Writers append and flush each
line, so a crash (or a pool teardown signal) loses at most the line in
flight; :func:`read_events` tolerates a torn final line by skipping
anything that does not parse.  Worker processes never share a file
handle with the parent — each writes its own ``*.worker-<pid>.jsonl``
sibling stream, and :func:`merge_worker_streams` folds those into the
main ledger under the per-artifact file lock from
:mod:`repro.parallel.locks` (the parent calls it after every pool join).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator


class LedgerWriter:
    """Append-one-JSON-line-per-record writer with per-record flush."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    def write(self, record: dict) -> None:
        from repro.observe.core import dumps

        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def worker_stream_path(ledger_path: str | Path, pid: int) -> Path:
    """The sibling stream a worker process with ``pid`` appends to."""
    ledger_path = Path(ledger_path)
    return ledger_path.with_name(f"{ledger_path.stem}.worker-{pid}.jsonl")


def _worker_streams(ledger_path: Path) -> list[Path]:
    return sorted(ledger_path.parent.glob(f"{ledger_path.stem}.worker-*.jsonl"))


def iter_events(path: str | Path) -> Iterator[dict]:
    """Parse one ledger stream, skipping blank or torn (unparseable) lines."""
    path = Path(path)
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a crashed writer
            if isinstance(record, dict):
                yield record


def read_events(path: str | Path) -> list[dict]:
    """All records of ``path`` plus any unmerged worker streams, in order.

    Reading through the worker streams makes the ledger usable even if a
    crash prevented the final merge; records are ordered by timestamp so
    interleaved processes read chronologically.
    """
    path = Path(path)
    events = list(iter_events(path))
    for stream in _worker_streams(path):
        events.extend(iter_events(stream))
    events.sort(key=lambda r: r.get("ts", 0.0))
    return events


def merge_worker_streams(ledger_path: str | Path | None = None) -> int:
    """Fold ``*.worker-<pid>.jsonl`` streams into the main ledger.

    Called by the parent after each pool join.  The append runs under the
    ledger's file lock so two racing parents (e.g. nested grids) cannot
    interleave half-merged streams; merged worker files are removed.
    Returns the number of records merged.  No-op when observation is
    disabled.
    """
    if ledger_path is None:
        from repro.observe.core import current_ledger_path

        ledger_path = current_ledger_path()
        if ledger_path is None:
            return 0
    ledger_path = Path(ledger_path)
    streams = _worker_streams(ledger_path)
    if not streams:
        return 0
    # Imported lazily: repro.parallel.pool imports this package at module
    # level, so a top-level import here would be circular.
    from repro.observe.core import dumps
    from repro.parallel.locks import artifact_lock

    merged = 0
    with artifact_lock(ledger_path):
        with open(ledger_path, "a", encoding="utf-8") as fh:
            for stream in streams:
                for record in iter_events(stream):
                    fh.write(dumps(record) + "\n")
                    merged += 1
                fh.flush()
                stream.unlink(missing_ok=True)
    return merged
