"""Structured observability: spans, metrics, and a crash-safe run ledger.

Every headline experiment is a grid of (repetition × distribution) cells
dispatched across worker processes; when one of them regresses — a cache
that stopped hitting, a retrain whose LR schedule silently changed, a
cell that takes 10x its siblings — a final summary string cannot show it.
This package records what actually happened:

- **spans** — :func:`span` is a context manager recording wall time,
  attributes, and parent/child nesting (``with span("retrain", epochs=3):``);
- **metrics** — :func:`incr` / :func:`gauge` / :func:`hist` record
  counters (cache hits/misses, eval cells), gauges, and histogram
  observations (batches/s, per-layer prune ratios);
- **run ledger** — every record is one JSON line appended (and flushed)
  to a per-run ``*.jsonl`` stream.  Worker processes spawned by
  :mod:`repro.parallel.pool` write sibling ``*.worker-<pid>.jsonl``
  streams that the parent merges on pool join under the PR-1 file lock,
  so one file tells the whole multi-process story;
- **trace report** — ``python -m repro trace <run.jsonl>`` renders the
  span tree with timings and metric rollups (:mod:`repro.observe.trace`).

Observability is opt-in, mirroring ``REPRO_VERIFY``: set
``REPRO_OBSERVE=1`` (ledger path auto-chosen under ``REPRO_OBSERVE_DIR``,
default ``.cache/repro/observe``) or call :func:`configure` explicitly.
When disabled, every hook degenerates to a no-op fast path so
instrumented hot loops pay nothing.
"""

from repro.observe.core import (
    DIR_ENV,
    ENV_VAR,
    LEDGER_ENV,
    NULL_SPAN,
    Span,
    configure,
    current_ledger_path,
    enabled,
    event,
    gauge,
    hist,
    incr,
    iter_open_spans,
    shutdown,
    span,
)
from repro.observe.ledger import (
    merge_worker_streams,
    read_events,
    worker_stream_path,
)
from repro.observe.trace import TraceReport, load_report

__all__ = [
    "ENV_VAR",
    "DIR_ENV",
    "LEDGER_ENV",
    "NULL_SPAN",
    "Span",
    "configure",
    "current_ledger_path",
    "enabled",
    "event",
    "gauge",
    "hist",
    "incr",
    "iter_open_spans",
    "shutdown",
    "span",
    "merge_worker_streams",
    "read_events",
    "worker_stream_path",
    "TraceReport",
    "load_report",
]
