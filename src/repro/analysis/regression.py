"""OLS through the origin with bootstrap confidence intervals.

Appendix D.5 fits the relation between prune ratio and difference in excess
error with ordinary least squares constrained through the origin (the
difference is identically zero at prune ratio 0) and reports bootstrap 95%
confidence bands.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng


def ols_slope_through_origin(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares slope of ``y ≈ slope * x`` (intercept fixed at 0)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"x and y must be equal-length 1-D arrays, got {x.shape}, {y.shape}")
    denom = float(x @ x)
    if denom == 0:
        raise ValueError("all x are zero; slope undefined")
    return float(x @ y) / denom


def bootstrap_slope_ci(
    x: np.ndarray,
    y: np.ndarray,
    n_boot: int = 1000,
    alpha: float = 0.05,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the through-origin slope."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    rng = as_rng(rng)
    n = len(x)
    idx = rng.integers(0, n, size=(n_boot, n))
    xs, ys = x[idx], y[idx]
    denom = (xs * xs).sum(axis=1)
    # Degenerate resamples (all-zero x) are dropped from the distribution.
    valid = denom > 0
    slopes = (xs * ys).sum(axis=1)[valid] / denom[valid]
    if slopes.size == 0:
        raise ValueError("no valid bootstrap resamples")
    lo, hi = np.quantile(slopes, [alpha / 2, 1 - alpha / 2])
    return float(lo), float(hi)
