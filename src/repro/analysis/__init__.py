"""Analysis tools: the paper's measurement machinery.

- :mod:`functional_distance` — matching predictions / softmax distance
  under input noise (Section 4, Fig. 4);
- :mod:`backselect` — greedy informative-pixel selection and cross-model
  confidence heatmaps (Section 4, Fig. 3);
- :mod:`prune_potential` — Definition 1 evaluated from prune-accuracy
  curves (Section 5, Figs. 1/6/7);
- :mod:`excess_error` — Definition 2 and the difference in excess error
  with OLS fits (Section 5, Figs. 6c/6f, Appendix D.5);
- :mod:`overparam` — average/minimum prune potential summaries
  (Tables 2/9/10/12/13).
"""

from repro.analysis.functional_distance import (
    NoiseSimilarity,
    noise_similarity,
    predictions_and_softmax,
)
from repro.analysis.backselect import (
    backselect_order,
    confidence_on_informative_pixels,
    cross_model_confidence_matrix,
    informative_pixel_mask,
)
from repro.analysis.prune_potential import (
    PruneAccuracyCurve,
    evaluate_curve,
    prune_potential,
    prune_potential_from_curve,
)
from repro.analysis.excess_error import (
    excess_error,
    excess_error_difference,
)
from repro.analysis.regression import bootstrap_slope_ci, ols_slope_through_origin
from repro.analysis.overparam import PotentialSummary, summarize_potentials
from repro.analysis.class_impact import ClassImpactResult, class_impact, per_class_error
from repro.analysis.adversarial import adversarial_error, fgsm_attack, input_gradient
from repro.analysis.sparsity import SparsityProfile, layerwise_sparsity, sparsity_profile

__all__ = [
    "noise_similarity",
    "NoiseSimilarity",
    "predictions_and_softmax",
    "backselect_order",
    "informative_pixel_mask",
    "confidence_on_informative_pixels",
    "cross_model_confidence_matrix",
    "PruneAccuracyCurve",
    "evaluate_curve",
    "prune_potential",
    "prune_potential_from_curve",
    "excess_error",
    "excess_error_difference",
    "ols_slope_through_origin",
    "bootstrap_slope_ci",
    "PotentialSummary",
    "summarize_potentials",
    "class_impact",
    "ClassImpactResult",
    "per_class_error",
    "fgsm_attack",
    "adversarial_error",
    "input_gradient",
    "layerwise_sparsity",
    "sparsity_profile",
    "SparsityProfile",
]
