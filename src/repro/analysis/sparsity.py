"""Layerwise sparsity profiles of pruned networks.

Where a method prunes is as characteristic as how much: global magnitude
methods (WT/SiPP) concentrate sparsity in the largest, most redundant
layers, while FT's uniform allocation spreads it evenly and PFP's
sensitivity budget sits in between.  These profiles explain the FLOP-vs-
parameter-ratio differences in Tables 4/6/8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module
from repro.pruning.mask import prunable_layers
from repro.pruning.pipeline import PruneRun


def layerwise_sparsity(model: Module) -> dict[str, float]:
    """Per-layer fraction of masked weights, in forward order."""
    return {name: layer.prune_ratio for name, layer in prunable_layers(model)}


def layerwise_sizes(model: Module) -> dict[str, int]:
    """Per-layer prunable weight counts, in forward order."""
    return {name: layer.weight.size for name, layer in prunable_layers(model)}


@dataclass
class SparsityProfile:
    """Layerwise sparsity of every checkpoint of a prune run."""

    layer_names: list[str]
    layer_sizes: np.ndarray  # (L,)
    ratios: np.ndarray  # (K,) overall achieved ratios
    sparsities: np.ndarray  # (K, L) per-layer prune fraction

    def imbalance(self, checkpoint: int) -> float:
        """Spread of per-layer sparsity at one checkpoint (max − min).

        ~0 for perfectly uniform allocation (FT's design goal); large for
        global methods that exempt sensitive layers.
        """
        row = self.sparsities[checkpoint]
        return float(row.max() - row.min())

    def weighted_sparsity(self, checkpoint: int) -> float:
        """Size-weighted mean sparsity (equals the overall prune ratio)."""
        row = self.sparsities[checkpoint]
        return float((row * self.layer_sizes).sum() / self.layer_sizes.sum())


def sparsity_profile(run: PruneRun, model: Module) -> SparsityProfile:
    """Extract the layerwise profile of every checkpoint in ``run``.

    ``model`` must share the run's architecture; its weights are
    overwritten.
    """
    model.load_state_dict(run.parent_state)
    names = [name for name, _ in prunable_layers(model)]
    sizes = np.array([layer.weight.size for _, layer in prunable_layers(model)])
    rows = []
    for i in range(len(run.checkpoints)):
        run.restore(model, i)
        per_layer = layerwise_sparsity(model)
        rows.append([per_layer[name] for name in names])
    return SparsityProfile(
        layer_names=names,
        layer_sizes=sizes,
        ratios=run.ratios,
        sparsities=np.array(rows),
    )
