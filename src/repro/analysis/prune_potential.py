"""Prune potential (Definition 1) from prune-accuracy curves.

The prune potential P(θ, D) is the maximal prune ratio whose pruned network
(produced by PRUNERETRAIN) keeps its expected loss within margin δ of the
unpruned parent *on distribution D*.  With the paper's indicator loss this
is: the largest achieved ratio whose test error on D exceeds the parent's
error on D by at most δ (δ = 0.5% by default); 0 if no ratio qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.datasets import Dataset, Normalizer
from repro.infer import engine_for
from repro.nn.module import Module, preserve_state
from repro.pruning.pipeline import PruneRun
from repro.training.trainer import evaluate_model
from repro.verify import runtime as verify_runtime

DEFAULT_DELTA = 0.005


@dataclass
class PruneAccuracyCurve:
    """Errors of the parent and each pruned checkpoint on one distribution."""

    distribution: str
    ratios: np.ndarray
    errors: np.ndarray
    parent_error: float

    def potential(self, delta: float = DEFAULT_DELTA) -> float:
        return prune_potential_from_curve(
            self.ratios, self.errors, self.parent_error, delta
        )


def prune_potential_from_curve(
    ratios: np.ndarray,
    errors: np.ndarray,
    parent_error: float,
    delta: float = DEFAULT_DELTA,
) -> float:
    """Largest ratio with ``error <= parent_error + delta``; 0 if none."""
    ratios = np.asarray(ratios, dtype=float)
    errors = np.asarray(errors, dtype=float)
    if ratios.shape != errors.shape:
        raise ValueError(f"shape mismatch: {ratios.shape} vs {errors.shape}")
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    ok = errors <= parent_error + delta
    if not ok.any():
        return 0.0
    return float(ratios[ok].max())


def evaluate_curve(
    run: PruneRun,
    model: Module,
    dataset: Dataset,
    normalizer: Normalizer | None = None,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> PruneAccuracyCurve:
    """Evaluate the parent and every checkpoint of ``run`` on ``dataset``.

    ``model`` must share the run's architecture; checkpoint weights are
    swapped in during the sweep and the caller's state is restored on
    exit (also on exception).  ``transform`` applies to normalized inputs
    (noise injection).
    """

    # One engine serves the whole checkpoint sweep; each load_state_dict
    # changes the model's state signature, which re-densifies the cached
    # plans instead of recompiling them.
    engine = engine_for(model)

    def error_of(state: dict) -> float:
        model.load_state_dict(state)
        return evaluate_model(
            engine, dataset.images, dataset.labels, normalizer, transform=transform
        )["error"]

    with preserve_state(model):
        parent_error = error_of(run.parent_state)
        errors = np.array([error_of(c.state) for c in run.checkpoints])
    curve = PruneAccuracyCurve(
        distribution=dataset.name,
        ratios=run.ratios,
        errors=errors,
        parent_error=parent_error,
    )
    verify_runtime.verify_curve(curve)
    return curve


def prune_potential(
    run: PruneRun,
    model: Module,
    dataset: Dataset,
    normalizer: Normalizer | None = None,
    delta: float = DEFAULT_DELTA,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> float:
    """Definition 1 for the networks of ``run`` on ``dataset``."""
    curve = evaluate_curve(run, model, dataset, normalizer, transform)
    return curve.potential(delta)
