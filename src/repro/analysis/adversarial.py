"""Adversarial robustness probes (FGSM).

The paper's related work surveys conflicting evidence on whether pruning
hurts adversarial robustness (Wang et al. 2018; Ye et al. 2019 vs Guo et
al. 2018).  This module provides the standard fast-gradient-sign attack so
the library can measure the white-box robustness of pruned networks; it
exercises input gradients of the autograd engine.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.nn.module import Module


def input_gradient(
    model: Module, images: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Gradient of the mean cross-entropy loss w.r.t. the (normalized) input."""
    was_training = model.training
    model.eval()
    try:
        x = Tensor(images.astype(np.float32), requires_grad=True)
        loss = F.cross_entropy(model(x), labels)
        loss.backward()
    finally:
        model.train(was_training)
    if x.grad is None:
        raise RuntimeError("input received no gradient; is the model constant?")
    return x.grad


def fgsm_attack(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    eps: float,
    batch_size: int = 256,
) -> np.ndarray:
    """Fast gradient sign method: ``x' = x + eps * sign(∇_x loss)``.

    Operates in whatever space ``images`` lives in (the paper-style
    convention is normalized space, matching the ℓ∞ noise experiments).
    """
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    out = images.copy()
    for start in range(0, len(images), batch_size):
        sl = slice(start, start + batch_size)
        grad = input_gradient(model, images[sl], labels[sl])
        out[sl] = images[sl] + eps * np.sign(grad)
    return out


def adversarial_error(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    eps: float,
    batch_size: int = 256,
) -> float:
    """Error rate under a white-box FGSM attack of budget ``eps``."""
    from repro.analysis.functional_distance import predictions_and_softmax

    adversarial = fgsm_attack(model, images, labels, eps, batch_size)
    preds, _ = predictions_and_softmax(model, adversarial, batch_size)
    return float((preds != labels).mean())
