"""Excess error (Definition 2) and the pruned-vs-unpruned difference.

``e(θ, D') = E_{D'} loss − E_{D} loss`` measures a fixed network's error
increase under a distribution change.  The paper's headline quantity is the
*difference in excess error* ``ê − e`` between a pruned network and its
parent: zero everywhere would mean the nominal prune-accuracy trade-off
transfers to o.o.d. data; the paper finds it grows with the prune ratio
(Figs. 6c/6f, Appendix D.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.datasets import Dataset, Normalizer
from repro.infer import engine_for
from repro.nn.module import Module, preserve_state
from repro.pruning.pipeline import PruneRun
from repro.training.trainer import evaluate_model


def excess_error(
    model: Module,
    nominal: Dataset,
    shifted: Dataset,
    normalizer: Normalizer | None = None,
) -> float:
    """``e(θ, D')``: error on ``shifted`` minus error on ``nominal``."""
    engine = engine_for(model)
    err_shifted = evaluate_model(
        engine, shifted.images, shifted.labels, normalizer
    )["error"]
    err_nominal = evaluate_model(
        engine, nominal.images, nominal.labels, normalizer
    )["error"]
    return err_shifted - err_nominal


@dataclass
class ExcessErrorResult:
    """Difference in excess error per prune ratio, averaged over o.o.d. sets."""

    ratios: np.ndarray
    differences: np.ndarray  # ê - e per checkpoint
    parent_excess: float


def excess_error_difference(
    run: PruneRun,
    model: Module,
    nominal: Dataset,
    ood_datasets: Sequence[Dataset],
    normalizer: Normalizer | None = None,
) -> ExcessErrorResult:
    """``ê − e`` for every checkpoint of ``run``.

    The o.o.d. error is averaged across ``ood_datasets`` (the paper averages
    over all corruptions of the test distribution).  The caller's model
    state is restored after the sweep, also on exception.
    """
    if not ood_datasets:
        raise ValueError("need at least one o.o.d. dataset")

    # Shared engine across the whole checkpoint × dataset sweep: compiled
    # plans are reused, only their constants refresh per load_state_dict.
    engine = engine_for(model)

    def errors_of(state: dict) -> tuple[float, float]:
        model.load_state_dict(state)
        nom = evaluate_model(engine, nominal.images, nominal.labels, normalizer)["error"]
        ood = float(
            np.mean(
                [
                    evaluate_model(engine, d.images, d.labels, normalizer)["error"]
                    for d in ood_datasets
                ]
            )
        )
        return nom, ood

    diffs = []
    with preserve_state(model):
        parent_nom, parent_ood = errors_of(run.parent_state)
        parent_excess = parent_ood - parent_nom
        for ckpt in run.checkpoints:
            nom, ood = errors_of(ckpt.state)
            diffs.append((ood - nom) - parent_excess)
    return ExcessErrorResult(
        ratios=run.ratios,
        differences=np.array(diffs),
        parent_excess=parent_excess,
    )
