"""Overparameterization summaries (Tables 2, 9, 10, 12, 13).

The paper gauges a network's *genuine* overparameterization by the average
and minimum of its prune potential over a set of test distributions,
repeated over independent training runs (mean ± std across repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PotentialSummary:
    """Average / minimum prune potential with across-repetition spread."""

    average_mean: float
    average_std: float
    minimum_mean: float
    minimum_std: float

    def row(self, scale: float = 100.0) -> tuple[str, str]:
        """("avg ± std", "min ± std") formatted in percent."""
        return (
            f"{self.average_mean * scale:.1f} ± {self.average_std * scale:.1f}",
            f"{self.minimum_mean * scale:.1f} ± {self.minimum_std * scale:.1f}",
        )


def summarize_potentials(potentials: np.ndarray) -> PotentialSummary:
    """Summarize a ``(n_repetitions, n_distributions)`` potential matrix.

    The average/minimum run over distributions; mean/std over repetitions.
    A single repetition yields std 0, as in the paper's ImageNet rows.
    """
    potentials = np.atleast_2d(np.asarray(potentials, dtype=float))
    if potentials.size == 0:
        raise ValueError("empty potential matrix")
    averages = potentials.mean(axis=1)
    minima = potentials.min(axis=1)
    return PotentialSummary(
        average_mean=float(averages.mean()),
        average_std=float(averages.std()),
        minimum_mean=float(minima.mean()),
        minimum_std=float(minima.std()),
    )
