"""Per-class impact of pruning ("selective brain damage").

Hooker et al. (2019), cited in the paper's related work, observe that
pruning does not degrade classes uniformly: a pruned network with
commensurate *aggregate* accuracy can be disproportionately worse on a few
classes.  This module measures that effect for any pruned/parent pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.functional_distance import predictions_and_softmax
from repro.data.datasets import Dataset, Normalizer
from repro.nn.module import Module


def per_class_error(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    num_classes: int,
    batch_size: int = 256,
) -> np.ndarray:
    """Error rate per true class; NaN for classes absent from ``labels``."""
    preds, _ = predictions_and_softmax(model, images, batch_size)
    errors = np.full(num_classes, np.nan)
    for k in range(num_classes):
        mask = labels == k
        if mask.any():
            errors[k] = float((preds[mask] != k).mean())
    return errors


@dataclass
class ClassImpactResult:
    """Per-class error deltas of a pruned network vs its parent."""

    parent_errors: np.ndarray  # (K,)
    pruned_errors: np.ndarray  # (K,)

    @property
    def deltas(self) -> np.ndarray:
        """Pruned minus parent error per class (positive = class got worse)."""
        return self.pruned_errors - self.parent_errors

    @property
    def aggregate_delta(self) -> float:
        """Mean error change across classes (macro-averaged)."""
        return float(np.nanmean(self.deltas))

    @property
    def worst_class(self) -> int:
        """Class index with the largest error increase."""
        return int(np.nanargmax(self.deltas))

    @property
    def disparity(self) -> float:
        """Worst-class delta minus the aggregate delta.

        Zero would mean pruning degrades all classes uniformly; Hooker et
        al.'s finding is that it is substantially positive.
        """
        return float(np.nanmax(self.deltas) - self.aggregate_delta)


def class_impact(
    parent: Module,
    pruned: Module,
    dataset: Dataset,
    num_classes: int,
    normalizer: Normalizer | None = None,
    batch_size: int = 256,
) -> ClassImpactResult:
    """Compare per-class errors of ``pruned`` against ``parent``."""
    images = dataset.images if normalizer is None else normalizer(dataset.images)
    return ClassImpactResult(
        parent_errors=per_class_error(parent, images, dataset.labels, num_classes, batch_size),
        pruned_errors=per_class_error(pruned, images, dataset.labels, num_classes, batch_size),
    )
