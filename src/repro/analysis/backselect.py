"""BackSelect: greedy informative-pixel selection (Carter et al., 2019).

For a network f and input x, BackSelect repeatedly masks the pixel whose
removal reduces the confidence toward the predicted class the least,
producing an ordering of pixels by increasing informativeness.  Keeping
only the top-B% pixels of that ordering gives the *informative features* of
f on x; feeding one model's informative pixels to another model measures
how much decision-making strategy the two share (Fig. 3 heatmaps).

Masked pixels are set to zero in normalized space (the per-channel mean of
the training distribution), following the sufficient-input-subsets
protocol.  ``pixels_per_step > 1`` removes several pixels per greedy step —
the standard batched acceleration — trading fidelity for speed.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.nn.module import Module


def _confidences(
    model: Module, images: np.ndarray, class_index: int, batch_size: int
) -> np.ndarray:
    """Softmax confidence toward ``class_index`` for a stack of images."""
    outs = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            logits = model(Tensor(images[start : start + batch_size])).data
            shifted = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(shifted)
            probs /= probs.sum(axis=1, keepdims=True)
            outs.append(probs[:, class_index])
    return np.concatenate(outs)


def backselect_order(
    model: Module,
    image: np.ndarray,
    target_class: int | None = None,
    pixels_per_step: int = 1,
    batch_size: int = 512,
) -> np.ndarray:
    """Pixel indices of ``image`` ordered by increasing informativeness.

    ``image`` is one normalized (C, H, W) array.  Returns a flat (H*W,)
    permutation of pixel indices: the first entries are the least
    informative pixels for the model's prediction.
    """
    if image.ndim != 3:
        raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
    c, h, w = image.shape
    n_pixels = h * w
    was_training = model.training
    model.eval()
    try:
        if target_class is None:
            with no_grad():
                logits = model(Tensor(image[None])).data[0]
            target_class = int(logits.argmax())

        remaining = list(range(n_pixels))
        order: list[int] = []
        current = image.copy().reshape(c, n_pixels)
        while remaining:
            # Candidate batch: current image with each remaining pixel masked.
            candidates = np.repeat(
                current.reshape(1, c, n_pixels), len(remaining), axis=0
            )
            idx = np.asarray(remaining)
            candidates[np.arange(len(remaining)), :, idx] = 0.0
            conf = _confidences(
                model, candidates.reshape(-1, c, h, w), target_class, batch_size
            )
            take = min(pixels_per_step, len(remaining))
            # Remove the pixels whose masking hurts confidence the least.
            best = np.argsort(-conf, kind="stable")[:take]
            for b in sorted(best.tolist(), reverse=True):
                pixel = remaining.pop(b)
                order.append(pixel)
                current[:, pixel] = 0.0
    finally:
        model.train(was_training)
    return np.asarray(order, dtype=np.int64)


def informative_pixel_mask(order: np.ndarray, keep_fraction: float) -> np.ndarray:
    """Boolean flat mask keeping the top ``keep_fraction`` informative pixels."""
    if not 0 < keep_fraction <= 1:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    n = len(order)
    keep = max(int(round(keep_fraction * n)), 1)
    mask = np.zeros(n, dtype=bool)
    mask[order[n - keep :]] = True  # order is increasing informativeness
    return mask


def confidence_on_informative_pixels(
    model: Module,
    image: np.ndarray,
    pixel_mask: np.ndarray,
    true_class: int,
    batch_size: int = 512,
) -> float:
    """Model confidence toward ``true_class`` on the masked image."""
    c, h, w = image.shape
    masked = image.reshape(c, -1).copy()
    masked[:, ~pixel_mask] = 0.0
    was_training = model.training
    model.eval()
    try:
        conf = _confidences(model, masked.reshape(1, c, h, w), true_class, batch_size)
    finally:
        model.train(was_training)
    return float(conf[0])


def cross_model_confidence_matrix(
    models: list[Module],
    images: np.ndarray,
    labels: np.ndarray,
    keep_fraction: float = 0.1,
    pixels_per_step: int = 8,
    batch_size: int = 512,
) -> np.ndarray:
    """The Fig. 3 heatmap.

    Entry ``(i, j)``: mean confidence of model ``j`` toward the *true* class
    on images reduced to the pixels model ``i`` found informative (selected
    toward model ``i``'s *predicted* class).  ``images`` are normalized.
    """
    m = len(models)
    heat = np.zeros((m, m))
    for img, label in zip(images, labels):
        masks = [
            informative_pixel_mask(
                backselect_order(
                    gen, img, pixels_per_step=pixels_per_step, batch_size=batch_size
                ),
                keep_fraction,
            )
            for gen in models
        ]
        for i, mask in enumerate(masks):
            for j, evaluator in enumerate(models):
                heat[i, j] += confidence_on_informative_pixels(
                    evaluator, img, mask, int(label), batch_size
                )
    return heat / len(images)
