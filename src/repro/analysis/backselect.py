"""BackSelect: greedy informative-pixel selection (Carter et al., 2019).

For a network f and input x, BackSelect repeatedly masks the pixel whose
removal reduces the confidence toward the predicted class the least,
producing an ordering of pixels by increasing informativeness.  Keeping
only the top-B% pixels of that ordering gives the *informative features* of
f on x; feeding one model's informative pixels to another model measures
how much decision-making strategy the two share (Fig. 3 heatmaps).

Masked pixels are set to zero in normalized space (the per-channel mean of
the training distribution), following the sufficient-input-subsets
protocol.  ``pixels_per_step > 1`` removes several pixels per greedy step —
the standard batched acceleration — trading fidelity for speed.
"""

from __future__ import annotations

import numpy as np

from repro.infer import engine_for
from repro.nn.module import Module


def _confidences(
    model: Module, images: np.ndarray, class_index: int, batch_size: int
) -> np.ndarray:
    """Softmax confidence toward ``class_index`` for a stack of images."""
    probs = engine_for(model).predict_proba(images, batch_size=batch_size)
    return probs[:, class_index]


def backselect_order(
    model: Module,
    image: np.ndarray,
    target_class: int | None = None,
    pixels_per_step: int = 1,
    batch_size: int = 512,
) -> np.ndarray:
    """Pixel indices of ``image`` ordered by increasing informativeness.

    ``image`` is one normalized (C, H, W) array.  Returns a flat (H*W,)
    permutation of pixel indices: the first entries are the least
    informative pixels for the model's prediction.
    """
    if image.ndim != 3:
        raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
    c, h, w = image.shape
    n_pixels = h * w
    engine = engine_for(model)
    if target_class is None:
        target_class = int(engine.logits(image[None]).argmax())

    remaining = list(range(n_pixels))
    order: list[int] = []
    current = image.copy().reshape(c, n_pixels)
    while remaining:
        # Candidates are generated one batch_size chunk at a time — the
        # same boundaries the old full materialization was evaluated at,
        # so the ordering is identical while peak memory stays at
        # O(batch_size · C · H·W) instead of O((H·W)² · C) per step.
        idx_all = np.asarray(remaining)
        confs = []
        for start in range(0, len(idx_all), batch_size):
            idx = idx_all[start : start + batch_size]
            cand = np.repeat(current.reshape(1, c, n_pixels), len(idx), axis=0)
            cand[np.arange(len(idx)), :, idx] = 0.0
            confs.append(
                _confidences(
                    model, cand.reshape(-1, c, h, w), target_class, batch_size
                )
            )
        conf = np.concatenate(confs)
        take = min(pixels_per_step, len(remaining))
        # Remove the pixels whose masking hurts confidence the least.
        best = np.argsort(-conf, kind="stable")[:take]
        for b in sorted(best.tolist(), reverse=True):
            pixel = remaining.pop(b)
            order.append(pixel)
            current[:, pixel] = 0.0
    return np.asarray(order, dtype=np.int64)


def informative_pixel_mask(order: np.ndarray, keep_fraction: float) -> np.ndarray:
    """Boolean flat mask keeping the top ``keep_fraction`` informative pixels."""
    if not 0 < keep_fraction <= 1:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    n = len(order)
    keep = max(int(round(keep_fraction * n)), 1)
    mask = np.zeros(n, dtype=bool)
    mask[order[n - keep :]] = True  # order is increasing informativeness
    return mask


def confidence_on_informative_pixels(
    model: Module,
    image: np.ndarray,
    pixel_mask: np.ndarray,
    true_class: int,
    batch_size: int = 512,
) -> float:
    """Model confidence toward ``true_class`` on the masked image."""
    c, h, w = image.shape
    masked = image.reshape(c, -1).copy()
    masked[:, ~pixel_mask] = 0.0
    conf = _confidences(model, masked.reshape(1, c, h, w), true_class, batch_size)
    return float(conf[0])


def cross_model_confidence_matrix(
    models: list[Module],
    images: np.ndarray,
    labels: np.ndarray,
    keep_fraction: float = 0.1,
    pixels_per_step: int = 8,
    batch_size: int = 512,
) -> np.ndarray:
    """The Fig. 3 heatmap.

    Entry ``(i, j)``: mean confidence of model ``j`` toward the *true* class
    on images reduced to the pixels model ``i`` found informative (selected
    toward model ``i``'s *predicted* class).  ``images`` are normalized.
    """
    images = np.asarray(images)
    labels = np.asarray(labels)
    if len(images) == 0 or len(labels) == 0:
        raise ValueError("cross_model_confidence_matrix requires a non-empty sample")
    if len(images) != len(labels):
        raise ValueError(
            f"images and labels disagree: {len(images)} images vs {len(labels)} labels"
        )
    m = len(models)
    heat = np.zeros((m, m))
    for img, label in zip(images, labels):
        masks = [
            informative_pixel_mask(
                backselect_order(
                    gen, img, pixels_per_step=pixels_per_step, batch_size=batch_size
                ),
                keep_fraction,
            )
            for gen in models
        ]
        for i, mask in enumerate(masks):
            for j, evaluator in enumerate(models):
                heat[i, j] += confidence_on_informative_pixels(
                    evaluator, img, mask, int(label), batch_size
                )
    return heat / len(images)
