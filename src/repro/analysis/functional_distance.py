"""Functional-distance metrics under input noise (Section 4.1).

For two networks f and g and noise x' ~ D + U(-ε, ε)ⁿ we estimate

- the matching-prediction rate  E[argmax f(x') == argmax g(x')], and
- the softmax output distance   E‖softmax f(x') − softmax g(x')‖₂,

by repeated noise injection over a fixed image sample, as the paper does
(1000 test images × 100 noise draws; scaled presets shrink both).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.noise import add_uniform_noise
from repro.infer import engine_for
from repro.nn.module import Module
from repro.utils.rng import as_rng


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def predictions_and_softmax(
    model: Module, images: np.ndarray, batch_size: int = 256
) -> tuple[np.ndarray, np.ndarray]:
    """Eval-mode predictions and softmax outputs for normalized ``images``.

    Forwards run through the :mod:`repro.infer` engine, whose fallback
    restores the caller's train/eval mode in a ``finally`` — an exception
    mid-eval can no longer leave ``model`` stuck in eval mode.
    """
    logits = engine_for(model).logits(images, batch_size=batch_size)
    probs = _softmax(logits)
    return logits.argmax(axis=1), probs


@dataclass
class NoiseSimilarity:
    """Result of one noise-similarity comparison at fixed ε."""

    eps: float
    match_rate: float
    match_rate_std: float
    l2_distance: float
    l2_distance_std: float


def noise_similarity(
    model_a: Module,
    model_b: Module,
    images: np.ndarray,
    eps: float,
    n_trials: int = 10,
    rng: np.random.Generator | int | None = 0,
    batch_size: int = 256,
) -> NoiseSimilarity:
    """Compare two models on noisy copies of normalized ``images``.

    Standard deviations are across noise trials.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    rng = as_rng(rng)
    match_rates, l2_dists = [], []
    for _ in range(n_trials):
        noisy = add_uniform_noise(images, eps, rng)
        preds_a, probs_a = predictions_and_softmax(model_a, noisy, batch_size)
        preds_b, probs_b = predictions_and_softmax(model_b, noisy, batch_size)
        match_rates.append(float((preds_a == preds_b).mean()))
        l2_dists.append(float(np.linalg.norm(probs_a - probs_b, axis=1).mean()))
    return NoiseSimilarity(
        eps=eps,
        match_rate=float(np.mean(match_rates)),
        match_rate_std=float(np.std(match_rates)),
        l2_distance=float(np.mean(l2_dists)),
        l2_distance_std=float(np.std(l2_dists)),
    )
