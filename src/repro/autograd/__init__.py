"""Reverse-mode automatic differentiation over NumPy arrays.

This subpackage replaces the role PyTorch autograd plays in the original
paper's code base (torchprune).  It provides:

- :class:`~repro.autograd.tensor.Tensor`: an ndarray wrapper carrying a
  gradient and a backward graph,
- elementwise / reduction / shape ops with broadcasting-aware gradients,
- fused deep-learning kernels (``conv2d``, ``max_pool2d``, ``batch_norm``,
  ``cross_entropy``) implemented with vectorized im2col arithmetic,
- :func:`~repro.autograd.gradcheck.gradcheck` for finite-difference
  verification of every op.
"""

from repro.autograd.tensor import Tensor, is_grad_enabled, no_grad
from repro.autograd import ops as _ops  # noqa: F401  (patches Tensor operators)
from repro.autograd import functional
from repro.autograd.gradcheck import gradcheck

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "gradcheck"]
