"""Primitive differentiable ops and the Tensor operator protocol.

Each op validates inputs, computes the forward value with vectorized NumPy,
and registers a backward closure via :func:`repro.autograd.tensor.build`.
Broadcasting is supported everywhere; gradients are reduced back to the
operand shapes with ``unbroadcast``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, build, ensure_tensor, unbroadcast

# --------------------------------------------------------------- arithmetic


def _pair(a, b) -> tuple[Tensor, Tensor]:
    """Coerce operands to Tensors; python scalars adopt the other operand's
    dtype so float32 networks are not silently upcast to float64."""
    if isinstance(a, Tensor) and isinstance(b, (int, float)):
        b = Tensor(np.asarray(b, dtype=a.data.dtype))
    elif isinstance(b, Tensor) and isinstance(a, (int, float)):
        a = Tensor(np.asarray(a, dtype=b.data.dtype))
    return ensure_tensor(a), ensure_tensor(b)


def add(a, b) -> Tensor:
    a, b = _pair(a, b)
    return build(
        a.data + b.data,
        (a, b),
        lambda g: (unbroadcast(g, a.shape), unbroadcast(g, b.shape)),
    )


def sub(a, b) -> Tensor:
    a, b = _pair(a, b)
    return build(
        a.data - b.data,
        (a, b),
        lambda g: (unbroadcast(g, a.shape), unbroadcast(-g, b.shape)),
    )


def mul(a, b) -> Tensor:
    a, b = _pair(a, b)
    return build(
        a.data * b.data,
        (a, b),
        lambda g: (unbroadcast(g * b.data, a.shape), unbroadcast(g * a.data, b.shape)),
    )


def div(a, b) -> Tensor:
    a, b = _pair(a, b)
    return build(
        a.data / b.data,
        (a, b),
        lambda g: (
            unbroadcast(g / b.data, a.shape),
            unbroadcast(-g * a.data / (b.data * b.data), b.shape),
        ),
    )


def neg(a) -> Tensor:
    a = ensure_tensor(a)
    return build(-a.data, (a,), lambda g: (-g,))


def power(a, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a scalar exponent."""
    a = ensure_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power supports scalar exponents only")
    exponent = float(exponent)
    out_data = a.data**exponent
    return build(out_data, (a,), lambda g: (g * exponent * a.data ** (exponent - 1),))


def matmul(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    if a.ndim < 1 or b.ndim < 1:
        raise ValueError("matmul requires operands with ndim >= 1")

    def backward(g):
        if a.ndim == 1 and b.ndim == 1:
            return g * b.data, g * a.data
        if b.ndim == 1:
            return np.outer(g, b.data).reshape(a.shape), a.data.reshape(-1, a.shape[-1]).T @ g.reshape(-1)
        if a.ndim == 1:
            return g @ b.data.T if b.ndim == 2 else None, np.outer(a.data, g)
        ga = g @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ g
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return build(a.data @ b.data, (a, b), backward)


# -------------------------------------------------------------- elementwise


def exp(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.exp(a.data)
    return build(out_data, (a,), lambda g: (g * out_data,))


def log(a) -> Tensor:
    a = ensure_tensor(a)
    return build(np.log(a.data), (a,), lambda g: (g / a.data,))


def sqrt(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.sqrt(a.data)
    return build(out_data, (a,), lambda g: (g / (2.0 * out_data),))


def relu(a) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    return build(np.where(mask, a.data, 0.0), (a,), lambda g: (g * mask,))


def tanh(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.tanh(a.data)
    return build(out_data, (a,), lambda g: (g * (1.0 - out_data * out_data),))


def sigmoid(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))
    return build(out_data, (a,), lambda g: (g * out_data * (1.0 - out_data),))


def absolute(a) -> Tensor:
    a = ensure_tensor(a)
    return build(np.abs(a.data), (a,), lambda g: (g * np.sign(a.data),))


def maximum(a, b) -> Tensor:
    """Elementwise maximum; ties send the gradient to the first operand."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    take_a = a.data >= b.data
    return build(
        np.where(take_a, a.data, b.data),
        (a, b),
        lambda g: (unbroadcast(g * take_a, a.shape), unbroadcast(g * ~take_a, b.shape)),
    )


def clip(a, low: float, high: float) -> Tensor:
    a = ensure_tensor(a)
    inside = (a.data >= low) & (a.data <= high)
    return build(np.clip(a.data, low, high), (a,), lambda g: (g * inside,))


# --------------------------------------------------------------- reductions


def _normalize_axis(axis, ndim: int):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def tensor_sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    axis = _normalize_axis(axis, a.ndim)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return build(out_data, (a,), backward)


def tensor_mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    axis_n = _normalize_axis(axis, a.ndim)
    count = (
        a.size
        if axis_n is None
        else int(np.prod([a.shape[ax] for ax in axis_n]))
    )
    out_data = a.data.mean(axis=axis_n, keepdims=keepdims)

    def backward(g):
        if axis_n is not None and not keepdims:
            g = np.expand_dims(g, axis_n)
        return (np.broadcast_to(g, a.shape) / count,)

    return build(out_data, (a,), backward)


def tensor_max(a, axis=None, keepdims: bool = False) -> Tensor:
    """Max reduction; gradient splits evenly among tied maxima."""
    a = ensure_tensor(a)
    axis_n = _normalize_axis(axis, a.ndim)
    out_data = a.data.max(axis=axis_n, keepdims=keepdims)

    def backward(g):
        expanded = out_data
        if axis_n is not None and not keepdims:
            expanded = np.expand_dims(out_data, axis_n)
            g = np.expand_dims(g, axis_n)
        mask = (a.data == expanded).astype(a.data.dtype)
        mask /= mask.sum(axis=axis_n, keepdims=True)
        return (mask * g,)

    return build(out_data, (a,), backward)


# --------------------------------------------------------------------- shape


def reshape(a, *shape) -> Tensor:
    a = ensure_tensor(a)
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    out_data = a.data.reshape(shape)
    return build(out_data, (a,), lambda g: (g.reshape(a.shape),))


def transpose(a, *axes) -> Tensor:
    a = ensure_tensor(a)
    if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
        axes = tuple(axes[0])
    if not axes:
        axes = tuple(reversed(range(a.ndim)))
    inverse = np.argsort(axes)
    return build(a.data.transpose(axes), (a,), lambda g: (g.transpose(inverse),))


def getitem(a, index) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data[index]

    def backward(g):
        grad = np.zeros_like(a.data)
        np.add.at(grad, index, g)
        return (grad,)

    return build(out_data, (a,), backward)


def concatenate(tensors, axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("need at least one tensor to concatenate")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, splits, axis=axis))

    return build(out_data, tuple(tensors), backward)


def pad2d(a, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) dims of an NCHW tensor."""
    a = ensure_tensor(a)
    if padding < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")
    if padding == 0:
        return a
    p = padding
    widths = [(0, 0)] * (a.ndim - 2) + [(p, p), (p, p)]
    out_data = np.pad(a.data, widths)
    sl = (Ellipsis, slice(p, -p), slice(p, -p))
    return build(out_data, (a,), lambda g: (g[sl],))


# ----------------------------------------------------- patch Tensor methods

Tensor.__add__ = add
Tensor.__radd__ = lambda self, other: add(other, self)
Tensor.__sub__ = sub
Tensor.__rsub__ = lambda self, other: sub(other, self)
Tensor.__mul__ = mul
Tensor.__rmul__ = lambda self, other: mul(other, self)
Tensor.__truediv__ = div
Tensor.__rtruediv__ = lambda self, other: div(other, self)
Tensor.__neg__ = neg
Tensor.__pow__ = power
Tensor.__matmul__ = matmul
Tensor.__getitem__ = getitem
Tensor.sum = tensor_sum
Tensor.mean = tensor_mean
Tensor.max = tensor_max
Tensor.reshape = reshape
Tensor.transpose = transpose
Tensor.exp = exp
Tensor.log = log
Tensor.sqrt = sqrt
Tensor.relu = relu
Tensor.tanh = tanh
Tensor.sigmoid = sigmoid
Tensor.abs = absolute
