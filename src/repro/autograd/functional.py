"""Fused deep-learning kernels with hand-written gradients.

Convolution and pooling use ``sliding_window_view``-based im2col so that the
heavy lifting happens inside BLAS / vectorized NumPy, per the project's
performance guidelines.  Batch norm and cross entropy are fused because the
composed-primitives versions are both slower and less numerically stable.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.autograd.tensor import Tensor, build, ensure_tensor

# ------------------------------------------------------------------ helpers


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid conv geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int):
    """Extract convolution patches.

    Returns ``(cols, oh, ow)`` where ``cols`` has shape
    ``(N * oh * ow, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))[:, :, ::stride, ::stride]
    # (N, C, oh, ow, kh, kw) -> (N, oh, ow, C, kh, kw)
    cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))
    return cols.reshape(n * oh * ow, c * kh * kw), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Scatter-add im2col patches back into an image (conv input gradient)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    dx = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    # (N*oh*ow, C*kh*kw) -> (N, oh, ow, C, kh, kw) -> (N, C, kh, kw, oh, ow)
    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        hi = i + stride * oh
        for j in range(kw):
            wj = j + stride * ow
            dx[:, :, i:hi:stride, j:wj:stride] += patches[:, :, i, j]
    if padding:
        dx = dx[:, :, padding:-padding, padding:-padding]
    return dx


# -------------------------------------------------------------- convolution


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` has shape ``(F, C, KH, KW)``; ``bias`` shape ``(F,)``.
    """
    x, weight = ensure_tensor(x), ensure_tensor(weight)
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError(
            f"conv2d expects 4-D input/weight, got {x.shape} and {weight.shape}"
        )
    n, c, h, w = x.shape
    f, cw, kh, kw = weight.shape
    if c != cw:
        raise ValueError(f"input channels {c} != weight channels {cw}")

    cols, oh, ow = _im2col(x.data, kh, kw, stride, padding)
    wmat = weight.data.reshape(f, -1)
    out = cols @ wmat.T  # (N*oh*ow, F)
    if bias is not None:
        out += ensure_tensor(bias).data
    out = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, ensure_tensor(bias))

    def backward(g):
        gcols = g.transpose(0, 2, 3, 1).reshape(-1, f)  # (N*oh*ow, F)
        gw = (gcols.T @ cols).reshape(weight.shape)
        gx = _col2im(gcols @ wmat, x.shape, kh, kw, stride, padding, oh, ow)
        if bias is None:
            return gx, gw
        return gx, gw, gcols.sum(axis=0)

    return build(out, parents, backward)


def linear(x, weight, bias=None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for 2-D ``x``."""
    x, weight = ensure_tensor(x), ensure_tensor(weight)
    out = x.data @ weight.data.T
    if bias is not None:
        out = out + ensure_tensor(bias).data
    parents = (x, weight) if bias is None else (x, weight, ensure_tensor(bias))

    def backward(g):
        gx = g @ weight.data
        gw = g.T @ x.data
        if bias is None:
            return gx, gw
        return gx, gw, g.sum(axis=0)

    return build(out, parents, backward)


# ------------------------------------------------------------------ pooling


def max_pool2d(x, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over NCHW input (no padding)."""
    x = ensure_tensor(x)
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    oh = conv_output_size(h, k, s, 0)
    ow = conv_output_size(w, k, s, 0)
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    flat = windows.reshape(n, c, oh, ow, k * k)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(g):
        dx = np.zeros_like(x.data)
        # Convert window-local argmax to absolute (row, col) indices.
        ki, kj = np.divmod(arg, k)
        rows = ki + s * np.arange(oh)[None, None, :, None]
        cols = kj + s * np.arange(ow)[None, None, None, :]
        ni = np.arange(n)[:, None, None, None]
        ci = np.arange(c)[None, :, None, None]
        if s >= k:  # disjoint windows: argmax cells are unique, so the
            # unbuffered np.add.at scatter reduces to a plain (much
            # faster) fancy assignment with identical values.
            dx[ni, ci, rows, cols] = g
        else:
            np.add.at(dx, (ni, ci, rows, cols), g)
        return (dx,)

    return build(out, (x,), backward)


def avg_pool2d(x, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling over NCHW input (no padding)."""
    x = ensure_tensor(x)
    k = kernel_size
    s = stride or k
    n, c, h, w = x.shape
    oh = conv_output_size(h, k, s, 0)
    ow = conv_output_size(w, k, s, 0)
    windows = sliding_window_view(x.data, (k, k), axis=(2, 3))[:, :, ::s, ::s]
    out = windows.mean(axis=(-2, -1))

    def backward(g):
        dx = np.zeros_like(x.data)
        g_scaled = g / (k * k)
        # Broadcasted scatter over all k*k in-window offsets at once: the
        # (oh, k) row and (ow, k) column grids enumerate every input cell
        # each output cell averaged over.
        rows = s * np.arange(oh)[:, None] + np.arange(k)  # (oh, k)
        cols = s * np.arange(ow)[:, None] + np.arange(k)  # (ow, k)
        idx = (
            slice(None),
            slice(None),
            rows[:, :, None, None],
            cols[None, None, :, :],
        )
        vals = g_scaled[:, :, :, None, :, None]  # -> (N, C, oh, k, ow, k)
        if s >= k:  # windows are disjoint: plain fancy assignment suffices
            dx[idx] = vals
        else:  # overlapping windows: indices repeat, so accumulate
            np.add.at(dx, idx, vals)
        return (dx,)

    return build(out, (x,), backward)


def global_avg_pool2d(x) -> Tensor:
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""
    x = ensure_tensor(x)
    n, c, h, w = x.shape
    out = x.data.mean(axis=(2, 3))

    def backward(g):
        return (np.broadcast_to(g[:, :, None, None], x.shape) / (h * w),)

    return build(out, (x,), backward)


def upsample_nearest2d(x, scale: int) -> Tensor:
    """Nearest-neighbour upsampling of NCHW input by an integer factor."""
    x = ensure_tensor(x)
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    out = x.data.repeat(scale, axis=2).repeat(scale, axis=3)
    n, c, h, w = x.shape

    def backward(g):
        return (g.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5)),)

    return build(out, (x,), backward)


# --------------------------------------------------------------- batch norm


def batch_norm(
    x,
    gamma,
    beta,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Fused batch normalization over the channel axis.

    Supports NCHW (per-channel over N, H, W) and NC (per-feature over N)
    inputs.  In training mode batch statistics are used and the running
    buffers are updated in place; in eval mode the running buffers are used.
    """
    x, gamma, beta = ensure_tensor(x), ensure_tensor(gamma), ensure_tensor(beta)
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.shape}")
    m = x.size // x.shape[1]

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        # Unbiased variance for the running estimate, as torch does.
        bias_correction = m / max(m - 1, 1)
        running_var *= 1.0 - momentum
        running_var += momentum * var * bias_correction
    else:
        mean, var = running_mean, running_var

    invstd = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mean.reshape(shape)) * invstd.reshape(shape)
    out = gamma.data.reshape(shape) * xhat + beta.data.reshape(shape)

    def backward(g):
        gbeta = g.sum(axis=axes)
        ggamma = (g * xhat).sum(axis=axes)
        gxhat = g * gamma.data.reshape(shape)
        if training:
            gx = (
                gxhat
                - gxhat.mean(axis=axes, keepdims=True)
                - xhat * (gxhat * xhat).mean(axis=axes, keepdims=True)
            ) * invstd.reshape(shape)
        else:
            gx = gxhat * invstd.reshape(shape)
        return gx, ggamma, gbeta

    return build(out, (x, gamma, beta), backward)


# --------------------------------------------------- softmax / cross-entropy


def softmax(x, axis: int = -1) -> Tensor:
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return build(out, (x,), backward)


def log_softmax(x, axis: int = -1) -> Tensor:
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp

    def backward(g):
        return (g - np.exp(out) * g.sum(axis=axis, keepdims=True),)

    return build(out, (x,), backward)


def cross_entropy(logits, targets) -> Tensor:
    """Mean cross-entropy between ``logits (N, K)`` and int ``targets (N,)``."""
    logits = ensure_tensor(logits)
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets)
    if targets.ndim != 1 or logits.ndim != 2:
        raise ValueError(
            f"expected logits (N, K) and targets (N,), got {logits.shape}, {targets.shape}"
        )
    targets = targets.astype(np.int64)
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logprobs = shifted - logsumexp
    loss = -logprobs[np.arange(n), targets].mean()

    def backward(g):
        grad = np.exp(logprobs)
        grad[np.arange(n), targets] -= 1.0
        return (grad * (g / n),)

    return build(np.asarray(loss, dtype=logits.dtype), (logits,), backward)


def dropout(x, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - p)``."""
    x = ensure_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.shape) >= p) / (1.0 - p)
    keep = keep.astype(x.dtype)
    return build(x.data * keep, (x,), lambda g: (g * keep,))
