"""The :class:`Tensor` class: a NumPy array with reverse-mode autodiff.

Gradients flow through a dynamically built tape.  Each op attaches to its
output a ``_backward`` closure that scatters the output gradient into the
inputs; ``Tensor.backward`` walks the tape in reverse topological order.

Graph construction can be disabled globally with the :func:`no_grad` context
manager, which evaluation loops use to avoid tape overhead.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Whether ops currently record a backward graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum dims that were 1 in the original shape but expanded by broadcast.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an optional gradient and backward graph.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless it already has a
        floating dtype.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ info
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return self.data.item()

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # -------------------------------------------------------------- backward
    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (creating it if absent)."""
        if self.grad is None:
            # Copy so in-place += later never aliases an op's scratch buffer.
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------- operators
    # Implemented in ops.py and patched onto the class to avoid an import
    # cycle; declared here for discoverability / static tooling.
    def __add__(self, other): ...
    def __radd__(self, other): ...
    def __sub__(self, other): ...
    def __rsub__(self, other): ...
    def __mul__(self, other): ...
    def __rmul__(self, other): ...
    def __truediv__(self, other): ...
    def __rtruediv__(self, other): ...
    def __neg__(self): ...
    def __pow__(self, exponent): ...
    def __matmul__(self, other): ...
    def __getitem__(self, index): ...

    def sum(self, axis=None, keepdims: bool = False): ...
    def mean(self, axis=None, keepdims: bool = False): ...
    def reshape(self, *shape): ...
    def transpose(self, *axes): ...
    def exp(self): ...
    def log(self): ...
    def sqrt(self): ...
    def relu(self): ...
    def tanh(self): ...
    def sigmoid(self): ...
    def abs(self): ...

    @property
    def T(self) -> "Tensor":
        return self.transpose()


def ensure_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (constants get no grad)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def build(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward: Callable[[np.ndarray], Iterable[np.ndarray | None]],
) -> Tensor:
    """Construct an op output tensor.

    ``backward`` maps the output gradient to one gradient (or ``None``) per
    parent, in order.  When grad mode is off or no parent requires grad the
    output is a detached leaf.
    """
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._prev = tuple(parents)

        def _backward() -> None:
            grads = backward(out.grad)
            for parent, g in zip(out._prev, grads):
                if parent.requires_grad and g is not None:
                    parent.accumulate_grad(g)

        out._backward = _backward
    return out
