"""Finite-difference gradient checking for autograd ops.

Used by the test suite to verify every analytic gradient in
:mod:`repro.autograd.ops` and :mod:`repro.autograd.functional` against
central differences in float64.

The numeric side is vectorized: instead of two forward passes per scalar,
the ± eps perturbations are stacked along a new leading axis and evaluated
in chunks, one ``fn`` call per chunk.  That only works for functions that
broadcast over (and never mix) the extra axis — elementwise ops, matmul —
so the batched result is spot-checked against the scalar path and the
whole computation falls back to the per-scalar loop on any shape mismatch,
exception, or spot-check disagreement.  Either way evaluation runs under
``no_grad()``: finite differences never need the backward graph.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, no_grad


def _scalar_eval(fn: Callable[..., Tensor], inputs: Sequence[Tensor]) -> float:
    return float(fn(*inputs).data.sum())


def _loop_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float,
    indices: np.ndarray | None = None,
) -> np.ndarray:
    """Reference path: one ± evaluation pair per scalar (optionally a subset)."""
    target = inputs[wrt]
    grad = np.zeros(target.data.size, dtype=np.float64)
    flat = target.data.reshape(-1)
    index_iter = range(flat.size) if indices is None else indices
    for i in index_iter:
        orig = flat[i]
        flat[i] = orig + eps
        plus = _scalar_eval(fn, inputs)
        flat[i] = orig - eps
        minus = _scalar_eval(fn, inputs)
        flat[i] = orig
        grad[i] = (plus - minus) / (2 * eps)
    return grad.reshape(target.data.shape) if indices is None else grad


def _batched_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float,
    chunk: int,
) -> np.ndarray | None:
    """Chunked fast path; ``None`` when ``fn`` cannot be batched this way."""
    target = inputs[wrt]
    base = target.data
    n = base.size
    base_out_shape = fn(*inputs).data.shape
    grad = np.empty(n, dtype=np.float64)
    for start in range(0, n, chunk):
        idx = np.arange(start, min(start + chunk, n))
        b = idx.size
        tiled = np.repeat(base[None].astype(np.float64, copy=False), 2 * b, axis=0)
        flat = tiled.reshape(2 * b, n)
        flat[np.arange(b), idx] += eps
        flat[np.arange(b, 2 * b), idx] -= eps
        perturbed = [
            Tensor(tiled) if i == wrt else t for i, t in enumerate(inputs)
        ]
        try:
            out = fn(*perturbed).data
        except Exception:
            return None
        if out.shape != (2 * b, *base_out_shape):
            return None
        sums = out.reshape(2 * b, -1).sum(axis=1, dtype=np.float64)
        grad[idx] = (sums[:b] - sums[b:]) / (2 * eps)
    return grad.reshape(base.shape)


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-5,
    chunk: int = 128,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Tries the batched path first and validates it by recomputing a couple
    of entries through the scalar loop — a function that silently mixes
    values across the perturbation axis (e.g. indexing into it) produces a
    disagreement there and is recomputed entirely by the loop.
    """
    target = inputs[wrt]
    with no_grad():
        batched = _batched_gradient(fn, inputs, wrt, eps, chunk)
        if batched is not None:
            probe = np.unique([0, target.data.size - 1])
            reference = _loop_gradient(fn, inputs, wrt, eps, indices=probe)
            flat = batched.reshape(-1)
            scale = max(np.abs(reference).max(), np.abs(flat[probe]).max(), 1.0)
            if np.allclose(flat[probe], reference[probe], atol=1e-6 * scale):
                return batched
        return _loop_gradient(fn, inputs, wrt, eps)


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-5,
) -> bool:
    """Check analytic vs numeric gradients for every grad-requiring input.

    Inputs should be float64 for reliable finite differences.  ``fn`` need
    not reduce to a scalar: the output is summed (backward seeds with
    ones), and un-reduced outputs let the numeric side use its vectorized
    path.  Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        analytic = np.zeros_like(t.data) if t.grad is None else t.grad
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True


def randn_tensor(
    rng: np.random.Generator, *shape: int, requires_grad: bool = True, scale: float = 1.0
) -> Tensor:
    """Float64 standard-normal tensor for gradcheck fixtures."""
    return Tensor(
        (rng.standard_normal(shape) * scale).astype(np.float64),
        requires_grad=requires_grad,
    )
