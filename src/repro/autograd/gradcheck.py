"""Finite-difference gradient checking for autograd ops.

Used by the test suite to verify every analytic gradient in
:mod:`repro.autograd.ops` and :mod:`repro.autograd.functional` against
central differences in float64.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = orig - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = orig
        grad.reshape(-1)[i] = (plus - minus) / (2 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-5,
) -> bool:
    """Check analytic vs numeric gradients for every grad-requiring input.

    Inputs should be float64 for reliable finite differences.  Raises
    ``AssertionError`` with a diagnostic message on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        analytic = np.zeros_like(t.data) if t.grad is None else t.grad
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True


def randn_tensor(
    rng: np.random.Generator, *shape: int, requires_grad: bool = True, scale: float = 1.0
) -> Tensor:
    """Float64 standard-normal tensor for gradcheck fixtures."""
    return Tensor(
        (rng.standard_normal(shape) * scale).astype(np.float64),
        requires_grad=requires_grad,
    )
