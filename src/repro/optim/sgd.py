"""Stochastic gradient descent with momentum, Nesterov, and weight decay.

Matches the PyTorch SGD update rule the paper's training recipes use:

    v <- momentum * v + (grad + wd * w)
    w <- w - lr * (v                    if not nesterov
                   grad + wd*w + momentum*v  if nesterov)
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """SGD optimizer over an explicit parameter list."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using each parameter's accumulated gradient."""
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                grad = grad + self.momentum * v if self.nesterov else v
            p.data -= self.lr * grad

    def apply(self, grads: Iterable[np.ndarray | None]) -> None:
        """One update from externally computed gradients, in ``params`` order.

        The compiled-training epilogue: identical arithmetic (and shared
        momentum state) with :meth:`step`, but gradients arrive as a list
        instead of ``p.grad``.  Entries may be ``None`` (parameter got no
        gradient) and are never mutated — a pass-through backward rule can
        hand the same array to two parameters.
        """
        for i, (p, grad) in enumerate(zip(self.params, grads)):
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                grad = grad + self.momentum * v if self.nesterov else v
            p.data -= self.lr * grad

    def reset_state(self) -> None:
        """Clear momentum buffers (used when a retrain phase restarts)."""
        self._velocity = [None] * len(self.params)
