"""Learning-rate schedules.

Schedules are pure functions of training progress: ``schedule(epoch)``
returns the multiplicative factor applied to the base learning rate, where
``epoch`` may be fractional (epoch + batch fraction) so warm-up and
polynomial decay can update every step, as in the paper's recipes.
"""

from __future__ import annotations

from typing import Protocol, Sequence


class LRSchedule(Protocol):
    """A multiplicative learning-rate factor as a function of (fractional) epoch."""

    def __call__(self, epoch: float) -> float: ...


class ConstantLR:
    """Factor 1 everywhere."""

    def __call__(self, epoch: float) -> float:
        return 1.0


class MultiStepLR:
    """Multiply by ``gamma`` at each milestone epoch (e.g. ``0.1@{91, 136}``)."""

    def __init__(self, milestones: Sequence[float], gamma: float):
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def __call__(self, epoch: float) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.gamma**passed


class StepEveryLR:
    """Multiply by ``gamma`` every ``period`` epochs (e.g. ``0.5@{30, ...}``)."""

    def __init__(self, period: float, gamma: float):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.gamma = gamma

    def __call__(self, epoch: float) -> float:
        return self.gamma ** int(epoch // self.period)


class PolynomialLR:
    """``(1 - epoch/total)^power`` decay, the DeeplabV3 recipe (Table 7)."""

    def __init__(self, total_epochs: float, power: float = 0.9):
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.total_epochs = total_epochs
        self.power = power

    def __call__(self, epoch: float) -> float:
        remaining = max(1.0 - epoch / self.total_epochs, 0.0)
        return remaining**self.power


class WarmupLR:
    """Linear warm-up from 0 to the base schedule over ``warmup_epochs``."""

    def __init__(self, base: LRSchedule, warmup_epochs: float):
        if warmup_epochs < 0:
            raise ValueError(f"warmup_epochs must be >= 0, got {warmup_epochs}")
        self.base = base
        self.warmup_epochs = warmup_epochs

    def __call__(self, epoch: float) -> float:
        if self.warmup_epochs and epoch < self.warmup_epochs:
            return self.base(epoch) * (epoch / self.warmup_epochs)
        return self.base(epoch)
