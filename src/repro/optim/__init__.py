"""Optimizers and learning-rate schedules (Tables 3/5/7 of the paper)."""

from repro.optim.sgd import SGD
from repro.optim.schedules import (
    ConstantLR,
    LRSchedule,
    MultiStepLR,
    PolynomialLR,
    StepEveryLR,
    WarmupLR,
)

__all__ = [
    "SGD",
    "LRSchedule",
    "ConstantLR",
    "MultiStepLR",
    "StepEveryLR",
    "PolynomialLR",
    "WarmupLR",
]
