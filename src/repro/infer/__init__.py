"""Fast no-grad inference: trace → compile → flat numpy forward plan.

Entry point for consumers is :func:`engine_for`; the pieces underneath
(:func:`trace`, :class:`CompiledPlan`) are exported for tests and the
``repro.verify`` plan-parity oracle.
"""

from repro.infer.engine import (
    ENV_VAR,
    InferenceEngine,
    adopt_engine,
    enabled,
    engine_for,
)
from repro.infer.grad import GradPlan
from repro.infer.plan import CompiledPlan, CompileError
from repro.infer.trace import (
    Graph,
    Node,
    TraceError,
    TrainGraph,
    trace,
    trace_training,
)
from repro.infer.trainengine import (
    ENV_VAR_TRAIN,
    TrainEngine,
    train_enabled,
    train_engine_for,
)

__all__ = [
    "ENV_VAR",
    "ENV_VAR_TRAIN",
    "CompiledPlan",
    "CompileError",
    "GradPlan",
    "Graph",
    "InferenceEngine",
    "Node",
    "TraceError",
    "TrainEngine",
    "TrainGraph",
    "adopt_engine",
    "enabled",
    "engine_for",
    "trace",
    "trace_training",
    "train_enabled",
    "train_engine_for",
]
