"""Fast no-grad inference: trace → compile → flat numpy forward plan.

Entry point for consumers is :func:`engine_for`; the pieces underneath
(:func:`trace`, :class:`CompiledPlan`) are exported for tests and the
``repro.verify`` plan-parity oracle.
"""

from repro.infer.engine import (
    ENV_VAR,
    InferenceEngine,
    enabled,
    engine_for,
)
from repro.infer.plan import CompiledPlan, CompileError
from repro.infer.trace import Graph, Node, TraceError, trace

__all__ = [
    "ENV_VAR",
    "CompiledPlan",
    "CompileError",
    "Graph",
    "InferenceEngine",
    "Node",
    "TraceError",
    "enabled",
    "engine_for",
    "trace",
]
