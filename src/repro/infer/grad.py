"""Compile a traced :class:`~repro.infer.trace.TrainGraph` into a gradient plan.

The backward pass is *derived*, not traced: :func:`_derive_backward` replays
``Tensor.backward``'s depth-first walk over the traced forward graph and, for
every op, emits kernel nodes computing exactly the arithmetic of the op's
backward closure in :mod:`repro.autograd.ops` / ``functional``.  Gradient
accumulation is materialized as explicit ``add_acc`` nodes emitted in the
same (reverse-topological node order, then parent-position order) the tape
uses — float addition is not associative, so an exact plan must replay the
tape's accumulation order bit for bit, not just its dataflow.

Two kernel tables back one derivation:

- **exact** — convolution backward recomputes the module's im2col/col2im
  route and the whole plan replays the tape's floating-point arithmetic
  bit-for-bit (the reference mode differential oracles compare against);
- **fast** — per-offset GEMM conv backward sharing the forward kernel's
  padded channel-first scratch, a fused ``conv → BN → ReLU`` forward with
  one matching fused backward, and in-place elementwise rewrites; it is
  validated against the tape within a scale-aware tolerance at compile time.

Unlike eval plans, gradient plans hold **no parameter snapshots**: SGD
mutates weights every batch, so ``param``/``buffer`` leaves are re-bound
from the live model on every :meth:`GradPlan.run`.  Plan kernels never
write into leaf slots (in-place rewrites are restricted to buffers the plan
itself produced), which is what makes live binding safe.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.functional import _col2im, _im2col
from repro.infer.plan import KERNELS, CompileError, _k_conv2d, _k_conv2d_exact
from repro.infer.trace import Node, TrainGraph
from repro.nn.module import Module

_LEAF_OPS = ("input", "param", "buffer", "value", "label")

# ----------------------------------------------------------- forward kernels
# Training-mode ops the eval table does not have.  Tuple-valued kernels
# return the saved intermediates their backward needs (the tape keeps them
# alive in closures; a static plan keeps them in the tuple slot).


def _bn_axes(ndim):
    return ((0, 2, 3), (1, -1, 1, 1)) if ndim == 4 else ((0,), (1, -1))


def _k_bn_train(args, params):
    x, gamma, beta = args
    axes, shape = _bn_axes(params["ndim"])
    mean = x.mean(axis=axes)
    var = x.var(axis=axes)
    invstd = 1.0 / np.sqrt(var + params["eps"])
    xhat = (x - mean.reshape(shape)) * invstd.reshape(shape)
    out = gamma.reshape(shape) * xhat + beta.reshape(shape)
    return (out, xhat, invstd, mean, var)


def _k_bn_train_bwd(args, params):
    g, tup, gamma = args
    _, xhat, invstd, _, _ = tup
    axes, shape = _bn_axes(params["ndim"])
    gbeta = g.sum(axis=axes)
    ggamma = (g * xhat).sum(axis=axes)
    gxhat = g * gamma.reshape(shape)
    gx = (
        gxhat
        - gxhat.mean(axis=axes, keepdims=True)
        - xhat * (gxhat * xhat).mean(axis=axes, keepdims=True)
    ) * invstd.reshape(shape)
    return (gx, ggamma, gbeta)


def _k_max_pool2d_train(args, params):
    x, k, s = args[0], params["kernel"], params["stride"]
    n, c = x.shape[0], x.shape[1]
    windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
    windows = windows[:, :, ::s, ::s]
    oh, ow = windows.shape[2], windows.shape[3]
    flat = windows.reshape(n, c, oh, ow, k * k)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return (out, arg)


def _k_max_pool2d_bwd(args, params):
    # np.zeros_like (not np.zeros): the tape allocates dx with the
    # forward input's memory layout, and downstream axis-reductions
    # associate differently on different layouts — bitwise parity needs
    # the same strides, not just the same values.
    g, tup, x = args
    arg = tup[1]
    k, s = params["kernel"], params["stride"]
    n, c, oh, ow = g.shape
    dx = np.zeros_like(x)
    ki, kj = np.divmod(arg, k)
    rows = ki + s * np.arange(oh)[None, None, :, None]
    cols = kj + s * np.arange(ow)[None, None, None, :]
    ni = np.arange(n)[:, None, None, None]
    ci = np.arange(c)[None, :, None, None]
    if s >= k:  # disjoint windows: argmax cells are unique, assign directly
        dx[ni, ci, rows, cols] = g
    else:
        np.add.at(dx, (ni, ci, rows, cols), g)
    return dx


def _k_cross_entropy(args, params):
    logits, targets = args
    targets = np.asarray(targets).astype(np.int64)
    n = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logprobs = shifted - logsumexp
    loss = -logprobs[np.arange(n), targets].mean()
    return (np.asarray(loss, dtype=logits.dtype), logprobs)


def _k_cross_entropy_bwd(args, params):
    g, tup, targets = args
    logprobs = tup[1]
    targets = np.asarray(targets).astype(np.int64)
    n = logprobs.shape[0]
    grad = np.exp(logprobs)
    grad[np.arange(n), targets] -= 1.0
    return grad * (g / n)


def _k_tuple_get(args, params):
    return args[0][params["index"]]


# ---------------------------------------------------------- backward kernels
# Each replicates the corresponding autograd backward closure's arithmetic
# expression for expression (same operand order, same intermediate shapes).


def _k_unbroadcast(args, params):
    grad, shape = args[0], params["shape"]
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _k_add_acc(args, params):
    return args[0] + args[1]


def _k_relu_bwd(args, params):
    g, out = args
    return g * (out > 0)  # out>0 ⟺ pre-relu>0, also after in-place forward


def _k_tanh_bwd(args, params):
    g, out = args
    return g * (1.0 - out * out)


def _k_sigmoid_bwd(args, params):
    g, out = args
    return g * out * (1.0 - out)


def _k_sqrt_bwd(args, params):
    g, out = args
    return g / (2.0 * out)


def _k_abs_bwd(args, params):
    g, a = args
    return g * np.sign(a)


def _k_power_bwd(args, params):
    g, a = args
    e = params["exponent"]
    return g * e * a ** (e - 1)


def _k_maximum_bwd_a(args, params):
    g, a, b = args
    return g * (a >= b)


def _k_maximum_bwd_b(args, params):
    g, a, b = args
    return g * ~(a >= b)


def _k_clip_bwd(args, params):
    g, a = args
    return g * ((a >= params["low"]) & (a <= params["high"]))


def _norm_axis(axis, ndim):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def _k_sum_bwd(args, params):
    g, shape = args[0], params["shape"]
    axis = _norm_axis(params["axis"], len(shape))
    if axis is not None and not params["keepdims"]:
        g = np.expand_dims(g, axis)
    return np.broadcast_to(g, shape).copy()


def _k_mean_bwd(args, params):
    g, shape = args[0], params["shape"]
    axis = _norm_axis(params["axis"], len(shape))
    count = (
        int(np.prod(shape))
        if axis is None
        else int(np.prod([shape[ax] for ax in axis]))
    )
    if axis is not None and not params["keepdims"]:
        g = np.expand_dims(g, axis)
    return np.broadcast_to(g, shape) / count


def _k_max_bwd(args, params):
    g, a, out = args
    axis = _norm_axis(params["axis"], a.ndim)
    expanded = out
    if axis is not None and not params["keepdims"]:
        expanded = np.expand_dims(out, axis)
        g = np.expand_dims(g, axis)
    mask = (a == expanded).astype(a.dtype)
    mask /= mask.sum(axis=axis, keepdims=True)
    return mask * g


def _k_getitem_bwd(args, params):
    g, x = args
    grad = np.zeros_like(x)  # layout-preserving, matching the tape
    np.add.at(grad, params["index"], g)
    return grad


def _k_slice_axis(args, params):
    # One operand of concatenate's backward np.split: a view, so the node
    # must be in the aliased set.
    index = [slice(None)] * args[0].ndim
    index[params["axis"]] = slice(params["lo"], params["hi"])
    return args[0][tuple(index)]


def _k_unpad2d(args, params):
    p = params["padding"]
    return args[0][(Ellipsis, slice(p, -p), slice(p, -p))]


def _k_matmul_bwd_a(args, params):
    g, b = args
    return g @ np.swapaxes(b, -1, -2)


def _k_matmul_bwd_b(args, params):
    a, g = args
    return np.swapaxes(a, -1, -2) @ g


def _k_linear_bwd_x(args, params):
    g, w = args
    return g @ w


def _k_linear_bwd_w(args, params):
    g, x = args
    return g.T @ x


def _k_linear_bwd_b(args, params):
    return args[0].sum(axis=0)


def _k_softmax_bwd(args, params):
    g, out = args
    dot = (g * out).sum(axis=params["axis"], keepdims=True)
    return out * (g - dot)


def _k_log_softmax_bwd(args, params):
    g, out = args
    return g - np.exp(out) * g.sum(axis=params["axis"], keepdims=True)


def _k_gap_bwd(args, params):
    g, shape = args[0], params["shape"]
    h, w = shape[2], shape[3]
    return np.broadcast_to(g[:, :, None, None], shape) / (h * w)


def _k_upsample_bwd(args, params):
    g, s = args[0], params["scale"]
    n, c, h, w = params["shape"]
    return g.reshape(n, c, h, s, w, s).sum(axis=(3, 5))


def _k_avg_pool_bwd(args, params):
    g, x = args
    k, s = params["kernel"], params["stride"]
    oh, ow = g.shape[2], g.shape[3]
    dx = np.zeros_like(x)  # layout-preserving, matching the tape
    g_scaled = g / (k * k)
    rows = s * np.arange(oh)[:, None] + np.arange(k)
    cols = s * np.arange(ow)[:, None] + np.arange(k)
    idx = (slice(None), slice(None), rows[:, :, None, None], cols[None, None, :, :])
    vals = g_scaled[:, :, :, None, :, None]
    if s >= k:
        dx[idx] = vals
    else:
        np.add.at(dx, idx, vals)
    return dx


# -------------------------------------------------------- convolution backward
# The fast weight gradient reuses the forward conv's persistent padded
# channel-first scratch (``params["_fwd"]`` points at the forward node's
# params dict, wired after plan-local node copies are made): at backward
# time the scratch still holds this batch's padded input, so ``gw`` needs
# no gather at all — one contiguous-view tensordot per kernel offset.


def _conv_grad_w(g, x, params):
    f, c, kh, kw = params["wshape"]
    stride, padding = params["stride"], params["padding"]
    n, _, oh, ow = g.shape
    gw = np.empty(params["wshape"], dtype=g.dtype)
    fwd = params.get("_fwd")
    scratch = fwd.get("_scratch") if params.get("_use_shared") and fwd else None
    if scratch is not None and scratch[0].shape[:2] == (c, n):
        xp = scratch[0]  # (c, n, hp, wp), interior = this batch (stride 1)
        gt = g.transpose(1, 0, 2, 3)
        for dy in range(kh):
            for dx in range(kw):
                gw[:, :, dy, dx] = np.tensordot(
                    gt, xp[:, :, dy : dy + oh, dx : dx + ow],
                    axes=([1, 2, 3], [1, 2, 3]),
                )
        return gw
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    for dy in range(kh):
        for dx in range(kw):
            xs = x[:, :, dy : dy + stride * oh : stride, dx : dx + stride * ow : stride]
            gw[:, :, dy, dx] = np.tensordot(g, xs, axes=([0, 2, 3], [0, 2, 3]))
    return gw


# Below this many output pixels the transposed-convolution formulation of
# the input gradient (flat C-contiguous accumulator, one GEMM per kernel
# offset) beats accumulating GEMM results into overlapping strided slices
# of the padded buffer; at larger spatial extents the window-gather copies
# it needs start to dominate and the strided-accumulation route wins.
_GX_FLAT_MAX_PIXELS = 100


def _conv_grad_x(g, w, params):
    n, c, h, wi = params["xshape"]
    f, _, kh, kw = w.shape
    stride, padding = params["stride"], params["padding"]
    hp, wp = h + 2 * padding, wi + 2 * padding
    oh, ow = g.shape[2], g.shape[3]
    if stride == 1 and oh * ow <= _GX_FLAT_MAX_PIXELS:
        py, px = kh - 1 - padding, kw - 1 - padding
        if py >= 0 and px >= 0:
            return _conv_grad_x_flat(g, w, params, py, px)
    scratch = params.get("_scratch_gx")
    if scratch is None or scratch[0].shape != (c, n, hp, wp):
        scratch = (
            np.zeros((c, n, hp, wp), dtype=g.dtype),
            np.empty((c, n * oh * ow), dtype=g.dtype),
        )
        params["_scratch_gx"] = scratch
    gxp, tbuf = scratch
    gxp.fill(0.0)
    gt = np.ascontiguousarray(g.transpose(1, 0, 2, 3)).reshape(f, -1)
    for dy in range(kh):
        for dx in range(kw):
            np.matmul(w[:, :, dy, dx].T, gt, out=tbuf)
            gxp[
                :, :, dy : dy + stride * oh : stride, dx : dx + stride * ow : stride
            ] += tbuf.reshape(c, n, oh, ow)
    interior = gxp[:, :, padding : padding + h, padding : padding + wi]
    return np.ascontiguousarray(interior.transpose(1, 0, 2, 3))


def _conv_grad_x_flat(g, w, params, py, px):
    """Input gradient as a stride-1 transposed convolution.

    ``g`` is zero-padded channel-first and the spatially flipped kernel is
    applied per offset, accumulating into one flat ``(c, n*h*w)`` buffer —
    every write is a contiguous GEMM add, never a scatter into overlapping
    strided views.
    """
    n, c, h, wi = params["xshape"]
    f, _, kh, kw = w.shape
    oh, ow = g.shape[2], g.shape[3]
    gp_shape = (f, n, oh + 2 * py, ow + 2 * px)
    scratch = params.get("_scratch_gx_flat")
    if scratch is None or scratch[0].shape != gp_shape:
        scratch = (
            np.zeros(gp_shape, dtype=g.dtype),
            np.zeros((c, n * h * wi), dtype=g.dtype),
            np.empty((c, n * h * wi), dtype=g.dtype),
        )
        params["_scratch_gx_flat"] = scratch
    gp, acc, tbuf = scratch
    gp[:, :, py : py + oh, px : px + ow] = g.transpose(1, 0, 2, 3)
    acc.fill(0.0)
    for dy in range(kh):
        for dx in range(kw):
            win = gp[:, :, dy : dy + h, dx : dx + wi].reshape(f, -1)
            np.matmul(w[:, :, kh - 1 - dy, kw - 1 - dx].T, win, out=tbuf)
            acc += tbuf
    return np.ascontiguousarray(acc.reshape(c, n, h, wi).transpose(1, 0, 2, 3))


def _k_conv_bwd_w(args, params):
    g, x = args
    return _conv_grad_w(g, x, params)


def _k_conv_bwd_x(args, params):
    g, w = args
    return _conv_grad_x(g, w, params)


def _k_conv_bwd_b(args, params):
    return args[0].sum(axis=(0, 2, 3))


def _k_conv_bwd_w_exact(args, params):
    g, x = args
    f, _, kh, kw = params["wshape"]
    cols, _, _ = _im2col(x, kh, kw, params["stride"], params["padding"])
    gcols = g.transpose(0, 2, 3, 1).reshape(-1, f)
    return (gcols.T @ cols).reshape(params["wshape"])


def _k_conv_bwd_x_exact(args, params):
    g, w = args
    f, _, kh, kw = w.shape
    oh, ow = g.shape[2], g.shape[3]
    gcols = g.transpose(0, 2, 3, 1).reshape(-1, f)
    return _col2im(
        gcols @ w.reshape(f, -1), params["xshape"], kh, kw,
        params["stride"], params["padding"], oh, ow,
    )


def _k_conv_bwd_b_exact(args, params):
    # The tape sums the (N*oh*ow, F) gcols layout, whose pairwise-summation
    # order differs from g.sum((0, 2, 3)); replicate it exactly.
    g = args[0]
    f = g.shape[1]
    return g.transpose(0, 2, 3, 1).reshape(-1, f).sum(axis=0)


# ----------------------------------------------------- fused conv → BN → ReLU
# Fast mode only.  The fused tuple keeps the bn_train layout
# (out, xhat, invstd, mean, var) so the tracer's running-stat tuple_gets
# (indices 3/4) stay valid when the fusion pass replaces the bn node in
# place; ``out`` is post-ReLU.


def _chan_dot(a, b):
    """``(a * b).sum`` over all-but-channel axes, without the product array."""
    if a.ndim == 4:
        return np.einsum("nchw,nchw->c", a, b)
    return np.einsum("nc,nc->c", a, b)


def _k_conv_bn_relu(args, params):
    nca = params["n_conv_args"]
    y = _k_conv2d(args[:nca], params)
    gamma, beta = args[nca], args[nca + 1]
    axes, shape = _bn_axes(params["ndim"])
    mean = y.mean(axis=axes)
    # ``y`` is this kernel's own conv output, so it can be centred and
    # scaled in place, becoming the xhat the tuple hands to the backward.
    y -= mean.reshape(shape)
    var = (y * y).mean(axis=axes)
    invstd = 1.0 / np.sqrt(var + params["eps"])
    y *= invstd.reshape(shape)
    out = y * gamma.reshape(shape)
    out += beta.reshape(shape)
    np.maximum(out, 0.0, out=out)
    return (out, y, invstd, mean, var)


def _k_conv_bn_relu_bwd(args, params):
    g, tup, x, w, gamma = args
    y, xhat, invstd, _, _ = tup
    axes, shape = _bn_axes(params["ndim"])
    # Persistent per-node buffers, as in ``_k_bn_relu_train_bwd``: the
    # gated gradient never escapes this kernel (it is consumed by the
    # conv backward below, whose outputs are fresh), so warm reuse is
    # safe and skips the page-fault sweep of fresh multi-MB allocations.
    scratch = params.get("_scratch_bnr")
    if scratch is None or scratch[0].shape != g.shape:
        scratch = (
            np.empty_like(g),
            np.empty_like(g),
            np.empty(g.shape, dtype=bool),
        )
        params["_scratch_bnr"] = scratch
    gr, tmp, mask = scratch
    np.greater(y, 0.0, out=mask)
    np.multiply(g, mask, out=gr)
    gbeta = gr.sum(axis=axes)
    ggamma = _chan_dot(gr, xhat)
    # gz = (gamma * invstd) * (gr - gbeta/cnt - xhat * ggamma/cnt): the
    # batch means of gamma*gr and gamma*gr*xhat are gamma*gbeta/cnt and
    # gamma*ggamma/cnt, so the two reductions above are the only ones
    # needed; the whole chain runs in place on the scratch.
    cnt = gr.size // gr.shape[1]
    gr -= (gbeta / cnt).reshape(shape)
    np.multiply(xhat, (ggamma / cnt).reshape(shape), out=tmp)
    gr -= tmp
    gr *= (gamma * invstd).reshape(shape)
    gz = gr
    gw = _conv_grad_w(gz, x, params)
    gb = gz.sum(axis=(0, 2, 3)) if params["has_bias"] else None
    gx = _conv_grad_x(gz, w, params) if params["need_gx"] else None
    return (gx, gw, gb, ggamma, gbeta)


# Fast-table overrides of the shared (tape-replicating) BatchNorm train
# kernels: same arithmetic with the temporaries squeezed out — centring in
# a single allocated buffer, channel reductions via einsum instead of a
# materialized product.  Exact mode keeps the originals, whose operation
# order matches the tape bit for bit.


def _k_bn_train_fast(args, params):
    x, gamma, beta = args
    axes, shape = _bn_axes(params["ndim"])
    mean = x.mean(axis=axes)
    xhat = x - mean.reshape(shape)
    var = (xhat * xhat).mean(axis=axes)
    invstd = 1.0 / np.sqrt(var + params["eps"])
    xhat *= invstd.reshape(shape)
    out = xhat * gamma.reshape(shape)
    out += beta.reshape(shape)
    return (out, xhat, invstd, mean, var)


def _k_bn_train_bwd_fast(args, params):
    g, tup, gamma = args
    _, xhat, invstd, _, _ = tup
    axes, shape = _bn_axes(params["ndim"])
    gbeta = g.sum(axis=axes)
    ggamma = _chan_dot(g, xhat)
    cnt = g.size // g.shape[1]
    gx = g - (gbeta / cnt).reshape(shape)
    gx -= xhat * (ggamma / cnt).reshape(shape)
    gx *= (gamma * invstd).reshape(shape)
    return (gx, ggamma, gbeta)


# Fused BN → ReLU for pre-activation networks (DenseNet et al.), where no
# producing conv is available to absorb the triple.  The tuple keeps the
# bn_train slot layout; ``out`` is post-ReLU, and the backward gates on it
# (``max(z, 0) > 0  ⇔  z > 0``) before running the BN chain in place.


def _k_bn_relu_train(args, params):
    out, xhat, invstd, mean, var = _k_bn_train_fast(args, params)
    np.maximum(out, 0.0, out=out)
    return (out, xhat, invstd, mean, var)


def _k_bn_relu_train_bwd(args, params):
    g, tup, gamma = args
    out, xhat, invstd, _, _ = tup
    axes, shape = _bn_axes(params["ndim"])
    # Persistent per-node buffers: the gated gradient, an xhat-sized
    # temporary, and the ReLU mask.  Freshly mmapped multi-MB arrays cost
    # a page-fault sweep per touch; reusing warm buffers avoids it.  Only
    # ``gr`` escapes, and solely into downstream backward kernels whose
    # own outputs are freshly allocated, so no returned gradient aliases
    # these buffers across runs.
    scratch = params.get("_scratch_bnr")
    if scratch is None or scratch[0].shape != g.shape:
        scratch = (
            np.empty_like(g),
            np.empty_like(g),
            np.empty(g.shape, dtype=bool),
        )
        params["_scratch_bnr"] = scratch
    gr, tmp, mask = scratch
    np.greater(out, 0.0, out=mask)
    np.multiply(g, mask, out=gr)
    gbeta = gr.sum(axis=axes)
    ggamma = _chan_dot(gr, xhat)
    cnt = gr.size // gr.shape[1]
    gr -= (gbeta / cnt).reshape(shape)
    np.multiply(xhat, (ggamma / cnt).reshape(shape), out=tmp)
    gr -= tmp
    gr *= (gamma * invstd).reshape(shape)
    return (gr, ggamma, gbeta)


_TRAIN_KERNELS = {
    "bn_train": _k_bn_train,
    "bn_train_bwd": _k_bn_train_bwd,
    "max_pool2d_train": _k_max_pool2d_train,
    "max_pool2d_bwd": _k_max_pool2d_bwd,
    "cross_entropy": _k_cross_entropy,
    "cross_entropy_bwd": _k_cross_entropy_bwd,
    "tuple_get": _k_tuple_get,
    "unbroadcast": _k_unbroadcast,
    "add_acc": _k_add_acc,
    "relu_bwd": _k_relu_bwd,
    "tanh_bwd": _k_tanh_bwd,
    "sigmoid_bwd": _k_sigmoid_bwd,
    "sqrt_bwd": _k_sqrt_bwd,
    "abs_bwd": _k_abs_bwd,
    "power_bwd": _k_power_bwd,
    "maximum_bwd_a": _k_maximum_bwd_a,
    "maximum_bwd_b": _k_maximum_bwd_b,
    "clip_bwd": _k_clip_bwd,
    "sum_bwd": _k_sum_bwd,
    "mean_bwd": _k_mean_bwd,
    "max_bwd": _k_max_bwd,
    "getitem_bwd": _k_getitem_bwd,
    "slice_axis": _k_slice_axis,
    "unpad2d": _k_unpad2d,
    "matmul_bwd_a": _k_matmul_bwd_a,
    "matmul_bwd_b": _k_matmul_bwd_b,
    "linear_bwd_x": _k_linear_bwd_x,
    "linear_bwd_w": _k_linear_bwd_w,
    "linear_bwd_b": _k_linear_bwd_b,
    "softmax_bwd": _k_softmax_bwd,
    "log_softmax_bwd": _k_log_softmax_bwd,
    "gap_bwd": _k_gap_bwd,
    "upsample_bwd": _k_upsample_bwd,
    "avg_pool_bwd": _k_avg_pool_bwd,
}

KTABLE_FAST = {
    **KERNELS,
    **_TRAIN_KERNELS,
    "conv_bwd_w": _k_conv_bwd_w,
    "conv_bwd_x": _k_conv_bwd_x,
    "conv_bwd_b": _k_conv_bwd_b,
    "conv_bn_relu": _k_conv_bn_relu,
    "conv_bn_relu_bwd": _k_conv_bn_relu_bwd,
    "bn_train": _k_bn_train_fast,
    "bn_train_bwd": _k_bn_train_bwd_fast,
    "bn_relu_train": _k_bn_relu_train,
    "bn_relu_train_bwd": _k_bn_relu_train_bwd,
}

KTABLE_EXACT = {
    **KERNELS,
    **_TRAIN_KERNELS,
    "conv2d": _k_conv2d_exact,
    "conv_bwd_w": _k_conv_bwd_w_exact,
    "conv_bwd_x": _k_conv_bwd_x_exact,
    "conv_bwd_b": _k_conv_bwd_b_exact,
}

# Ops whose runtime kernel may return a view of an input (or of a tuple
# element); neither these slots nor their inputs may ever be overwritten by
# an in-place rewrite.
_VIEW_OPS = frozenset(
    {"reshape", "transpose", "getitem", "tuple_get", "slice_axis", "unpad2d"}
)


# ------------------------------------------------------- backward derivation


def _requires_flags(nodes: list[Node]) -> list[bool]:
    """``requires[i]`` replicates ``Tensor.requires_grad`` propagation:
    parameters are the only requiring leaves; compute nodes require iff any
    input does (``build`` detaches outputs with no requiring parent)."""
    requires = [False] * len(nodes)
    for i, node in enumerate(nodes):
        if node.op == "param":
            requires[i] = True
        elif node.op not in _LEAF_OPS:
            requires[i] = any(requires[j] for j in node.inputs)
    return requires


def _tape_topo(nodes: list[Node], requires: list[bool], root: int) -> list[int]:
    """Replicate ``Tensor.backward``'s DFS over the traced graph.

    Same stack discipline, same push order — non-requiring nodes are not
    expanded (their tape tensors have ``_prev = ()``), so the reverse
    visitation order (and with it the gradient accumulation order) matches
    the tape's float-addition order exactly.
    """
    topo: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        index, processed = stack.pop()
        if processed:
            topo.append(index)
            continue
        if index in seen:
            continue
        seen.add(index)
        stack.append((index, True))
        if requires[index] and nodes[index].op not in _LEAF_OPS:
            for j in nodes[index].inputs:
                if j not in seen:
                    stack.append((j, False))
    return topo


class _Deriver:
    """Emits backward kernel nodes onto a (copied) forward graph."""

    def __init__(self, nodes: list[Node], shapes: list, requires: list[bool]):
        self.nodes = nodes
        self.shapes = shapes
        self.requires = requires

    def emit(self, op, inputs=(), params=None, shape=None) -> int:
        self.nodes.append(Node(op, tuple(inputs), params or {}))
        self.shapes.append(shape)
        return len(self.nodes) - 1

    def _ub(self, g: int, gshape, target: int) -> int:
        """Unbroadcast ``g`` to a parent's shape — a no-op node-free pass
        when shapes already agree, exactly like ``tensor.unbroadcast``."""
        want = self.shapes[target]
        if gshape == want:
            return g
        return self.emit("unbroadcast", (g,), {"shape": want}, shape=want)

    def vjp(self, i: int, g: int) -> list[tuple[int, int]]:
        """(parent position, gradient node) pairs in backward-closure order."""
        node = self.nodes[i]
        ins = node.inputs
        op = node.op
        oshape = self.shapes[i]
        emit, ub = self.emit, self._ub
        if op == "add":
            return [(0, ub(g, oshape, ins[0])), (1, ub(g, oshape, ins[1]))]
        if op == "sub":
            gb = emit("neg", (g,), shape=oshape)
            return [(0, ub(g, oshape, ins[0])), (1, ub(gb, oshape, ins[1]))]
        if op == "mul":
            ga = emit("mul", (g, ins[1]), shape=oshape)
            gb = emit("mul", (g, ins[0]), shape=oshape)
            return [(0, ub(ga, oshape, ins[0])), (1, ub(gb, oshape, ins[1]))]
        if op == "div":
            ga = emit("div", (g, ins[1]), shape=oshape)
            # -g * a / (b*b) evaluates as ((-g) * a) / (b * b)
            ng = emit("neg", (g,), shape=oshape)
            num = emit("mul", (ng, ins[0]), shape=oshape)
            den = emit("mul", (ins[1], ins[1]), shape=self.shapes[ins[1]])
            gb = emit("div", (num, den), shape=oshape)
            return [(0, ub(ga, oshape, ins[0])), (1, ub(gb, oshape, ins[1]))]
        if op == "neg":
            return [(0, emit("neg", (g,), shape=oshape))]
        if op == "power":
            p = {"exponent": node.params["exponent"]}
            return [(0, emit("power_bwd", (g, ins[0]), p, shape=oshape))]
        if op == "matmul":
            a_s, b_s = self.shapes[ins[0]], self.shapes[ins[1]]
            if len(a_s) != 2 or len(b_s) != 2:
                raise CompileError("only 2-D matmul has a gradient rule")
            ga = emit("matmul_bwd_a", (g, ins[1]), shape=a_s)
            gb = emit("matmul_bwd_b", (ins[0], g), shape=b_s)
            return [(0, ga), (1, gb)]
        if op == "exp":
            return [(0, emit("mul", (g, i), shape=oshape))]
        if op == "log":
            return [(0, emit("div", (g, ins[0]), shape=oshape))]
        if op == "sqrt":
            return [(0, emit("sqrt_bwd", (g, i), shape=oshape))]
        if op == "relu":
            return [(0, emit("relu_bwd", (g, i), shape=oshape))]
        if op == "tanh":
            return [(0, emit("tanh_bwd", (g, i), shape=oshape))]
        if op == "sigmoid":
            return [(0, emit("sigmoid_bwd", (g, i), shape=oshape))]
        if op == "abs":
            return [(0, emit("abs_bwd", (g, ins[0]), shape=oshape))]
        if op == "maximum":
            ga = emit("maximum_bwd_a", (g, ins[0], ins[1]), shape=oshape)
            gb = emit("maximum_bwd_b", (g, ins[0], ins[1]), shape=oshape)
            return [(0, ub(ga, oshape, ins[0])), (1, ub(gb, oshape, ins[1]))]
        if op == "clip":
            p = {"low": node.params["low"], "high": node.params["high"]}
            return [(0, emit("clip_bwd", (g, ins[0]), p, shape=oshape))]
        if op in ("sum", "mean"):
            shape = self.shapes[ins[0]]
            p = {
                "axis": node.params["axis"],
                "keepdims": node.params["keepdims"],
                "shape": shape,
            }
            return [(0, emit(op + "_bwd", (g,), p, shape=shape))]
        if op == "max":
            shape = self.shapes[ins[0]]
            p = {"axis": node.params["axis"], "keepdims": node.params["keepdims"]}
            return [(0, emit("max_bwd", (g, ins[0], i), p, shape=shape))]
        if op == "reshape":
            shape = self.shapes[ins[0]]
            return [(0, emit("reshape", (g,), {"shape": shape}, shape=shape))]
        if op == "transpose":
            axes = node.params["axes"]
            inverse = tuple(int(v) for v in np.argsort(axes))
            shape = self.shapes[ins[0]]
            return [(0, emit("transpose", (g,), {"axes": inverse}, shape=shape))]
        if op == "getitem":
            shape = self.shapes[ins[0]]
            p = {"index": node.params["index"], "shape": shape}
            return [(0, emit("getitem_bwd", (g, ins[0]), p, shape=shape))]
        if op == "concatenate":
            axis = node.params["axis"]
            out: list[tuple[int, int]] = []
            lo = 0
            for pos, j in enumerate(ins):
                hi = lo + self.shapes[j][axis]
                p = {"axis": axis, "lo": lo, "hi": hi}
                out.append((pos, emit("slice_axis", (g,), p, shape=self.shapes[j])))
                lo = hi
            return out
        if op == "pad2d":
            p = {"padding": node.params["padding"]}
            return [(0, emit("unpad2d", (g,), p, shape=self.shapes[ins[0]]))]
        if op == "linear":
            out = [
                (0, emit("linear_bwd_x", (g, ins[1]), shape=self.shapes[ins[0]])),
                (1, emit("linear_bwd_w", (g, ins[0]), shape=self.shapes[ins[1]])),
            ]
            if len(ins) == 3:
                out.append(
                    (2, emit("linear_bwd_b", (g,), shape=self.shapes[ins[2]]))
                )
            return out
        if op == "conv2d":
            xshape = self.shapes[ins[0]]
            wshape = self.shapes[ins[1]]
            stride, padding = node.params["stride"], node.params["padding"]
            kh, kw = wshape[2], wshape[3]
            use_shared = (
                stride == 1 and kh * kw > 1 and oshape[2] * oshape[3] >= 32
            )
            wp = {
                "stride": stride, "padding": padding, "wshape": wshape,
                "_use_shared": use_shared, "_fwd_node": i,
            }
            xp = {"stride": stride, "padding": padding, "xshape": xshape}
            out = [
                (0, emit("conv_bwd_x", (g, ins[1]), xp, shape=xshape)),
                (1, emit("conv_bwd_w", (g, ins[0]), wp, shape=wshape)),
            ]
            if len(ins) == 3:
                out.append(
                    (2, emit("conv_bwd_b", (g,), shape=self.shapes[ins[2]]))
                )
            return out
        if op == "conv_bn_relu":
            nca = node.params["n_conv_args"]
            xshape = self.shapes[ins[0]]
            wshape = self.shapes[ins[1]]
            kh, kw = wshape[2], wshape[3]
            stride = node.params["stride"]
            p = {
                "stride": stride,
                "padding": node.params["padding"],
                "ndim": node.params["ndim"],
                "wshape": wshape,
                "xshape": xshape,
                "has_bias": nca == 3,
                "need_gx": self.requires[ins[0]],
                "_use_shared": stride == 1 and kh * kw > 1,
                "_fwd_node": i,
            }
            bwd = emit("conv_bn_relu_bwd", (g, i, ins[0], ins[1], ins[nca]), p)
            out = [
                (0, emit("tuple_get", (bwd,), {"index": 0}, shape=xshape)),
                (1, emit("tuple_get", (bwd,), {"index": 1}, shape=wshape)),
            ]
            if nca == 3:
                out.append((2, emit(
                    "tuple_get", (bwd,), {"index": 2}, shape=self.shapes[ins[2]]
                )))
            out.append((nca, emit(
                "tuple_get", (bwd,), {"index": 3}, shape=self.shapes[ins[nca]]
            )))
            out.append((nca + 1, emit(
                "tuple_get", (bwd,), {"index": 4}, shape=self.shapes[ins[nca + 1]]
            )))
            return out
        if op in ("bn_train", "bn_relu_train"):
            p = {"ndim": node.params["ndim"]}
            bwd = emit(op + "_bwd", (g, i, ins[1]), p)
            return [
                (0, emit("tuple_get", (bwd,), {"index": 0}, shape=self.shapes[ins[0]])),
                (1, emit("tuple_get", (bwd,), {"index": 1}, shape=self.shapes[ins[1]])),
                (2, emit("tuple_get", (bwd,), {"index": 2}, shape=self.shapes[ins[2]])),
            ]
        if op == "max_pool2d_train":
            shape = self.shapes[ins[0]]
            p = {
                "kernel": node.params["kernel"],
                "stride": node.params["stride"],
                "shape": shape,
            }
            return [(0, emit("max_pool2d_bwd", (g, i, ins[0]), p, shape=shape))]
        if op == "cross_entropy":
            shape = self.shapes[ins[0]]
            ce = emit("cross_entropy_bwd", (g, i, ins[1]), shape=shape)
            return [(0, ce)]
        if op == "tuple_get":
            if node.params["index"] != 0:
                raise CompileError(
                    "gradient reached a saved-intermediate tuple slot"
                )
            return [(0, g)]
        if op == "global_avg_pool2d":
            shape = self.shapes[ins[0]]
            return [(0, emit("gap_bwd", (g,), {"shape": shape}, shape=shape))]
        if op == "upsample_nearest2d":
            shape = self.shapes[ins[0]]
            p = {"scale": node.params["scale"], "shape": shape}
            return [(0, emit("upsample_bwd", (g,), p, shape=shape))]
        if op == "avg_pool2d":
            shape = self.shapes[ins[0]]
            p = {
                "kernel": node.params["kernel"],
                "stride": node.params["stride"],
                "shape": shape,
            }
            return [(0, emit("avg_pool_bwd", (g, ins[0]), p, shape=shape))]
        if op in ("softmax", "log_softmax"):
            p = {"axis": node.params["axis"]}
            return [(0, emit(op + "_bwd", (g, i), p, shape=oshape))]
        raise CompileError(f"no gradient rule for op {op!r}")


def _derive_backward(
    nodes: list[Node],
    shapes: list,
    loss: int,
    sample_loss: np.ndarray,
) -> dict[int, int]:
    """Emit the backward graph; returns {forward node -> gradient node}.

    The traversal and the ``add_acc`` emission order replicate the tape:
    nodes in reverse DFS-topological order, then each node's parents in
    backward-closure position order, accumulating second and later
    contributions with an explicit add.
    """
    requires = _requires_flags(nodes)
    if not requires[loss]:
        raise CompileError("loss does not depend on any parameter")
    topo = _tape_topo(nodes, requires, loss)
    deriver = _Deriver(nodes, shapes, requires)
    grad_of: dict[int, int] = {}
    grad_of[loss] = deriver.emit(
        "value", params={"value": np.ones_like(sample_loss)}, shape=sample_loss.shape
    )
    for i in reversed(topo):
        if not requires[i] or nodes[i].op in _LEAF_OPS:
            continue
        g = grad_of.get(i)
        if g is None:
            continue
        for pos, gnode in deriver.vjp(i, g):
            parent = nodes[i].inputs[pos]
            if not requires[parent]:
                continue
            held = grad_of.get(parent)
            if held is None:
                grad_of[parent] = gnode
            else:
                grad_of[parent] = deriver.emit(
                    "add_acc", (held, gnode), shape=shapes[parent]
                )
    return grad_of


# ------------------------------------------------------------- fusion (fast)


def _fuse_conv_bn_relu(
    nodes: list[Node], shapes: list, protected: set[int]
) -> int:
    """Fast-mode peephole: ``conv2d → bn_train → tuple_get0 → relu`` becomes
    one ``conv_bn_relu`` tuple node.

    The bn node's index is reused for the fused node so the tracer's
    running-stat ``tuple_get`` consumers (indices 3/4 — same slot layout)
    stay valid without rewiring; the relu node's index becomes the fused
    output projection, keeping downstream consumers valid too.  The old
    conv and projection nodes go dead and fall to the scheduling DCE.
    """
    consumers: dict[int, int] = {}
    for node in nodes:
        for j in node.inputs:
            consumers[j] = consumers.get(j, 0) + 1
    n_fused = 0
    for r, node in enumerate(nodes):
        if node.op != "relu":
            continue
        t = node.inputs[0]
        proj = nodes[t]
        if (
            proj.op != "tuple_get"
            or proj.params["index"] != 0
            or consumers.get(t, 0) != 1
        ):
            continue
        b = proj.inputs[0]
        bn = nodes[b]
        if bn.op != "bn_train":
            continue
        c = bn.inputs[0]
        conv = nodes[c]
        if conv.op != "conv2d" or consumers.get(c, 0) != 1:
            continue
        if {t, c, b} & protected:
            continue
        nodes[b] = Node(
            "conv_bn_relu",
            conv.inputs + bn.inputs[1:],
            {
                "stride": conv.params["stride"],
                "padding": conv.params["padding"],
                "eps": bn.params["eps"],
                "ndim": bn.params["ndim"],
                "n_conv_args": len(conv.inputs),
            },
        )
        shapes[b] = None
        nodes[r] = Node("tuple_get", (b,), {"index": 0})
        n_fused += 1
    return n_fused


def _fuse_bn_relu(
    nodes: list[Node], shapes: list, protected: set[int]
) -> int:
    """Fast-mode peephole: ``bn_train → tuple_get0 → relu`` becomes one
    ``bn_relu_train`` tuple node.

    The pre-activation variant of :func:`_fuse_conv_bn_relu` (run after
    it, picking up the chains with no foldable producing conv — DenseNet's
    BN→ReLU→conv blocks).  The same index-reuse scheme applies: the bn
    node's index keeps the running-stat ``tuple_get`` consumers valid, and
    the relu node becomes the post-ReLU projection.
    """
    consumers: dict[int, int] = {}
    for node in nodes:
        for j in node.inputs:
            consumers[j] = consumers.get(j, 0) + 1
    n_fused = 0
    for r, node in enumerate(nodes):
        if node.op != "relu":
            continue
        t = node.inputs[0]
        proj = nodes[t]
        if (
            proj.op != "tuple_get"
            or proj.params["index"] != 0
            or consumers.get(t, 0) != 1
        ):
            continue
        b = proj.inputs[0]
        bn = nodes[b]
        if bn.op != "bn_train":
            continue
        if {t, b} & protected:
            continue
        nodes[b] = Node("bn_relu_train", bn.inputs, dict(bn.params))
        nodes[r] = Node("tuple_get", (b,), {"index": 0})
        n_fused += 1
    return n_fused


def _toposort_multi(nodes: list[Node], roots: list[int]) -> list[int]:
    """Live node indices in dependency order across several roots."""
    order: list[int] = []
    seen: set[int] = set()
    for root in roots:
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            index, done = stack.pop()
            if done:
                order.append(index)
                continue
            if index in seen:
                continue
            seen.add(index)
            stack.append((index, True))
            for j in nodes[index].inputs:
                if j not in seen:
                    stack.append((j, False))
    return order


# -------------------------------------------------------------- GradPlan


class GradPlan:
    """An executable training step (loss + logits + gradients) for one
    (input shape, label shape) pair.

    ``run`` binds the input batch, the labels, and the model's *live*
    parameter/buffer arrays into leaf slots, streams the flat step list,
    and returns ``(loss, logits, grads, stats)`` where ``grads`` maps
    parameter names to gradient arrays (absent parameters received no
    gradient, like a tape ``p.grad`` of ``None``) and ``stats`` holds the
    batch ``(mean, var)`` pairs the engine replays into the BatchNorm
    running buffers.

    ``exact=True`` disables fusion and in-place rewrites and routes convs
    through the module's own im2col arithmetic: the plan then replays the
    tape's floating-point operations bit for bit.
    """

    def __init__(
        self,
        graph: TrainGraph,
        model: Module,
        exact: bool = False,
        fuse: bool = True,
    ):
        nodes = [Node(n.op, n.inputs, dict(n.params)) for n in graph.nodes]
        shapes = list(graph.shapes)
        self.exact = exact
        self.bn_updates = [dict(u) for u in graph.bn_updates]
        protected = {graph.input, graph.logits, graph.loss}
        if graph.label is not None:
            protected.add(graph.label)
        if exact or not fuse:
            self.n_fused = 0
        else:
            self.n_fused = _fuse_conv_bn_relu(nodes, shapes, protected)
            self.n_fused += _fuse_bn_relu(nodes, shapes, protected)
        grad_of = _derive_backward(nodes, shapes, graph.loss, graph.sample_loss)
        self._grad_index = {
            nodes[i].params["name"]: grad_of[i]
            for i in grad_of
            if nodes[i].op == "param"
        }
        stat_nodes = [u["mean"] for u in self.bn_updates] + [
            u["var"] for u in self.bn_updates
        ]
        roots = [graph.loss, graph.logits, *self._grad_index.values(), *stat_nodes]
        order = _toposort_multi(nodes, roots)
        table = KTABLE_EXACT if exact else KTABLE_FAST
        for i in order:
            op = nodes[i].op
            if op not in _LEAF_OPS and op not in table:
                raise CompileError(f"no runtime kernel for op {op!r}")
        # Wire shared-scratch references now that node copies are final:
        # a backward conv reads the padded input its forward kernel cached.
        for i in order:
            fwd = nodes[i].params.get("_fwd_node")
            if fwd is not None:
                nodes[i].params["_fwd"] = nodes[fwd].params

        self._nodes = nodes
        self._input = graph.input
        self._label = graph.label
        self._label_shape = (
            None if graph.label is None else nodes[graph.label].params["shape"]
        )
        self._loss = graph.loss
        self._logits = graph.logits

        params = dict(model.named_parameters())
        buffers: dict[str, tuple[Module, str]] = {}
        for prefix, module in model.named_modules():
            for local in module._buffers:
                full = f"{prefix}.{local}" if prefix else local
                buffers[full] = (module, local)
        self._param_slots: list[tuple[int, object]] = []
        self._buffer_slots: list[tuple[int, Module, str]] = []
        live = set(order)
        for i in live:
            node = nodes[i]
            if node.op == "param":
                name = node.params["name"]
                if name not in params:
                    raise CompileError(f"model has no parameter {name!r}")
                self._param_slots.append((i, params[name]))
            elif node.op == "buffer":
                name = node.params["name"]
                if name not in buffers:
                    raise CompileError(f"model has no buffer {name!r}")
                module, local = buffers[name]
                self._buffer_slots.append((i, module, local))

        # "value" leaves (traced constants and the backward seed) are
        # preset once and survive every run; everything non-leaf is a
        # runtime step.
        self._slots: list = [None] * len(nodes)
        for i in live:
            if nodes[i].op == "value":
                value = nodes[i].params["value"]
                self._slots[i] = (
                    value.copy() if isinstance(value, np.ndarray) else value
                )
        steps = [i for i in order if nodes[i].op not in _LEAF_OPS]
        roots_set = set(roots)
        step_set = set(steps)
        last_use: dict[int, int] = {}
        for i in steps:
            for j in nodes[i].inputs:
                if j in step_set:
                    last_use[j] = i
        frees_at: dict[int, list[int]] = {}
        for value, step in last_use.items():
            if value not in roots_set:
                frees_at.setdefault(step, []).append(value)
        aliased: set[int] = set()
        for i in steps:
            if nodes[i].op in _VIEW_OPS:
                aliased.add(i)
                aliased.update(nodes[i].inputs)
        self._steps = []
        for i in steps:
            op = nodes[i].op
            frees = tuple(frees_at.get(i, ()))
            inplace = None
            if not exact and op in ("relu", "add", "add_acc"):
                for pos, j in enumerate(nodes[i].inputs):
                    if j in frees and j not in aliased and j in step_set:
                        inplace = pos
                        break
            kernel = table[op] if op != "value" else None
            self._steps.append(
                (kernel, nodes[i].inputs, i, nodes[i].params, frees,
                 op if inplace is not None else None, inplace)
            )
        self._runtime_slots = steps
        self.op_counts: dict[str, int] = {}
        for i in steps:
            self.op_counts[nodes[i].op] = self.op_counts.get(nodes[i].op, 0) + 1

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def run(self, x: np.ndarray, y: np.ndarray):
        """One training step's compute: ``(loss, logits, grads, stats)``."""
        slots = self._slots
        slots[self._input] = x
        if self._label is not None:
            labels = np.asarray(y)
            if labels.shape != self._label_shape:
                labels = labels.reshape(self._label_shape)
            slots[self._label] = labels
        for i, param in self._param_slots:
            slots[i] = param.data
        for i, module, local in self._buffer_slots:
            slots[i] = module._buffers[local]
        try:
            for kernel, inputs, out_index, params, frees, iop, ipos in self._steps:
                args = [slots[j] for j in inputs]
                if iop == "relu":
                    out = np.maximum(args[0], 0.0, out=args[0])
                elif (
                    iop in ("add", "add_acc")
                    and isinstance(args[0], np.ndarray)
                    and isinstance(args[1], np.ndarray)
                    and args[0].shape == args[1].shape
                    and args[0].dtype == args[1].dtype
                ):
                    out = np.add(args[0], args[1], out=args[ipos])
                else:
                    out = kernel(args, params)
                slots[out_index] = out
                for j in frees:
                    slots[j] = None
            loss = slots[self._loss]
            logits = slots[self._logits]
            grads = {name: slots[i] for name, i in self._grad_index.items()}
            stats = [
                (slots[u["mean"]], slots[u["var"]]) for u in self.bn_updates
            ]
            return loss, logits, grads, stats
        finally:
            slots[self._input] = None
            if self._label is not None:
                slots[self._label] = None
            for i, _ in self._param_slots:
                slots[i] = None
            for i, _, _ in self._buffer_slots:
                slots[i] = None
            for i in self._runtime_slots:
                slots[i] = None
