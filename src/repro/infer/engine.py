"""The inference engine: compiled no-grad forwards behind one seam.

:func:`engine_for` is the seam every eval-heavy consumer goes through.
It returns a cached :class:`InferenceEngine` for a model; the engine
traces the model's eval forward once per input shape, compiles it into a
flat numpy plan (BN folded, masked weights densified), and falls back to
the plain ``Module`` forward whenever the model cannot be traced, a
compiled plan fails its self-check, or ``REPRO_INFER=0`` opts out.

Correctness machinery:

- every compiled plan is validated at compile time against the module's
  own forward (trace-sample parity + an independent probe batch, plus a
  row-independence check that licenses batch padding);
- constants are refreshed whenever the model's *state signature* — an
  adler32 over every parameter and buffer — changes, so in-place SGD
  updates and new masks invalidate the cache without version counters;
- the fallback path restores ``model.train(...)`` in a ``finally``, so
  an exception mid-eval can never leave a caller's model stuck in eval.
"""

from __future__ import annotations

import os
import time
import weakref
import zlib

import numpy as np

from repro import observe
from repro.autograd.tensor import Tensor, no_grad
from repro.infer.plan import CompiledPlan, CompileError
from repro.infer.trace import TraceError, trace
from repro.nn.module import Module

ENV_VAR = "REPRO_INFER"

_PARITY_ATOL = 1e-5
# BN folding perturbs weights *before* the conv reduction, so folded plans
# match the module to ~1e-6 relative rather than bit-for-bit — and the
# resulting absolute error rides on the largest co-activation, not on each
# element.  The self-check gate is therefore scale-aware:
# max|got - want| <= atol + rtol * max|want|.
_PARITY_RTOL = 1e-5
_AUTOTUNE_CANDIDATES = (32, 64, 128, 256, 512)


def _assert_parity(got: np.ndarray, want: np.ndarray, what: str) -> None:
    diff = float(np.abs(got - want).max())
    bound = _PARITY_ATOL + _PARITY_RTOL * float(np.abs(want).max())
    if not diff <= bound:  # NaNs compare false and fall through here
        raise CompileError(f"{what}: max abs diff {diff:.3e} exceeds {bound:.3e}")


def enabled() -> bool:
    """Compiled plans are on unless ``REPRO_INFER=0`` (checked per call)."""
    return os.environ.get(ENV_VAR, "1").lower() not in ("0", "false", "off")


def _state_signature(model: Module) -> tuple:
    """Cheap content hash of every parameter and buffer.

    Keyed on array *contents* (not object identity or version counters)
    because SGD updates parameters in place and ``set_weight_mask``
    rewrites buffers the plan has already densified.
    """
    parts = []
    for name, p in model.named_parameters():
        parts.append((name, zlib.adler32(np.ascontiguousarray(p.data).tobytes())))
    for name, b in model.named_buffers():
        parts.append((name, zlib.adler32(np.ascontiguousarray(b).tobytes())))
    return tuple(parts)


def _coerce_batch(images: np.ndarray) -> np.ndarray:
    arr = np.asarray(images)
    if arr.size == 0:
        raise ValueError("inference requires a non-empty batch of images")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float32)
    return arr


def _pad_to(n: int, batch_size: int) -> int:
    """Smallest power-of-two chunk (capped at ``batch_size``) holding n rows.

    Padding tail chunks up to a power of two bounds the number of distinct
    compiled shapes per model at ~log2(batch_size) even when callers (e.g.
    BackSelect's shrinking candidate sets) sweep through every batch size.
    """
    size = 1
    while size < n:
        size *= 2
    return min(size, batch_size)


class InferenceEngine:
    """Batched eval-mode ``logits``/``predict``/``predict_proba`` for a model.

    Parameters
    ----------
    model:
        The module to serve.  The engine never mutates it beyond the
        eval/train toggling that any evaluation does (and that is always
        restored, exception or not).
    batch_size:
        Upper bound on rows per compiled forward.  :meth:`autotune_batch_size`
        can replace it with a measured optimum.
    fold_bn:
        Fold eval-mode BatchNorm into the preceding conv/linear where the
        normalized value has no other consumer.
    pad:
        Chunk-padding policy.  ``"pow2"`` (default) pads tail chunks to the
        next power of two, bounding compiled shapes at ~log2(batch_size)
        per sweep.  ``"fixed"`` pads *every* chunk to ``batch_size``, so
        one plan serves all batch occupancies — the serving layer uses it
        because identical plans make a coalesced batch's per-row outputs
        bitwise equal to the same rows served one request at a time
        (different plan shapes route through different BLAS blockings and
        round differently).
    """

    def __init__(
        self,
        model: Module,
        batch_size: int = 256,
        fold_bn: bool = True,
        pad: str = "pow2",
    ):
        if pad not in ("pow2", "fixed"):
            raise ValueError(f"pad must be 'pow2' or 'fixed', got {pad!r}")
        self.model = model
        self.batch_size = int(batch_size)
        self.fold_bn = fold_bn
        self.pad = pad
        # (row_shape, dtype) -> CompiledPlan | None (None: fall back forever)
        self._plans: dict[tuple, CompiledPlan | None] = {}
        self._signature: tuple | None = None
        # (images shape, candidates) -> best batch size (autotune sweeps are
        # expensive; repeated calls must not re-run them).
        self._autotune_cache: dict[tuple, int] = {}
        # Serving-layer seam: called as hook(engine, plan_key, plan) every
        # time a compiled plan is about to serve a chunk (including right
        # after compilation), so an LRU can track recency and budget.
        self.plan_used_hook = None

    # -------------------------------------------------------------- compile

    def _compile(self, probe: np.ndarray) -> CompiledPlan | None:
        """Trace + compile for ``probe``'s exact shape; None on any mismatch.

        Plans are shape-specific (traced ``reshape``/``getitem`` bake in
        the batch dimension), which is why :meth:`logits` pads chunks to a
        small set of power-of-two sizes before coming here.
        """
        key = (probe.shape, probe.dtype.str)
        with observe.span(
            "infer.compile", shape=list(probe.shape), fold_bn=self.fold_bn
        ):
            try:
                graph = trace(self.model, probe)
                plan = CompiledPlan(graph, fold_bn=self.fold_bn)
                plan.refresh(self.model)
                plan.signature = self._signature
                # Kernel exactness + dataflow: re-running the probe through
                # the compiled kernels must reproduce the module's own
                # output recorded during tracing.
                got = plan.run(probe)
                _assert_parity(got, graph.sample_output, "compile self-check")
                # Row independence licenses tail padding *and* batch
                # coalescing: perturbing every trailing row must leave the
                # leading row's output bitwise unchanged, and vice versa
                # (any batch-mixing op would couple the rows).  The second
                # direction matters to the serving layer, which places a
                # request's rows in the middle of a coalesced batch.
                if probe.shape[0] > 1:
                    perturbed = probe.copy()
                    perturbed[1:] = probe[1:] * -3.0 + 1.0
                    if not np.array_equal(plan.run(perturbed)[0], got[0]):
                        raise CompileError(
                            "forward mixes batch rows; padding is unsafe"
                        )
                    perturbed = probe.copy()
                    perturbed[:-1] = probe[:-1] * -3.0 + 1.0
                    if not np.array_equal(plan.run(perturbed)[-1], got[-1]):
                        raise CompileError(
                            "forward mixes batch rows; coalescing is unsafe"
                        )
            except (TraceError, CompileError, AssertionError) as exc:
                observe.event(
                    "infer.fallback", shape=list(probe.shape), reason=repr(exc)
                )
                self._plans[key] = None
                return None
        self._plans[key] = plan
        return plan

    def _plan_for(self, chunk: np.ndarray) -> CompiledPlan | None:
        key = (chunk.shape, chunk.dtype.str)
        if key not in self._plans:
            plan = self._compile(chunk)
        else:
            plan = self._plans[key]
            if plan is not None and plan.signature != self._signature:
                plan.refresh(self.model)
                plan.signature = self._signature
                observe.incr("infer.refreshes")
        hook = self.plan_used_hook
        if plan is not None and hook is not None:
            hook(self, key, plan)
        return plan

    def _chunk_rows(self, n: int, batch_size: int) -> int:
        """Rows the padded chunk will occupy under this engine's pad policy."""
        if self.pad == "fixed":
            return batch_size
        return _pad_to(n, batch_size)

    # ------------------------------------------------------------- fallback

    def _module_logits(self, images: np.ndarray) -> np.ndarray:
        """Plain ``Module`` forward, train-state restored in a ``finally``."""
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                return self.model(Tensor(images)).data
        finally:
            self.model.train(was_training)

    # ------------------------------------------------------------------ API

    def logits(self, images: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Eval-mode logits for ``images``, batched and (if possible) compiled."""
        arr = _coerce_batch(images)
        bs = int(batch_size) if batch_size is not None else self.batch_size
        # Module-like duck types (test doubles with just __call__/eval/train)
        # are served through the fallback path — tracing and the state
        # signature need the real parameter/buffer API.
        use_plans = enabled() and isinstance(self.model, Module)
        if use_plans:
            self._signature = _state_signature(self.model)
        outputs = []
        start = time.perf_counter()
        for lo in range(0, arr.shape[0], bs):
            chunk = arr[lo : lo + bs]
            plan = None
            if use_plans:
                # Pad every chunk up to a power of two (capped at the batch
                # size) so a sweep of batch sizes — BackSelect's shrinking
                # candidate sets — compiles O(log bs) plans, not one each.
                # (pad="fixed" pads straight to the batch size instead.)
                rows = self._chunk_rows(chunk.shape[0], bs)
                if rows != chunk.shape[0]:
                    padded = np.zeros((rows,) + chunk.shape[1:], dtype=chunk.dtype)
                    padded[: chunk.shape[0]] = chunk
                else:
                    padded = chunk
                plan = self._plan_for(padded)
            if plan is not None:
                outputs.append(plan.run(padded)[: chunk.shape[0]])
                observe.incr("infer.batches")
            else:
                outputs.append(self._module_logits(chunk))
                observe.incr("infer.fallback_batches")
        out = outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            observe.hist("infer.images_per_s", arr.shape[0] / elapsed)
        return out

    def predict(self, images: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Argmax class predictions over axis 1."""
        return np.argmax(self.logits(images, batch_size=batch_size), axis=1)

    def predict_proba(
        self, images: np.ndarray, batch_size: int | None = None
    ) -> np.ndarray:
        """Softmax probabilities over axis 1 (stable shifted exp)."""
        logits = self.logits(images, batch_size=batch_size)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def autotune_batch_size(
        self,
        images: np.ndarray,
        candidates: tuple[int, ...] = _AUTOTUNE_CANDIDATES,
        repeats: int = 2,
    ) -> int:
        """Measure throughput per candidate batch size and adopt the best.

        The sweep is memoized per ``(images.shape, candidates)``: the first
        call times every candidate, later calls re-adopt the cached winner
        without re-running the sweep (a serving layer autotunes on every
        registration, often with the same probe shape).
        """
        arr = _coerce_batch(images)
        memo_key = (arr.shape, tuple(candidates))
        cached = self._autotune_cache.get(memo_key)
        if cached is not None:
            self.batch_size = cached
            return cached
        best, best_rate = self.batch_size, 0.0
        for candidate in candidates:
            if candidate > arr.shape[0]:
                continue
            rate = 0.0
            for _ in range(repeats):
                start = time.perf_counter()
                self.logits(arr, batch_size=candidate)
                rate = max(rate, arr.shape[0] / (time.perf_counter() - start))
            if rate > best_rate:
                best, best_rate = candidate, rate
        observe.event("infer.autotune", batch_size=best, images_per_s=best_rate)
        self._autotune_cache[memo_key] = best
        self.batch_size = best
        return best

    def compiled_for(self, images: np.ndarray) -> bool:
        """True if a validated plan exists for this batch (after padding)."""
        arr = _coerce_batch(images)
        rows = self._chunk_rows(arr.shape[0], self.batch_size)
        return self._plans.get(((rows,) + arr.shape[1:], arr.dtype.str)) is not None

    # ----------------------------------------------------- plan bookkeeping

    def plan_stats(self) -> dict[tuple, int]:
        """Resident compiled plans: ``plan_key -> constant bytes``.

        Fallback markers (shapes that failed to compile and are pinned to
        the module forward) are excluded — there is nothing to evict.
        """
        return {
            key: plan.nbytes
            for key, plan in self._plans.items()
            if plan is not None
        }

    def evict_plan(self, key: tuple) -> bool:
        """Drop the compiled plan under ``key`` (returns whether one existed).

        The next batch of that shape recompiles from scratch; fallback
        markers are left in place so a known-untraceable shape never
        re-attempts compilation because of memory pressure.
        """
        if self._plans.get(key) is None:
            return False
        del self._plans[key]
        observe.incr("infer.plan_evictions")
        return True


_ENGINES: "weakref.WeakKeyDictionary[Module, InferenceEngine]" = (
    weakref.WeakKeyDictionary()
)


def engine_for(model: Module, batch_size: int = 256) -> InferenceEngine:
    """The shared engine for ``model`` (pass-through for engines).

    Consumers accept either a ``Module`` or an ``InferenceEngine``; routing
    both through this seam lets callers pre-warm and share one engine
    across an entire study loop.
    """
    if isinstance(model, InferenceEngine):
        return model
    engine = _ENGINES.get(model)
    if engine is None:
        engine = InferenceEngine(model, batch_size=batch_size)
        _ENGINES[model] = engine
    return engine


def adopt_engine(engine: InferenceEngine) -> InferenceEngine:
    """Install ``engine`` as the shared :func:`engine_for` engine of its model.

    The serving registry builds engines with non-default settings
    (``pad="fixed"``, a tuned batch size) and adopts them so every other
    consumer of the same model — including differential parity checks —
    routes through the identical plans.
    """
    _ENGINES[engine.model] = engine
    return engine
