"""Graph capture: run one eval-mode forward and record every tensor op.

The autograd stack funnels all tensor math through module-level functions
(``repro.autograd.ops`` / ``repro.autograd.functional``) that are *also*
installed as :class:`Tensor` methods.  Tracing therefore patches

- the ``Tensor`` class attributes (dunders and named methods), and
- the ``functional`` / ``ops`` module attributes that layers look up at
  call time (``F.conv2d``, ``ops.concatenate``, ...),

runs the model once under :func:`no_grad`, and restores everything in a
``finally``.  Each wrapper calls the original op (so the traced forward is
bit-identical to a normal one) and appends a :class:`Node` to the graph.

Leaves are classified by identity against the model's registered state:
parameters and buffers become named leaves re-resolved at plan refresh
time (``load_state_dict`` / ``set_buffer`` rebind the arrays, so capturing
them by reference would go stale); any other tensor entering the graph
from outside is captured as a frozen constant.  A forward that produces
its output through untraced code paths raises :exc:`TraceError` and the
engine falls back to the plain ``Module`` forward.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.autograd import functional as F
from repro.autograd import ops
from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module


class TraceError(RuntimeError):
    """The model's forward cannot be captured as a static op graph."""


@dataclass
class Node:
    """One vertex of the traced dataflow graph.

    ``op`` names either a leaf (``input`` / ``param`` / ``buffer`` /
    ``value``) or a compute op with ``inputs`` referencing earlier nodes.
    """

    op: str
    inputs: tuple[int, ...] = ()
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class Graph:
    """A traced forward: nodes plus the input/output node indices."""

    nodes: list[Node]
    input: int
    output: int
    sample_output: np.ndarray  # module output on the traced sample

    def count_ops(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts


@dataclass
class TrainGraph:
    """A traced train-mode forward: model forward plus the loss head.

    Training traces differ from eval traces in three ways:

    - BatchNorm keeps its batch statistics as a fused ``bn_train`` tuple
      node ``(out, xhat, invstd, mean, var)`` — the backward pass and the
      engine's running-stat update both need the saved intermediates;
    - the labels enter as a dedicated ``label`` leaf (they are a plain
      ndarray, so without explicit matching they would freeze into the
      plan as a constant of the traced batch);
    - ``shapes[i]`` records every node's traced output shape (``None``
      for tuple nodes) so the backward derivation can reason about
      broadcasting without re-running the forward.

    ``bn_updates`` carries one entry per BatchNorm layer: the tuple-get
    node indices of the batch mean/var plus the running-buffer names,
    momentum, and element count needed to replay the in-place update.
    """

    nodes: list[Node]
    shapes: list[tuple[int, ...] | None]
    input: int
    label: int | None
    logits: int
    loss: int
    bn_updates: list[dict]
    sample_loss: np.ndarray
    sample_logits: np.ndarray

    def count_ops(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts


_LEAF_OPS = frozenset({"input", "param", "buffer", "value", "label"})


class _Tracer:
    def __init__(self, model: Module, training: bool = False):
        self.nodes: list[Node] = []
        # Traced output shape per node (None for tuple-valued nodes).
        self.shapes: list[tuple[int, ...] | None] = []
        # id(Tensor) -> node index for every traced intermediate.
        self.var_of: dict[int, int] = {}
        # Strong references to everything memoized by id, so CPython
        # cannot recycle an id mid-trace.
        self.keep: list[Any] = []
        self.param_names = {id(p): name for name, p in model.named_parameters()}
        self.buffer_names = {id(b): name for name, b in model.named_buffers()}
        self._leaf_cache: dict[tuple[str, str], int] = {}
        self.training = training
        # Training-trace state: the label array the loss must consume and
        # the BatchNorm running-stat updates replayed by the engine.
        self.label_value: np.ndarray | None = None
        self.label_index: int | None = None
        self.bn_updates: list[dict] = []

    def emit(
        self,
        op: str,
        inputs: tuple[int, ...] = (),
        params: dict | None = None,
        shape: tuple[int, ...] | None = None,
    ) -> int:
        self.nodes.append(Node(op, inputs, params or {}))
        self.shapes.append(shape)
        return len(self.nodes) - 1

    def bind(self, tensor: Tensor, index: int) -> None:
        self.var_of[id(tensor)] = index
        self.keep.append(tensor)

    def _leaf(self, kind: str, name: str, shape: tuple[int, ...] | None = None) -> int:
        key = (kind, name)
        if key not in self._leaf_cache:
            self._leaf_cache[key] = self.emit(kind, params={"name": name}, shape=shape)
        return self._leaf_cache[key]

    def ref(self, value) -> int:
        """Node index for an op operand (tensor, ndarray, or scalar)."""
        if isinstance(value, Tensor):
            index = self.var_of.get(id(value))
            if index is not None:
                return index
            if id(value) in self.param_names:
                index = self._leaf(
                    "param", self.param_names[id(value)], shape=value.shape
                )
            elif id(value.data) in self.buffer_names:
                # e.g. masked_weight wraps the raw mask buffer in a
                # fresh Tensor each forward; key on the payload array.
                index = self._leaf(
                    "buffer", self.buffer_names[id(value.data)], shape=value.shape
                )
            else:
                index = self.emit(
                    "value",
                    params={"value": np.array(value.data)},
                    shape=value.shape,
                )
            self.bind(value, index)
            return index
        if isinstance(value, np.ndarray):
            if id(value) in self.buffer_names:
                self.keep.append(value)
                return self._leaf(
                    "buffer", self.buffer_names[id(value)], shape=value.shape
                )
            return self.emit("value", params={"value": np.array(value)}, shape=value.shape)
        if isinstance(value, (int, float, np.integer, np.floating)):
            # Plain python scalars stay python floats so NumPy's scalar
            # promotion matches ops._pair (no silent float64 upcast).
            return self.emit("value", params={"value": float(value)}, shape=())
        raise TraceError(f"cannot trace operand of type {type(value).__name__}")

    def ref_label(self, targets) -> int:
        """Node index for the loss targets; must derive from the label array.

        The targets reaching the loss are a plain ndarray — either the
        traced label batch itself or a view of it (``CrossEntropyLoss``
        flattens dense labels with a numpy ``reshape``).  Anything else
        would silently freeze this batch's labels into the plan.
        """
        arr = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        lv = self.label_value
        if lv is None or not (arr is lv or arr.base is lv):
            raise TraceError("loss targets do not derive from the traced labels")
        shape = tuple(arr.shape)
        if self.label_index is None:
            self.label_index = self.emit("label", params={"shape": shape}, shape=shape)
        elif self.nodes[self.label_index].params["shape"] != shape:
            raise TraceError("loss consumes the labels under two different shapes")
        return self.label_index


def _check_static_index(index) -> None:
    items = index if isinstance(index, tuple) else (index,)
    for item in items:
        if isinstance(item, Tensor):
            raise TraceError("tensor-valued indexing is not traceable")


def _record(tracer: _Tracer, op: str, operands: tuple, params: dict, out: Tensor) -> Tensor:
    tracer.bind(
        out,
        tracer.emit(
            op, tuple(tracer.ref(v) for v in operands), params, shape=out.shape
        ),
    )
    return out


def _patched_attrs(tracer: _Tracer) -> dict[tuple[Any, str], Any]:
    """Build the {(owner, attr): wrapper} patch table for one trace."""
    # Capture the originals up front: the wrappers below must never go
    # through the (patched) module attributes or they would recurse.
    orig_getitem, orig_reshape, orig_transpose = ops.getitem, ops.reshape, ops.transpose
    orig_power, orig_clip, orig_pad2d = ops.power, ops.clip, ops.pad2d
    orig_concatenate = ops.concatenate
    orig_conv2d, orig_linear, orig_batch_norm = F.conv2d, F.linear, F.batch_norm
    orig_max_pool, orig_avg_pool = F.max_pool2d, F.avg_pool2d
    orig_gap, orig_upsample = F.global_avg_pool2d, F.upsample_nearest2d
    orig_softmax, orig_log_softmax, orig_dropout = F.softmax, F.log_softmax, F.dropout
    orig_cross_entropy = F.cross_entropy

    def binary(op_name, orig, swap=False):
        def wrapper(a, b):
            operands = (b, a) if swap else (a, b)
            return _record(tracer, op_name, operands, {}, orig(a, b))

        return wrapper

    def unary(op_name, orig):
        def wrapper(a):
            return _record(tracer, op_name, (a,), {}, orig(a))

        return wrapper

    def reduction(op_name, orig):
        def wrapper(a, axis=None, keepdims=False):
            params = {"axis": axis, "keepdims": bool(keepdims)}
            return _record(tracer, op_name, (a,), params, orig(a, axis, keepdims))

        return wrapper

    def power(a, exponent):
        out = orig_power(a, exponent)
        return _record(tracer, "power", (a,), {"exponent": float(exponent)}, out)

    def getitem(a, index):
        _check_static_index(index)
        return _record(tracer, "getitem", (a,), {"index": index}, orig_getitem(a, index))

    def reshape(a, *shape):
        out = orig_reshape(a, *shape)
        return _record(tracer, "reshape", (a,), {"shape": out.shape}, out)

    def transpose(a, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        norm = tuple(axes) if axes else tuple(reversed(range(a.ndim)))
        return _record(tracer, "transpose", (a,), {"axes": norm}, orig_transpose(a, *axes))

    def clip(a, low, high):
        out = orig_clip(a, low, high)
        return _record(tracer, "clip", (a,), {"low": float(low), "high": float(high)}, out)

    def pad2d(a, padding):
        out = orig_pad2d(a, padding)
        if padding == 0:  # identity: ops.pad2d returns its argument
            return out
        return _record(tracer, "pad2d", (a,), {"padding": int(padding)}, out)

    def concatenate(tensors, axis=0):
        tensors = list(tensors)
        out = orig_concatenate(tensors, axis=axis)
        tracer.bind(out, tracer.emit(
            "concatenate",
            tuple(tracer.ref(t) for t in tensors),
            {"axis": int(axis)},
            shape=out.shape,
        ))
        return out

    def conv2d(x, weight, bias=None, stride=1, padding=0):
        out = orig_conv2d(x, weight, bias, stride=stride, padding=padding)
        operands = (x, weight) if bias is None else (x, weight, bias)
        params = {"stride": int(stride), "padding": int(padding)}
        return _record(tracer, "conv2d", operands, params, out)

    def linear(x, weight, bias=None):
        out = orig_linear(x, weight, bias)
        operands = (x, weight) if bias is None else (x, weight, bias)
        return _record(tracer, "linear", operands, {}, out)

    def batch_norm(x, gamma, beta, running_mean, running_var, training,
                   momentum=0.1, eps=1e-5):
        if training and not tracer.training:
            raise TraceError("training-mode batch_norm mutates running stats")
        if training:
            # The original op mutates the running buffers in place;
            # trace_training snapshots and restores them around the trace.
            out = orig_batch_norm(x, gamma, beta, running_mean, running_var,
                                  training=True, momentum=momentum, eps=eps)
            for buf in (running_mean, running_var):
                if id(buf) not in tracer.buffer_names:
                    raise TraceError(
                        "batch_norm running stats are not registered buffers"
                    )
            bn = tracer.emit(
                "bn_train",
                (tracer.ref(x), tracer.ref(gamma), tracer.ref(beta)),
                {"eps": float(eps), "ndim": x.ndim},
            )
            tracer.bind(
                out, tracer.emit("tuple_get", (bn,), {"index": 0}, shape=out.shape)
            )
            stat_shape = (out.shape[1],)
            tracer.bn_updates.append({
                "mean": tracer.emit("tuple_get", (bn,), {"index": 3}, shape=stat_shape),
                "var": tracer.emit("tuple_get", (bn,), {"index": 4}, shape=stat_shape),
                "running_mean": tracer.buffer_names[id(running_mean)],
                "running_var": tracer.buffer_names[id(running_var)],
                "momentum": float(momentum),
                # Element count behind each channel statistic; fixes the
                # unbiased-variance correction of the running update.
                "m": int(np.prod(out.shape) // out.shape[1]),
            })
            return out
        out = orig_batch_norm(x, gamma, beta, running_mean, running_var,
                              training=False, momentum=momentum, eps=eps)
        operands = (x, gamma, beta, running_mean, running_var)
        return _record(tracer, "batch_norm", operands, {"eps": float(eps), "ndim": x.ndim}, out)

    def max_pool2d(x, kernel_size, stride=None):
        out = orig_max_pool(x, kernel_size, stride)
        params = {"kernel": int(kernel_size), "stride": int(stride or kernel_size)}
        if tracer.training:
            # Keep the argmax indices: the backward scatter needs them.
            node = tracer.emit(
                "max_pool2d_train", (tracer.ref(x),), dict(params)
            )
            tracer.bind(
                out, tracer.emit("tuple_get", (node,), {"index": 0}, shape=out.shape)
            )
            return out
        return _record(tracer, "max_pool2d", (x,), params, out)

    def cross_entropy(logits, targets):
        out = orig_cross_entropy(logits, targets)
        if not tracer.training:
            raise TraceError("cross_entropy is only traced in training mode")
        node = tracer.emit(
            "cross_entropy", (tracer.ref(logits), tracer.ref_label(targets)), {}
        )
        tracer.bind(
            out, tracer.emit("tuple_get", (node,), {"index": 0}, shape=out.shape)
        )
        return out

    def avg_pool2d(x, kernel_size, stride=None):
        out = orig_avg_pool(x, kernel_size, stride)
        params = {"kernel": int(kernel_size), "stride": int(stride or kernel_size)}
        return _record(tracer, "avg_pool2d", (x,), params, out)

    def global_avg_pool2d(x):
        return _record(tracer, "global_avg_pool2d", (x,), {}, orig_gap(x))

    def upsample_nearest2d(x, scale):
        out = orig_upsample(x, scale)
        return _record(tracer, "upsample_nearest2d", (x,), {"scale": int(scale)}, out)

    def softmax(x, axis=-1):
        return _record(tracer, "softmax", (x,), {"axis": int(axis)}, orig_softmax(x, axis))

    def log_softmax(x, axis=-1):
        return _record(tracer, "log_softmax", (x,), {"axis": int(axis)}, orig_log_softmax(x, axis))

    def dropout(x, p, rng, training=True):
        if training and p > 0.0:
            raise TraceError("active dropout is stochastic, not a static plan")
        return orig_dropout(x, p, rng, training=training)  # identity in eval

    return {
        (Tensor, "__add__"): binary("add", ops.add),
        (Tensor, "__radd__"): binary("add", lambda a, b: ops.add(b, a), swap=True),
        (Tensor, "__sub__"): binary("sub", ops.sub),
        (Tensor, "__rsub__"): binary("sub", lambda a, b: ops.sub(b, a), swap=True),
        (Tensor, "__mul__"): binary("mul", ops.mul),
        (Tensor, "__rmul__"): binary("mul", lambda a, b: ops.mul(b, a), swap=True),
        (Tensor, "__truediv__"): binary("div", ops.div),
        (Tensor, "__rtruediv__"): binary("div", lambda a, b: ops.div(b, a), swap=True),
        (Tensor, "__matmul__"): binary("matmul", ops.matmul),
        (Tensor, "__neg__"): unary("neg", ops.neg),
        (Tensor, "__pow__"): power,
        (Tensor, "__getitem__"): getitem,
        (Tensor, "sum"): reduction("sum", ops.tensor_sum),
        (Tensor, "mean"): reduction("mean", ops.tensor_mean),
        (Tensor, "max"): reduction("max", ops.tensor_max),
        (Tensor, "reshape"): reshape,
        (Tensor, "transpose"): transpose,
        (Tensor, "exp"): unary("exp", ops.exp),
        (Tensor, "log"): unary("log", ops.log),
        (Tensor, "sqrt"): unary("sqrt", ops.sqrt),
        (Tensor, "relu"): unary("relu", ops.relu),
        (Tensor, "tanh"): unary("tanh", ops.tanh),
        (Tensor, "sigmoid"): unary("sigmoid", ops.sigmoid),
        (Tensor, "abs"): unary("abs", ops.absolute),
        (ops, "maximum"): binary("maximum", ops.maximum),
        (ops, "clip"): clip,
        (ops, "pad2d"): pad2d,
        (ops, "concatenate"): concatenate,
        (ops, "getitem"): getitem,
        (F, "conv2d"): conv2d,
        (F, "linear"): linear,
        (F, "batch_norm"): batch_norm,
        (F, "max_pool2d"): max_pool2d,
        (F, "avg_pool2d"): avg_pool2d,
        (F, "global_avg_pool2d"): global_avg_pool2d,
        (F, "upsample_nearest2d"): upsample_nearest2d,
        (F, "softmax"): softmax,
        (F, "log_softmax"): log_softmax,
        (F, "dropout"): dropout,
        (F, "cross_entropy"): cross_entropy,
    }


@contextmanager
def _patched(tracer: _Tracer) -> Iterator[None]:
    table = _patched_attrs(tracer)
    saved = {key: getattr(owner, attr) for key in table for owner, attr in [key]}
    try:
        for (owner, attr), wrapper in table.items():
            setattr(owner, attr, wrapper)
        yield
    finally:
        for (owner, attr), original in saved.items():
            setattr(owner, attr, original)


def trace(model: Module, sample: np.ndarray) -> Graph:
    """Capture ``model``'s eval-mode forward on ``sample`` as a :class:`Graph`.

    The model's train/eval state is restored on exit, also on exception.
    Tracing is not thread-safe (it patches class/module attributes), which
    matches the process-parallel execution model of the rest of the stack.
    """
    tracer = _Tracer(model)
    inp = Tensor(sample)
    tracer.bind(inp, tracer.emit("input"))
    was_training = model.training
    model.eval()
    try:
        with no_grad(), _patched(tracer):
            out = model(inp)
    finally:
        model.train(was_training)
    if not isinstance(out, Tensor):
        raise TraceError(f"model returned {type(out).__name__}, not a Tensor")
    out_index = tracer.var_of.get(id(out))
    if out_index is None:
        raise TraceError("model output was not produced by traced ops")
    return Graph(
        nodes=tracer.nodes,
        input=tracer.var_of[id(inp)],
        output=out_index,
        sample_output=out.data.copy(),
    )


def trace_training(
    model: Module, loss_fn, sample: np.ndarray, labels: np.ndarray
) -> TrainGraph:
    """Capture a train-mode forward + loss as a :class:`TrainGraph`.

    Runs ``loss_fn(model(sample), labels)`` once with the model in train
    mode under the tracing patches.  The trace is side-effect free: every
    buffer (BatchNorm running stats included — the real train-mode forward
    updates them in place) is snapshotted before and restored, in place,
    after.  The model's train/eval state is restored on exit as well.
    """
    tracer = _Tracer(model, training=True)
    tracer.label_value = np.asarray(labels)
    inp = Tensor(sample)
    tracer.bind(inp, tracer.emit("input", shape=inp.shape))
    was_training = model.training
    snapshot = {name: buf.copy() for name, buf in model.named_buffers()}
    model.train()
    try:
        with no_grad(), _patched(tracer):
            logits = model(inp)
            loss = loss_fn(logits, tracer.label_value)
    finally:
        model.train(was_training)
        # Restore in place: rebinding via set_buffer would orphan the
        # array identities this tracer just keyed its buffer leaves on.
        for name, buf in model.named_buffers():
            buf[...] = snapshot[name]
    for tensor, what in ((logits, "logits"), (loss, "loss")):
        if not isinstance(tensor, Tensor):
            raise TraceError(f"{what} is {type(tensor).__name__}, not a Tensor")
        if tracer.var_of.get(id(tensor)) is None:
            raise TraceError(f"{what} was not produced by traced ops")
    return TrainGraph(
        nodes=tracer.nodes,
        shapes=tracer.shapes,
        input=tracer.var_of[id(inp)],
        label=tracer.label_index,
        logits=tracer.var_of[id(logits)],
        loss=tracer.var_of[id(loss)],
        bn_updates=tracer.bn_updates,
        sample_loss=loss.data.copy(),
        sample_logits=logits.data.copy(),
    )
