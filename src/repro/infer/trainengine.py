"""The training engine: compiled gradient plans behind one seam.

:func:`train_engine_for` is the seam ``Trainer.train`` goes through.  The
engine traces one train-mode forward + loss per (input shape, label shape),
derives a static backward (see :mod:`repro.infer.grad`), and then serves
every batch of that shape from the flat plan: no per-batch tape, closures,
or Python autograd traversal.  The tape path remains as fallback — for
``REPRO_TRAINC=0``, untraceable models (active dropout, tensor indexing),
or a plan that fails its compile-time validation.

Correctness machinery:

- every plan is validated at compile time against a full tape step on the
  probe batch — loss, logits, every parameter gradient, and the BatchNorm
  running-stat updates must agree (bitwise in exact mode, within a
  scale-aware tolerance in fast mode); the reference pass snapshots and
  restores gradients and buffers, so validation is side-effect free;
- parameters and buffers are bound *live* on every run (SGD mutates them
  each batch), so there is no constant refresh or content signature; the
  only cached-plan staleness hazard is mask *topology* — pruning a
  previously unpruned layer adds a ``weight * mask`` node the old trace
  lacks — so plans are dropped whenever any layer's mask-active flag flips;
- BatchNorm running statistics are updated by the engine after each plan
  run, replaying ``functional.batch_norm``'s in-place arithmetic exactly;
- the optimizer consumes plan gradients through :meth:`SGD.apply`, which
  shares the momentum state and arithmetic of ``step`` without mutating
  the (possibly shared) gradient buffers.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro import observe
from repro.autograd.tensor import Tensor
from repro.infer.grad import GradPlan
from repro.infer.plan import CompileError
from repro.infer.trace import TraceError, trace_training
from repro.nn.module import Module

ENV_VAR_TRAIN = "REPRO_TRAINC"

# Fast plans reorder convolution accumulation (per-offset GEMMs vs one
# im2col GEMM), so gradients match the tape to roughly sqrt(#terms)·eps
# relative.  The gate is scale-aware on the tensor's largest entry, with
# the scale floored at 1 so near-zero tensors get the absolute budget.
_GRAD_ATOL = 1e-5
_GRAD_RTOL = 1e-4
# On deep nets (resnet56/110) the reordered forward drifts borderline
# pre-activations across zero, flipping individual ReLU gates in the
# backward mask — a discrete per-entry difference no elementwise bound
# absorbs.  Gradients that fail the elementwise gate are still accepted
# within a relative-l2 budget: gate flips perturb the norm by a few
# percent (growing with batch size — more borderline activations), while
# genuine wiring bugs (wrong scale, missing term) shift it by O(1).
# Wiring itself is proven separately — the exact-mode oracle reproduces
# the tape bitwise on every registry architecture.
_GRAD_RNORM = 1e-1


def train_enabled() -> bool:
    """Compiled training is on unless ``REPRO_TRAINC=0`` (checked per call)."""
    return os.environ.get(ENV_VAR_TRAIN, "1").lower() not in ("0", "false", "off")


def _close(got, want, exact: bool) -> bool:
    got, want = np.asarray(got), np.asarray(want)
    if got.shape != want.shape:
        return False
    if exact:
        return bool(np.array_equal(got, want))
    diff = float(np.abs(got - want).max()) if got.size else 0.0
    bound = _GRAD_ATOL + _GRAD_RTOL * max(
        1.0, float(np.abs(want).max()) if want.size else 0.0
    )
    return diff <= bound


def _grad_close(got, want, exact: bool) -> bool:
    if _close(got, want, exact):
        return True
    if exact:
        return False
    got, want = np.asarray(got), np.asarray(want)
    diff = float(np.linalg.norm((got - want).ravel()))
    return diff <= _GRAD_RNORM * (float(np.linalg.norm(want.ravel())) + _GRAD_ATOL)


def _mask_signature(model: Module) -> tuple:
    """Which prunable layers currently have an active mask.

    Mask *values* need no invalidation (the mask buffer is a live-bound
    leaf), but flipping a layer between masked and unmasked changes the
    traced graph itself.
    """
    from repro.nn.prunable import PrunableWeightMixin

    return tuple(
        bool(m._mask_active)
        for m in model.modules()
        if isinstance(m, PrunableWeightMixin)
    )


class TrainEngine:
    """Compiled training steps for one (model, loss, optimizer) triple.

    :meth:`step` performs everything the tape-path loop body does —
    forward, loss, backward, BatchNorm running-stat updates, optimizer
    update — and returns ``(loss, logits)`` for the caller's bookkeeping.
    The optimizer's ``lr`` may be retuned by the caller between steps, as
    ``Trainer.train``'s schedule does.
    """

    def __init__(self, model, loss_fn, optimizer, exact: bool = False):
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.exact = exact
        # (x shape, x dtype, y shape) -> GradPlan | None (None: tape forever)
        self._plans: dict[tuple, GradPlan | None] = {}
        self._masks: tuple | None = None

    # -------------------------------------------------------------- compile

    def _tape_reference(self, x: np.ndarray, y: np.ndarray):
        """One tape step's outputs without its side effects.

        Returns ``(loss, logits, grads, stat_buffers)``; parameter ``grad``
        slots and every model buffer are restored before returning, and the
        optimizer is never stepped.
        """
        params = list(self.model.named_parameters())
        saved = [p.grad for _, p in params]
        snapshot = {name: buf.copy() for name, buf in self.model.named_buffers()}
        was_training = self.model.training
        self.model.train()
        try:
            for _, p in params:
                p.grad = None
            logits = self.model(Tensor(x))
            loss = self.loss_fn(logits, y)
            loss.backward()
            grads = {
                name: None if p.grad is None else p.grad.copy()
                for name, p in params
            }
            stat_buffers = {
                name: buf.copy() for name, buf in self.model.named_buffers()
            }
            return float(loss.data), logits.data.copy(), grads, stat_buffers
        finally:
            self.model.train(was_training)
            for (_, p), grad in zip(params, saved):
                p.grad = grad
            for name, buf in self.model.named_buffers():
                buf[...] = snapshot[name]

    def _validate(self, plan: GradPlan, x: np.ndarray, y: np.ndarray) -> None:
        want_loss, want_logits, want_grads, want_buffers = self._tape_reference(x, y)
        loss, logits, grads, stats = plan.run(x, y)
        if not _close(loss, want_loss, plan.exact):
            raise CompileError(f"loss parity: {float(loss)} vs {want_loss}")
        if not _close(logits, want_logits, plan.exact):
            raise CompileError("logits parity failed")
        for name, want in want_grads.items():
            got = grads.get(name)
            if (got is None) != (want is None):
                raise CompileError(f"gradient presence mismatch for {name!r}")
            if want is not None and not _grad_close(got, want, plan.exact):
                raise CompileError(f"gradient parity failed for {name!r}")
        # The running-stat update, simulated on copies, must land on the
        # same values the real train-mode forward wrote.
        buffers = dict(self.model.named_buffers())
        for upd, (mean, var) in zip(plan.bn_updates, stats):
            momentum, m = upd["momentum"], upd["m"]
            rm = buffers[upd["running_mean"]].copy()
            rm *= 1.0 - momentum
            rm += momentum * mean
            rv = buffers[upd["running_var"]].copy()
            rv *= 1.0 - momentum
            rv += momentum * var * (m / max(m - 1, 1))
            for name, got in ((upd["running_mean"], rm), (upd["running_var"], rv)):
                if not _close(got, want_buffers[name], plan.exact):
                    raise CompileError(f"running-stat parity failed for {name!r}")

    def _compile(self, x: np.ndarray, y: np.ndarray) -> GradPlan | None:
        key = (x.shape, x.dtype.str, np.asarray(y).shape)
        with observe.span(
            "trainc.compile", shape=list(x.shape), exact=self.exact
        ):
            try:
                graph = trace_training(self.model, self.loss_fn, x, y)
                plan = GradPlan(graph, self.model, exact=self.exact)
                self._validate(plan, x, y)
            except (TraceError, CompileError) as exc:
                observe.event(
                    "trainc.fallback", shape=list(x.shape), reason=repr(exc)
                )
                self._plans[key] = None
                return None
        self._plans[key] = plan
        return plan

    # ------------------------------------------------------------- fallback

    def _tape_step(self, x: np.ndarray, y: np.ndarray):
        """The Module/tape loop body, verbatim."""
        logits = self.model(Tensor(x))
        loss = self.loss_fn(logits, y)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.data), logits.data

    # ------------------------------------------------------------------ API

    def step(self, x: np.ndarray, y: np.ndarray):
        """One full training step; returns ``(loss, logits)``."""
        if not (train_enabled() and isinstance(self.model, Module)):
            observe.incr("trainc.fallback_batches")
            return self._tape_step(x, y)
        masks = _mask_signature(self.model)
        if masks != self._masks:
            if self._masks is not None and self._plans:
                self._plans.clear()
                observe.incr("trainc.mask_invalidations")
            self._masks = masks
        x = np.asarray(x)
        key = (x.shape, x.dtype.str, np.asarray(y).shape)
        if key not in self._plans:
            self._compile(x, y)
        plan = self._plans[key]
        if plan is None:
            observe.incr("trainc.fallback_batches")
            return self._tape_step(x, y)
        loss, logits, grads, stats = plan.run(x, y)
        self._apply_bn_updates(plan, stats)
        self.optimizer.apply(self._aligned(grads))
        observe.incr("trainc.batches")
        return float(loss), logits

    def compiled_for(self, x: np.ndarray, y: np.ndarray) -> bool:
        """True if a validated plan exists for this batch's shapes."""
        x = np.asarray(x)
        return self._plans.get((x.shape, x.dtype.str, np.asarray(y).shape)) is not None

    # ------------------------------------------------------------ internals

    def _apply_bn_updates(self, plan: GradPlan, stats) -> None:
        if not plan.bn_updates:
            return
        buffers = dict(self.model.named_buffers())
        for upd, (mean, var) in zip(plan.bn_updates, stats):
            momentum, m = upd["momentum"], upd["m"]
            rm = buffers[upd["running_mean"]]
            rm *= 1.0 - momentum
            rm += momentum * mean
            rv = buffers[upd["running_var"]]
            rv *= 1.0 - momentum
            rv += momentum * var * (m / max(m - 1, 1))

    def _aligned(self, grads: dict) -> list:
        """Plan gradients in ``optimizer.params`` order (None where absent)."""
        name_of = {id(p): name for name, p in self.model.named_parameters()}
        return [
            grads.get(name_of.get(id(p))) for p in self.optimizer.params
        ]


_TRAIN_ENGINES: "weakref.WeakKeyDictionary[Module, TrainEngine]" = (
    weakref.WeakKeyDictionary()
)


def train_engine_for(model, loss_fn, optimizer, exact: bool = False) -> TrainEngine:
    """The shared training engine for ``model``.

    Compiled plans survive across training phases (the prune → retrain
    loop re-enters ``Trainer.train`` with a fresh optimizer each time), so
    the loss/optimizer handles are refreshed on every call while the plan
    cache is kept; an ``exact`` flag change rebuilds the engine.
    """
    if isinstance(model, TrainEngine):
        return model
    engine = _TRAIN_ENGINES.get(model) if isinstance(model, Module) else None
    if engine is None or engine.exact != exact:
        engine = TrainEngine(model, loss_fn, optimizer, exact=exact)
        if isinstance(model, Module):
            _TRAIN_ENGINES[model] = engine
        return engine
    engine.loss_fn = loss_fn
    engine.optimizer = optimizer
    return engine
