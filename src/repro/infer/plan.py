"""Compile a traced :class:`~repro.infer.trace.Graph` into a flat numpy plan.

Compilation passes, in order:

1. **BatchNorm rewrite** — every eval-mode ``batch_norm`` node either folds
   into the producing ``conv2d``/``linear`` (when it is that node's only
   consumer) or lowers to a per-channel affine ``x * scale + shift``; the
   fold constants are computed in float64 and cast back once, keeping the
   plan within the 1e-5 logit-parity budget.
2. **Constant classification** — a node is constant iff none of its
   ancestors is the input.  The entire masked-weight subgraph
   (``weight * mask``) is constant, so densified weights are computed once
   at refresh time instead of on every forward.
3. **Dead-code elimination + scheduling** — a topological walk from the
   output keeps only live nodes, orders the runtime steps, and attaches a
   free list to each step so intermediate activations are dropped at their
   last use.

:meth:`CompiledPlan.refresh` re-resolves ``param``/``buffer`` leaves *by
name* from the live model (``load_state_dict`` and ``set_buffer`` rebind
the underlying arrays, so identity capture would go stale) and re-evaluates
every constant node.  The engine calls it whenever the model's state
signature changes.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.functional import _im2col
from repro.infer.trace import Graph, Node
from repro.nn.module import Module


class CompileError(RuntimeError):
    """The traced graph cannot be lowered to a runtime plan."""


# ------------------------------------------------------------ runtime kernels
# Each kernel takes (args: list[np.ndarray | float], params: dict) and must
# reproduce the corresponding autograd op's forward values exactly.


def _k_add(args, params):
    return args[0] + args[1]


def _k_sub(args, params):
    return args[0] - args[1]


def _k_mul(args, params):
    return args[0] * args[1]


def _k_div(args, params):
    return args[0] / args[1]


def _k_matmul(args, params):
    return args[0] @ args[1]


def _k_maximum(args, params):
    a, b = args
    return np.where(a >= b, a, b)  # tie/NaN semantics of ops.maximum


def _k_neg(args, params):
    return -args[0]


def _k_power(args, params):
    return args[0] ** params["exponent"]


def _k_exp(args, params):
    return np.exp(args[0])


def _k_log(args, params):
    return np.log(args[0])


def _k_sqrt(args, params):
    return np.sqrt(args[0])


def _k_relu(args, params):
    x = args[0]
    return np.where(x > 0, x, 0.0)  # matches ops.relu bit-for-bit


def _k_tanh(args, params):
    return np.tanh(args[0])


def _k_sigmoid(args, params):
    return 1.0 / (1.0 + np.exp(-args[0]))


def _k_abs(args, params):
    return np.abs(args[0])


def _k_clip(args, params):
    return np.clip(args[0], params["low"], params["high"])


def _k_getitem(args, params):
    return args[0][params["index"]]


def _k_reshape(args, params):
    return args[0].reshape(params["shape"])


def _k_transpose(args, params):
    return args[0].transpose(params["axes"])


def _k_sum(args, params):
    axis = _norm_axis(params["axis"], args[0].ndim)
    return args[0].sum(axis=axis, keepdims=params["keepdims"])


def _k_mean(args, params):
    axis = _norm_axis(params["axis"], args[0].ndim)
    return args[0].mean(axis=axis, keepdims=params["keepdims"])


def _k_max(args, params):
    axis = _norm_axis(params["axis"], args[0].ndim)
    return args[0].max(axis=axis, keepdims=params["keepdims"])


def _norm_axis(axis, ndim):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def _k_concatenate(args, params):
    return np.concatenate(args, axis=params["axis"])


def _k_pad2d(args, params):
    x, p = args[0], params["padding"]
    widths = [(0, 0)] * (x.ndim - 2) + [(p, p), (p, p)]
    return np.pad(x, widths)


def _k_conv2d(args, params):
    """Convolution, routed per shape to the fastest of three schedules.

    - tiny output maps: classic ``im2col`` gather + one big GEMM;
    - stride-1 k×k (the hot path): pad once into a *channel-first*
      scratch, then one contiguous-view GEMM per kernel offset with
      ``out=`` into a reused buffer — no per-offset gather copies, at the
      cost of ~(hp·wp)/(oh·ow) extra FLOPs on the padded map;
    - everything else (1×1 / strided): one ``tensordot`` per offset over
      strided views.

    All three orderings stay within the fold-rounding parity budget; the
    compile self-check validates whichever route this shape takes.
    """
    x, w = args[0], args[1]
    f, c, kh, kw = w.shape
    n, _, h, wi = x.shape
    stride, padding = params["stride"], params["padding"]
    hp, wp = h + 2 * padding, wi + 2 * padding
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    if oh * ow < 32:
        cols, oh, ow = _im2col(x, kh, kw, stride, padding)
        out = cols @ w.reshape(f, -1).T
        if len(args) == 3:
            out += args[2]
        return out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
    if stride == 1 and kh * kw > 1:
        # Scratch buffers persist across runs (plans are shape-specific);
        # the padded border is zeroed once and only the interior is
        # rewritten.  The accumulator is NOT reused: it leaves the kernel
        # as the node's output and may be returned to the caller.
        scratch = params.get("_scratch")
        if scratch is None or scratch[0].shape != (c, n, hp, wp):
            scratch = (
                np.zeros((c, n, hp, wp), dtype=x.dtype),
                np.empty((f, n * hp * wp), dtype=x.dtype),
            )
            params["_scratch"] = scratch
        xp, tbuf = scratch
        xp[:, :, padding : padding + h, padding : padding + wi] = x.transpose(
            1, 0, 2, 3
        )
        flat = xp.reshape(c, -1)
        acc = np.zeros((f, n, oh, ow), dtype=x.dtype)
        for dy in range(kh):
            for dx in range(kw):
                np.matmul(w[:, :, dy, dx], flat, out=tbuf)
                acc += tbuf.reshape(f, n, hp, wp)[:, :, dy : dy + oh, dx : dx + ow]
        if len(args) == 3:
            acc += args[2].reshape(f, 1, 1, 1)
        return acc.transpose(1, 0, 2, 3)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    acc = None
    for dy in range(kh):
        for dx in range(kw):
            xs = x[:, :, dy : dy + stride * oh : stride, dx : dx + stride * ow : stride]
            t = np.tensordot(w[:, :, dy, dx], xs, axes=([1], [1]))
            if acc is None:
                acc = t
            else:
                acc += t
    if len(args) == 3:
        acc += args[2].reshape(f, 1, 1, 1)
    return acc.transpose(1, 0, 2, 3)


def _k_conv2d_exact(args, params):
    """Reference convolution: the module's im2col arithmetic, any shape.

    ``CompiledPlan(exact=True)`` routes every conv through this so
    differential oracles compare bit-identical floating-point orderings
    instead of budgeting for the fast schedules' accumulation-order
    rounding.
    """
    x, w = args[0], args[1]
    f = w.shape[0]
    n = x.shape[0]
    cols, oh, ow = _im2col(
        x, w.shape[2], w.shape[3], params["stride"], params["padding"]
    )
    out = cols @ w.reshape(f, -1).T
    if len(args) == 3:
        out += args[2]
    return out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)


def _k_batch_norm_exact(args, params):
    """Reference eval BatchNorm: the module's arithmetic, same rounding.

    Only used by ``CompiledPlan(exact=True)``, which skips the BN rewrite
    entirely — ``bn_affine``'s refactored ``x·scale + shift`` is algebraically
    identical but rounds differently.
    """
    x, gamma, beta, mean, var = args
    shape = (1, -1, 1, 1) if params["ndim"] == 4 else (1, -1)
    invstd = 1.0 / np.sqrt(var + params["eps"])
    xhat = (x - mean.reshape(shape)) * invstd.reshape(shape)
    return gamma.reshape(shape) * xhat + beta.reshape(shape)


def _k_linear(args, params):
    out = args[0] @ args[1].T
    if len(args) == 3:
        out = out + args[2]
    return out


def _k_max_pool2d(args, params):
    x, k, s = args[0], params["kernel"], params["stride"]
    windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
    return windows[:, :, ::s, ::s].max(axis=(-2, -1))


def _k_avg_pool2d(args, params):
    x, k, s = args[0], params["kernel"], params["stride"]
    windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
    return windows[:, :, ::s, ::s].mean(axis=(-2, -1))


def _k_global_avg_pool2d(args, params):
    return args[0].mean(axis=(2, 3))


def _k_upsample_nearest2d(args, params):
    s = params["scale"]
    return args[0].repeat(s, axis=2).repeat(s, axis=3)


def _k_softmax(args, params):
    x, axis = args[0], params["axis"]
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return e / e.sum(axis=axis, keepdims=True)


def _k_log_softmax(args, params):
    x, axis = args[0], params["axis"]
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


# BatchNorm fold constants.  Computed in float64 and cast back to the host
# dtype once, so the folded path stays within the logit-parity budget even
# for ill-conditioned running statistics.


def _k_bn_scale(args, params):
    gamma, var = args
    return np.asarray(gamma, dtype=np.float64) / np.sqrt(
        np.asarray(var, dtype=np.float64) + params["eps"]
    )


def _k_bn_fold_weight(args, params):
    w, scale = args
    expand = (slice(None),) + (None,) * (w.ndim - 1)
    return (np.asarray(w, dtype=np.float64) * scale[expand]).astype(w.dtype)


def _k_bn_fold_bias(args, params):
    beta, mean, scale = args[0], args[1], args[2]
    bias = args[3] if len(args) == 4 else 0.0
    folded = np.asarray(beta, dtype=np.float64) + (
        np.asarray(bias, dtype=np.float64) - np.asarray(mean, dtype=np.float64)
    ) * scale
    return folded.astype(np.asarray(beta).dtype)


def _k_bn_affine_scale(args, params):
    return args[0].astype(np.float32).reshape(params["shape"])


def _k_bn_affine_shift(args, params):
    beta, mean, scale = args
    shift = np.asarray(beta, dtype=np.float64) - np.asarray(mean, dtype=np.float64) * scale
    return shift.astype(np.float32).reshape(params["shape"])


def _k_bn_affine(args, params):
    x, scale, shift = args
    return x * scale + shift


KERNELS = {
    "add": _k_add,
    "sub": _k_sub,
    "mul": _k_mul,
    "div": _k_div,
    "matmul": _k_matmul,
    "maximum": _k_maximum,
    "neg": _k_neg,
    "power": _k_power,
    "exp": _k_exp,
    "log": _k_log,
    "sqrt": _k_sqrt,
    "relu": _k_relu,
    "tanh": _k_tanh,
    "sigmoid": _k_sigmoid,
    "abs": _k_abs,
    "clip": _k_clip,
    "getitem": _k_getitem,
    "reshape": _k_reshape,
    "transpose": _k_transpose,
    "sum": _k_sum,
    "mean": _k_mean,
    "max": _k_max,
    "concatenate": _k_concatenate,
    "pad2d": _k_pad2d,
    "conv2d": _k_conv2d,
    "linear": _k_linear,
    "max_pool2d": _k_max_pool2d,
    "avg_pool2d": _k_avg_pool2d,
    "global_avg_pool2d": _k_global_avg_pool2d,
    "upsample_nearest2d": _k_upsample_nearest2d,
    "softmax": _k_softmax,
    "log_softmax": _k_log_softmax,
    "bn_scale": _k_bn_scale,
    "bn_fold_weight": _k_bn_fold_weight,
    "bn_fold_bias": _k_bn_fold_bias,
    "bn_affine_scale": _k_bn_affine_scale,
    "bn_affine_shift": _k_bn_affine_shift,
    "bn_affine": _k_bn_affine,
}

_LEAVES = ("input", "param", "buffer", "value")


# ----------------------------------------------------------- compile passes


def _runtime_flags(nodes: list[Node], input_index: int) -> list[bool]:
    """``runtime[i]`` — node i (transitively) depends on the input."""
    runtime = [False] * len(nodes)
    for i, node in enumerate(nodes):
        if i == input_index:
            runtime[i] = True
        elif node.op not in _LEAVES:
            runtime[i] = any(runtime[j] for j in node.inputs)
    return runtime


def _rewrite_batch_norm(graph: Graph, fold_bn: bool) -> tuple[list[Node], int]:
    """Lower every ``batch_norm`` node; returns (nodes, n_folded).

    Folding requires the normalized conv/linear output to have no other
    consumer (a residual tap must still see the *unnormalized* value).
    New constant nodes are appended at the end; downstream passes order
    nodes topologically, not by index.
    """
    nodes = [Node(n.op, n.inputs, dict(n.params)) for n in graph.nodes]
    runtime = _runtime_flags(nodes, graph.input)
    consumers: dict[int, int] = {}
    for node in nodes:
        for j in node.inputs:
            consumers[j] = consumers.get(j, 0) + 1
    consumers[graph.output] = consumers.get(graph.output, 0) + 1

    def append(node: Node) -> int:
        nodes.append(node)
        return len(nodes) - 1

    n_folded = 0
    for i in range(len(graph.nodes)):
        node = nodes[i]
        if node.op != "batch_norm":
            continue
        xi, gi, bi, mi, vi = node.inputs
        producer = nodes[xi]
        scale = append(Node("bn_scale", (gi, vi), {"eps": node.params["eps"]}))
        can_fold = (
            fold_bn
            and producer.op in ("conv2d", "linear")
            and consumers.get(xi, 0) == 1
            and runtime[xi]
        )
        if can_fold:
            folded_w = append(Node("bn_fold_weight", (producer.inputs[1], scale)))
            bias_in = (bi, mi, scale) + producer.inputs[2:3]
            folded_b = append(Node("bn_fold_bias", bias_in))
            nodes[i] = Node(
                producer.op,
                (producer.inputs[0], folded_w, folded_b),
                dict(producer.params),
            )
            n_folded += 1
        else:
            shape = (1, -1, 1, 1) if node.params["ndim"] == 4 else (1, -1)
            sc = append(Node("bn_affine_scale", (scale,), {"shape": shape}))
            sh = append(Node("bn_affine_shift", (bi, mi, scale), {"shape": shape}))
            nodes[i] = Node("bn_affine", (xi, sc, sh))
    return nodes, n_folded


def _toposort(nodes: list[Node], output: int) -> list[int]:
    """Live node indices in dependency order (iterative post-order DFS)."""
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(output, False)]
    while stack:
        index, done = stack.pop()
        if done:
            order.append(index)
            continue
        if index in seen:
            continue
        seen.add(index)
        stack.append((index, True))
        for j in nodes[index].inputs:
            if j not in seen:
                stack.append((j, False))
    return order


class CompiledPlan:
    """An executable eval-mode forward for one input shape/dtype.

    ``run`` streams one batch through the runtime steps; all constants
    (densified masked weights, folded BN tensors) live in the slot table
    and are only recomputed by :meth:`refresh`.

    ``exact=True`` builds a reference plan for differential oracles: convs
    take the module's own im2col route, BatchNorm stays unrewritten
    (``fold_bn`` is ignored), and in-place rewrites are disabled, so the
    plan replays the module's floating-point arithmetic bit for bit.
    """

    def __init__(self, graph: Graph, fold_bn: bool = True, exact: bool = False):
        _exact_kernels = {"conv2d": _k_conv2d_exact, "batch_norm": _k_batch_norm_exact}
        if exact:
            # Reference mode keeps batch_norm nodes as traced; the rewrite's
            # x·scale + shift form is algebraically equal but rounds
            # differently.
            nodes = [Node(n.op, n.inputs, dict(n.params)) for n in graph.nodes]
            self.n_folded = 0
        else:
            nodes, self.n_folded = _rewrite_batch_norm(graph, fold_bn)
        order = _toposort(nodes, graph.output)
        live = set(order)
        if graph.input not in live:
            raise CompileError("plan output does not depend on the input")
        runtime = _runtime_flags(nodes, graph.input)

        for i in order:
            op = nodes[i].op
            if op in _LEAVES or op in KERNELS or (exact and op in _exact_kernels):
                continue
            raise CompileError(f"no runtime kernel for op {op!r}")

        self._nodes = nodes
        self._input = graph.input
        self._output = graph.output
        self._const_order = [
            i for i in order if not runtime[i] and nodes[i].op != "input"
        ]
        # Last-use bookkeeping: free each runtime intermediate right after
        # the step that consumes it last (the output survives the sweep).
        runtime_steps = [
            i for i in order if runtime[i] and nodes[i].op not in _LEAVES
        ]
        last_use: dict[int, int] = {}
        for step in runtime_steps:
            for j in self._nodes[step].inputs:
                if runtime[j]:
                    last_use[j] = step
        frees_at: dict[int, list[int]] = {}
        for value, step in last_use.items():
            if value not in (self._output, self._input):
                frees_at.setdefault(step, []).append(value)
        # Slots touching a view-producing op may alias another slot's
        # buffer, so they are never written in place.
        aliased: set[int] = set()
        for i in runtime_steps:
            if nodes[i].op in ("reshape", "transpose", "getitem"):
                aliased.add(i)
                aliased.update(nodes[i].inputs)
        self._steps = []
        for i in runtime_steps:
            op = nodes[i].op
            frees = tuple(frees_at.get(i, ()))
            # In-place candidate: an elementwise op may overwrite an input
            # buffer that dies at this very step and cannot be aliased.
            inplace = None
            if not exact and op in ("relu", "add"):
                for pos, j in enumerate(nodes[i].inputs):
                    if j in frees and j not in aliased and runtime[j]:
                        inplace = pos
                        break
            kernel = (
                _exact_kernels[op]
                if exact and op in _exact_kernels
                else KERNELS[op]
            )
            self._steps.append(
                (kernel, nodes[i].inputs, i, nodes[i].params, frees,
                 op if inplace is not None else None, inplace)
            )
        self._runtime_slots = [i for i in runtime_steps if i != self._output]
        self._slots: list = [None] * len(nodes)
        self.op_counts: dict[str, int] = {}
        for i in runtime_steps:
            op = nodes[i].op
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
        # Set by the engine: the model-state signature the constants were
        # last refreshed against.
        self.signature: object = None

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the constant slots (densified weights, folded
        BN tensors) after the last :meth:`refresh` — the number a serving
        layer's plan-memory budget accounts against."""
        total = 0
        for i in self._const_order:
            value = self._slots[i]
            if isinstance(value, np.ndarray):
                total += value.nbytes
        return total

    def refresh(self, model: Module) -> None:
        """Recompute every constant slot from ``model``'s current state.

        Leaf slots are *copied*, never aliased: a plan must snapshot the
        state it was refreshed against.  Aliasing the model's live arrays
        looks cheaper but breaks under the mutate-then-restore pattern —
        an in-place update drifts the aliased array, and a later
        ``load_state_dict`` *rebinds* the model's parameters to fresh
        arrays with the original contents, so the engine's content
        signature matches the refresh-time state while the plan still
        points at the drifted orphans.
        """
        params = {name: p.data for name, p in model.named_parameters()}
        buffers = dict(model.named_buffers())
        slots = self._slots
        for i in self._const_order:
            node = self._nodes[i]
            if node.op == "param":
                try:
                    slots[i] = params[node.params["name"]].copy()
                except KeyError:
                    raise CompileError(
                        f"model has no parameter {node.params['name']!r}"
                    ) from None
            elif node.op == "buffer":
                try:
                    slots[i] = np.asarray(buffers[node.params["name"]]).copy()
                except KeyError:
                    raise CompileError(
                        f"model has no buffer {node.params['name']!r}"
                    ) from None
            elif node.op == "value":
                value = node.params["value"]
                slots[i] = value.copy() if isinstance(value, np.ndarray) else value
            else:
                slots[i] = KERNELS[node.op](
                    [slots[j] for j in node.inputs], node.params
                )

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the plan on one batch (constants must be refreshed)."""
        slots = self._slots
        slots[self._input] = x
        try:
            for kernel, inputs, out_index, params, frees, iop, ipos in self._steps:
                args = [slots[j] for j in inputs]
                if iop == "relu":
                    out = np.maximum(args[0], 0.0, out=args[0])
                elif (
                    iop == "add"
                    and isinstance(args[0], np.ndarray)
                    and isinstance(args[1], np.ndarray)
                    and args[0].shape == args[1].shape
                    and args[0].dtype == args[1].dtype
                ):
                    out = np.add(args[0], args[1], out=args[ipos])
                else:
                    out = kernel(args, params)
                slots[out_index] = out
                for j in frees:
                    slots[j] = None
            return slots[self._output]
        finally:
            slots[self._input] = None
            for i in self._runtime_slots:
                slots[i] = None
            slots[self._output] = None
