"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  ``as_rng`` normalizes the two, and
``spawn_rng`` derives independent child generators so that, e.g., data
generation and weight initialization never share a stream.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged so callers can thread
    a single stream through a pipeline.  ``None`` creates a fresh,
    OS-entropy-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [np.random.Generator(np.random.PCG64(s)) for s in rng.bit_generator.seed_seq.spawn(n)]


class RngMixin:
    """Mixin giving a class a lazily created, seedable ``rng`` attribute."""

    _rng: np.random.Generator | None = None
    _seed: int | None = None

    def seed(self, seed: int | np.random.Generator | None) -> None:
        """(Re-)seed this object's random stream."""
        self._rng = as_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = as_rng(self._seed)
        return self._rng
