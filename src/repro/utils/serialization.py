"""Serialization of model / experiment state to ``.npz`` archives.

State dicts map string keys to numpy arrays.  Nested metadata (scalars,
strings) is stored alongside under a reserved ``__meta__`` key as JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.parallel.locks import atomic_write

_META_KEY = "__meta__"


def save_state(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Save ``arrays`` (and optional JSON-serializable ``meta``) to ``path``.

    The write is atomic: the archive is staged to a temporary file in the
    destination directory and promoted with ``os.replace``, so a crash
    mid-write never corrupts an existing artifact and concurrent readers
    only ever see complete archives.  Returns the resolved path with a
    ``.npz`` suffix.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {k: np.asarray(v) for k, v in arrays.items()}
    if _META_KEY in payload:
        raise ValueError(f"array key {_META_KEY!r} is reserved")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(dict(meta or {})).encode("utf-8"), dtype=np.uint8
    )
    with atomic_write(path) as tmp:
        # Write through a file handle: savez would append ".npz" to the
        # temp name and break the atomic-replace pairing.
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
    # Fault injection: may tear (truncate) the published archive, as a
    # crashed copy or lost page would.  No-op unless chaos is enabled.
    from repro.resilience import chaos

    chaos.on_publish(path)
    return path


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load arrays and metadata previously written by :func:`save_state`."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files if k != _META_KEY}
        meta: dict[str, Any] = {}
        if _META_KEY in archive.files:
            meta = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
    return arrays, meta


def try_load_state(
    path: str | Path,
) -> tuple[dict[str, np.ndarray], dict[str, Any]] | None:
    """Like :func:`load_state`, but ``None`` if missing/unreadable/corrupt.

    Cache layers treat a truncated or garbage archive (e.g. from a write
    interrupted before atomic saves existed, or a torn copy) as a miss
    rather than a permanent failure.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if not path.exists():
        return None
    try:
        return load_state(path)
    except Exception:
        return None
