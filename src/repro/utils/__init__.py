"""Shared utilities: deterministic RNG handling, serialization, table rendering."""

from repro.utils.rng import RngMixin, as_rng, spawn_rng
from repro.utils.serialization import load_state, save_state
from repro.utils.tables import format_table

__all__ = [
    "RngMixin",
    "as_rng",
    "spawn_rng",
    "save_state",
    "load_state",
    "format_table",
]
