"""Plain-text table rendering for benchmark / experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them in a GitHub-flavoured-markdown-compatible layout.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned markdown table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def line(values: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"

    out = []
    if title:
        out.append(f"### {title}")
    out.append(line(list(headers)))
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_mean_std(mean: float, std: float, digits: int = 1) -> str:
    """Render ``mean ± std`` the way the paper's tables do."""
    return f"{mean:.{digits}f} ± {std:.{digits}f}"
