"""Pruning methods and the PRUNERETRAIN pipeline (Algorithm 1).

Methods live in a declarative registry (:mod:`repro.pruning.registry`):
each is a composable spec — scoring family x allocation policy x schedule
— with typed hyperparameters, addressable as strings like ``"wt"`` or
``"lowrank(rank_frac=0.5)"``.  The paper's four methods (Table 1) plus the
registry's baseline/decomposition families:

============  ============  =============  ======================  ==========
Method        Type          Data-informed  Scoring                 Allocation
============  ============  =============  ======================  ==========
WT            unstructured  no             ``|W_ij|``              global
SiPP          unstructured  yes            ``∝ |W_ij a_j(x)|``     global
FT            structured    no             ``‖W_:j‖₁``             solver
PFP           structured    yes            ``∝ ‖W_:j a(x)‖_∞``     solver
lowrank       structured    no             truncated-SVD energy    solver
uniform       unstructured  no             ``|W_ij|``              uniform
random        unstructured  no             seeded noise            global
============  ============  =============  ======================  ==========
"""

from repro.pruning.mask import (
    model_prune_ratio,
    prunable_layers,
    structured_prunable_layers,
    total_prunable_weights,
)
from repro.pruning.base import (
    ActivationStats,
    PruneMethod,
    collect_activation_stats,
    global_threshold_prune,
    uniform_threshold_prune,
)
from repro.pruning.wt import WeightThresholding
from repro.pruning.sipp import SiPP
from repro.pruning.ft import FilterThresholding
from repro.pruning.pfp import ProvableFilterPruning
from repro.pruning.lowrank import LowRankDecomposition
from repro.pruning.baselines import RandomPruning, UniformMagnitude
from repro.pruning.pipeline import PruneCheckpoint, PruneRetrain, PruneRun
from repro.pruning.spec import HyperParam, MethodSpec, SpecError, parse_spec
from repro.pruning.registry import (
    available_methods,
    available_specs,
    build_method,
    canonical_spec,
    describe_methods,
    method_spec,
    register_method,
    spec_of,
)

__all__ = [
    "prunable_layers",
    "structured_prunable_layers",
    "total_prunable_weights",
    "model_prune_ratio",
    "PruneMethod",
    "ActivationStats",
    "collect_activation_stats",
    "global_threshold_prune",
    "uniform_threshold_prune",
    "WeightThresholding",
    "SiPP",
    "FilterThresholding",
    "ProvableFilterPruning",
    "LowRankDecomposition",
    "UniformMagnitude",
    "RandomPruning",
    "PruneRetrain",
    "PruneRun",
    "PruneCheckpoint",
    "HyperParam",
    "MethodSpec",
    "SpecError",
    "parse_spec",
    "available_methods",
    "available_specs",
    "build_method",
    "canonical_spec",
    "describe_methods",
    "method_spec",
    "register_method",
    "spec_of",
]
