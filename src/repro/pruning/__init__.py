"""Pruning methods and the PRUNERETRAIN pipeline (Algorithm 1).

Four methods, as in Table 1 of the paper:

============  ============  =============  ======================  ========
Method        Type          Data-informed  Sensitivity             Scope
============  ============  =============  ======================  ========
WT            unstructured  no             ``|W_ij|``              global
SiPP          unstructured  yes            ``∝ |W_ij a_j(x)|``     global
FT            structured    no             ``‖W_:j‖₁``             local
PFP           structured    yes            ``∝ ‖W_:j a(x)‖_∞``     local
============  ============  =============  ======================  ========
"""

from repro.pruning.mask import (
    model_prune_ratio,
    prunable_layers,
    structured_prunable_layers,
    total_prunable_weights,
)
from repro.pruning.base import ActivationStats, PruneMethod, collect_activation_stats
from repro.pruning.wt import WeightThresholding
from repro.pruning.sipp import SiPP
from repro.pruning.ft import FilterThresholding
from repro.pruning.pfp import ProvableFilterPruning
from repro.pruning.pipeline import PruneCheckpoint, PruneRetrain, PruneRun
from repro.pruning.registry import available_methods, build_method

__all__ = [
    "prunable_layers",
    "structured_prunable_layers",
    "total_prunable_weights",
    "model_prune_ratio",
    "PruneMethod",
    "ActivationStats",
    "collect_activation_stats",
    "WeightThresholding",
    "SiPP",
    "FilterThresholding",
    "ProvableFilterPruning",
    "PruneRetrain",
    "PruneRun",
    "PruneCheckpoint",
    "available_methods",
    "build_method",
]
