"""Control-arm baselines: uniform-magnitude and random-mask pruning.

Blalock et al. ("What is the State of Neural Network Pruning?") argue that
method comparisons are meaningless without standardized baselines.  These
are the two control arms every fair comparison needs:

- ``uniform`` — magnitude scoring with *per-layer uniform* allocation:
  every layer prunes the same fraction of its own smallest weights.  The
  registry sibling of WT (same scoring family, different allocation
  policy); the gap between ``wt`` and ``uniform`` curves isolates what
  global allocation buys.
- ``random`` — seeded random scores with global allocation: the floor any
  informed scoring family must beat.  The draw is deterministic in
  (``seed``, cumulative pruned count), so iterative ladders re-draw fresh
  randomness per step yet whole runs replay bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.pruning.base import (
    PruneMethod,
    global_threshold_prune,
    uniform_threshold_prune,
)
from repro.pruning.mask import prunable_layers, pruned_weights
from repro.pruning.registry import register_method
from repro.pruning.spec import HyperParam


@register_method(
    "uniform",
    scoring="magnitude",
    allocation="uniform",
    doc="per-layer uniform |W_ij| magnitude pruning (WT's layerwise sibling)",
)
class UniformMagnitude(PruneMethod):
    """Per-layer uniform magnitude pruning (unstructured, data-free)."""

    structured = False
    data_informed = False

    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        sensitivities = {
            name: np.abs(layer.weight.data) for name, layer in prunable_layers(model)
        }
        return uniform_threshold_prune(model, sensitivities, target_ratio)


@register_method(
    "random",
    scoring="random",
    allocation="global",
    hyperparams=(
        HyperParam("seed", int, 0, low=0, doc="base seed of the score draw"),
    ),
    doc="seeded random-mask pruning (the control arm)",
)
class RandomPruning(PruneMethod):
    """Seeded random pruning (unstructured, data-free)."""

    structured = False
    data_informed = False

    def __init__(self, seed: int = 0, steps: int = 1):
        super().__init__(steps=steps)
        if seed < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
        self.seed = int(seed)

    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        # Derive the step's stream from (seed, weights already pruned):
        # deterministic under replay, fresh per step of an iterative ladder.
        rng = np.random.default_rng([self.seed, pruned_weights(model)])
        sensitivities = {
            name: rng.random(layer.weight.shape)
            for name, layer in prunable_layers(model)
        }
        return global_threshold_prune(model, sensitivities, target_ratio)
