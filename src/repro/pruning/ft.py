"""Filter Thresholding (FT): uniform-layer-ratio channel pruning.

He et al. (2018) / Li et al. (2016) as used by Renda et al. (2020): the
sensitivity of channel ``j`` is the ℓ1 norm of the weight column ``W_:j``,
and layer allocation is a *uniform* prune ratio across layers, bisected by
the shared solver to meet the global weight target (the paper deploys
uniform allocation to avoid extra hyperparameters).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.pruning.base import PruneMethod
from repro.pruning.mask import structured_prunable_layers
from repro.pruning.registry import register_method
from repro.pruning.structured import (
    apply_channel_counts,
    pruned_channels,
    solve_counts_for_target,
)


def channel_l1_sensitivity(weight: np.ndarray) -> np.ndarray:
    """``‖W_:j‖₁`` per input channel of a conv weight (F, C, KH, KW)."""
    return np.abs(weight).sum(axis=(0, 2, 3))


@register_method(
    "ft",
    scoring="channel_l1",
    allocation="solver",
    doc="structured ℓ1-norm channel pruning, uniform layer allocation",
)
class FilterThresholding(PruneMethod):
    """Structured ℓ1-norm channel pruning with uniform layer allocation."""

    structured = True
    data_informed = False

    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        layers = dict(structured_prunable_layers(model))
        if not layers:
            raise ValueError("model has no structured-prunable conv layers")
        sensitivities = {
            name: channel_l1_sensitivity(layer.weight.data)
            for name, layer in layers.items()
        }
        already = {
            name: int(pruned_channels(layer).sum()) for name, layer in layers.items()
        }

        def counts_at(q: float) -> dict[str, int]:
            counts = {}
            for name, layer in layers.items():
                c = layer.in_channels
                want = int(round(q * c))
                counts[name] = int(np.clip(want, already[name], c - 1))
            return counts

        counts = solve_counts_for_target(model, target_ratio, counts_at)
        return apply_channel_counts(model, sensitivities, counts)
