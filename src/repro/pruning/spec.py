"""Declarative method specs: typed hyperparameters and the spec-string grammar.

A pruning method is not a bare class name but a *composable spec*:

    scoring family x allocation policy x schedule

with typed hyperparameters.  Specs are addressable as strings —

    "wt"                      the registered defaults
    "pfp(gamma=1e-12)"        one overridden hyperparameter
    "lowrank(rank_frac=0.5, steps=3)"

— and every spec has a unique *canonical* form (lower-case name, sorted
keyword arguments, defaults omitted) so the same method configuration
always produces the same string.  The canonical string is what flows into
``PruneRun.meta``, the zoo artifact cache key, and the serve registry
keys: two different hyperparameter settings can never collide on one
cache entry, and a saved artifact can be rebuilt from its metadata alone.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

#: Axes a registered spec must declare, and their allowed values.  They are
#: metadata (used for docs, filtering, and sanity checks), not dispatch:
#: the method class implements the combination it declares.
SCORING_FAMILIES = (
    "magnitude",  # |W_ij| (data-free)
    "sensitivity",  # ∝ |W_ij a_j(x)| (data-informed)
    "channel_l1",  # ‖W_:j‖₁ per channel (data-free, structured)
    "channel_linf",  # ℓ∞ of relative sensitivities (data-informed, structured)
    "lowrank_energy",  # per-channel energy in the truncated-SVD subspace
    "random",  # seeded noise (the control arm)
)
ALLOCATION_POLICIES = (
    "global",  # one threshold across all layers
    "uniform",  # the same prune fraction in every layer
    "solver",  # a scalar knob bisected to meet the global target
)
SCHEDULES = (
    "oneshot",  # a single prune call goes straight to the target
    "iterative",  # the target is approached in `steps` sub-steps, re-scoring
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_SPEC_RE = re.compile(r"^\s*(?P<name>[A-Za-z][A-Za-z0-9_]*)\s*(?:\((?P<args>.*)\))?\s*$", re.S)


class SpecError(ValueError):
    """A malformed spec string or an invalid hyperparameter binding."""


@dataclass(frozen=True)
class HyperParam:
    """One typed hyperparameter of a pruning method.

    ``kind`` is the Python type (``int``, ``float``, ``bool``, or ``str``);
    ``low``/``high`` bound numeric values inclusively; ``low_open`` makes
    the lower bound exclusive (e.g. PFP's ``gamma`` in (0, 1)).
    """

    name: str
    kind: type
    default: Any
    low: float | None = None
    high: float | None = None
    low_open: bool = False
    high_open: bool = False
    doc: str = ""

    def coerce(self, value: Any) -> Any:
        """Validate (and minimally convert) ``value``; raise :class:`SpecError`."""
        if self.kind is bool:
            if not isinstance(value, bool):
                raise SpecError(
                    f"hyperparameter {self.name!r} expects bool, got {value!r}"
                )
            return value
        if self.kind is float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"hyperparameter {self.name!r} expects float, got {value!r}"
                )
            value = float(value)
        elif self.kind is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(
                    f"hyperparameter {self.name!r} expects int, got {value!r}"
                )
        elif self.kind is str:
            if not isinstance(value, str):
                raise SpecError(
                    f"hyperparameter {self.name!r} expects str, got {value!r}"
                )
        else:  # pragma: no cover - registration-time error
            raise SpecError(f"unsupported hyperparameter kind {self.kind!r}")
        if self.low is not None and (value < self.low or (self.low_open and value == self.low)):
            raise SpecError(
                f"hyperparameter {self.name!r} must be "
                f"{'>' if self.low_open else '>='} {self.low}, got {value!r}"
            )
        if self.high is not None and (value > self.high or (self.high_open and value == self.high)):
            raise SpecError(
                f"hyperparameter {self.name!r} must be "
                f"{'<' if self.high_open else '<='} {self.high}, got {value!r}"
            )
        return value


@dataclass(frozen=True)
class MethodSpec:
    """The declarative identity of one registered pruning method."""

    name: str
    scoring: str
    allocation: str
    schedule: str
    structured: bool
    data_informed: bool
    hyperparams: tuple[HyperParam, ...] = ()
    factory: Callable[..., Any] | None = field(default=None, compare=False, repr=False)
    doc: str = ""

    def __post_init__(self):
        if not _NAME_RE.match(self.name):
            raise SpecError(f"invalid method name {self.name!r}")
        if self.scoring not in SCORING_FAMILIES:
            raise SpecError(f"unknown scoring family {self.scoring!r}")
        if self.allocation not in ALLOCATION_POLICIES:
            raise SpecError(f"unknown allocation policy {self.allocation!r}")
        if self.schedule not in SCHEDULES:
            raise SpecError(f"unknown schedule {self.schedule!r}")
        seen = set()
        for hp in self.hyperparams:
            if hp.name in seen:
                raise SpecError(f"duplicate hyperparameter {hp.name!r}")
            seen.add(hp.name)

    # -------------------------------------------------------------- binding
    def param(self, name: str) -> HyperParam:
        for hp in self.hyperparams:
            if hp.name == name:
                return hp
        raise SpecError(
            f"method {self.name!r} has no hyperparameter {name!r}; "
            f"accepts: {sorted(hp.name for hp in self.hyperparams)}"
        )

    def defaults(self) -> dict[str, Any]:
        return {hp.name: hp.default for hp in self.hyperparams}

    def resolve(self, kwargs: Mapping[str, Any]) -> dict[str, Any]:
        """Defaults overlaid with validated ``kwargs`` (full binding)."""
        bound = self.defaults()
        for key, value in kwargs.items():
            bound[key] = self.param(key).coerce(value)
        return bound

    def build(self, **kwargs):
        """Instantiate the method with validated hyperparameters."""
        if self.factory is None:  # pragma: no cover - registration-time error
            raise SpecError(f"method {self.name!r} has no factory")
        return self.factory(**self.resolve(kwargs))

    # ------------------------------------------------------------- strings
    def canonical(self, kwargs: Mapping[str, Any] | None = None) -> str:
        """The unique string form of this spec with ``kwargs`` applied.

        Defaults are omitted and the remaining kwargs sorted, so every
        distinct configuration has exactly one canonical string — the
        property cache keys rely on.
        """
        bound = self.resolve(kwargs or {})
        parts = [
            f"{name}={format_value(bound[name])}"
            for name in sorted(bound)
            if bound[name] != self.param(name).default
        ]
        return self.name if not parts else f"{self.name}({', '.join(parts)})"


def format_value(value: Any) -> str:
    """Literal form of a hyperparameter value that round-trips via parse."""
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def parse_spec(text: str) -> tuple[str, dict[str, Any]]:
    """``"lowrank(rank_frac=0.5)"`` → ``("lowrank", {"rank_frac": 0.5})``.

    The grammar is ``name`` or ``name(key=value, ...)`` with Python
    literals as values; the name is case-insensitive.  Raises
    :class:`SpecError` on anything else.
    """
    if not isinstance(text, str):
        raise SpecError(f"spec must be a string, got {text!r}")
    match = _SPEC_RE.match(text)
    if not match:
        raise SpecError(f"malformed method spec {text!r}")
    name = match.group("name").lower()
    args = match.group("args")
    if args is None:
        return name, {}
    try:
        call = ast.parse(f"_({args})", mode="eval").body
    except SyntaxError:
        raise SpecError(f"malformed hyperparameters in spec {text!r}") from None
    if not isinstance(call, ast.Call) or call.args:
        raise SpecError(
            f"spec {text!r}: hyperparameters must be keyword=literal pairs"
        )
    kwargs: dict[str, Any] = {}
    for kw in call.keywords:
        if kw.arg is None:
            raise SpecError(f"spec {text!r}: ** expansion is not allowed")
        try:
            kwargs[kw.arg] = ast.literal_eval(kw.value)
        except ValueError:
            raise SpecError(
                f"spec {text!r}: value of {kw.arg!r} must be a literal"
            ) from None
    return name, kwargs
