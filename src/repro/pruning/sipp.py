"""SiPP: sensitivity-informed provable pruning (Baykal et al., 2019b).

The sensitivity of weight ``W_ij`` incorporates the input activation it
multiplies: ``g_ij ∝ |W_ij| · a_j(x)`` for sample inputs ``x ∈ S``.  We use
the *relative* form — each edge's share of its output unit's total incoming
magnitude — which is the quantity SiPP's sampling bounds are stated in, and
sort it globally.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.pruning.base import PruneMethod, collect_activation_stats, global_threshold_prune
from repro.pruning.mask import prunable_layers
from repro.pruning.registry import register_method


def relative_weight_sensitivity(
    weight: np.ndarray, activation: np.ndarray
) -> np.ndarray:
    """``|W_ij| a_j / Σ_k |W_ik| a_k`` for linear (2-D) or conv (4-D) weights."""
    if weight.ndim == 2:
        contrib = np.abs(weight) * activation[None, :]
        denom = contrib.sum(axis=1, keepdims=True)
    elif weight.ndim == 4:
        contrib = np.abs(weight) * activation[None, :, None, None]
        denom = contrib.sum(axis=(1, 2, 3), keepdims=True)
    else:
        raise ValueError(f"unsupported weight ndim {weight.ndim}")
    return contrib / (denom + 1e-12)


@register_method(
    "sipp",
    scoring="sensitivity",
    allocation="global",
    doc="global data-informed weight pruning (relative sensitivities)",
)
class SiPP(PruneMethod):
    """Global data-informed weight pruning."""

    structured = False
    data_informed = True

    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        stats = collect_activation_stats(model, sample_inputs)
        sensitivities = {
            name: relative_weight_sensitivity(layer.weight.data, stats[name])
            for name, layer in prunable_layers(model)
        }
        return global_threshold_prune(model, sensitivities, target_ratio)
