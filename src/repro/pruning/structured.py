"""Shared machinery for structured (channel) pruning.

Structured methods prune *input channels* of conv layers — the ``W_:j``
columns of Table 1 — which is equivalent to removing the producing layer's
filters.  A pruned channel zeroes an entire column of the weight tensor, so
channel decisions translate directly into weight prune ratios and FLOP
reductions.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.nn.conv import Conv2d
from repro.nn.module import Module
from repro.pruning.mask import (
    model_prune_ratio,
    structured_prunable_layers,
    total_prunable_weights,
)


def channel_weight_cost(layer: Conv2d) -> int:
    """Weights removed by pruning one input channel of ``layer``."""
    return layer.out_channels * layer.kernel_size * layer.kernel_size


def pruned_channels(layer: Conv2d) -> np.ndarray:
    """Boolean (C,) array of input channels that are fully masked."""
    return (layer.weight_mask.sum(axis=(0, 2, 3)) == 0)


def apply_channel_counts(
    model: Module,
    sensitivities: Mapping[str, np.ndarray],
    counts: Mapping[str, int],
) -> float:
    """Prune the ``counts[name]`` lowest-sensitivity channels of each layer.

    Counts are cumulative (include already-pruned channels); already-pruned
    channels always sort lowest, so the operation is monotone.  Returns the
    achieved model weight prune ratio.
    """
    for name, layer in structured_prunable_layers(model):
        count = counts.get(name, 0)
        scores = sensitivities[name].astype(np.float64).copy()
        scores[pruned_channels(layer)] = -np.inf
        if count >= layer.in_channels:
            raise ValueError(f"cannot prune all {layer.in_channels} channels of {name}")
        drop = np.argsort(scores, kind="stable")[:count]
        mask = layer.weight_mask.copy()
        mask[:, drop, :, :] = 0.0
        layer.set_weight_mask(mask)
    return model_prune_ratio(model)


def _achieved_ratio(
    model: Module, counts: Mapping[str, int], costs: Mapping[str, int]
) -> float:
    """Predicted weight prune ratio if ``counts`` channels are pruned.

    Counts per structured layer are cumulative; unstructured masks outside
    structured layers contribute their current pruned weights.
    """
    total = total_prunable_weights(model)
    structured = dict(structured_prunable_layers(model))
    pruned = sum(counts.get(name, 0) * costs[name] for name in structured)
    # Weights pruned in layers structured methods cannot touch (carried over
    # state, e.g. if a mask was loaded) still count toward the ratio.
    from repro.pruning.mask import prunable_layers

    for name, layer in prunable_layers(model):
        if name not in structured:
            pruned += layer.num_pruned
    return pruned / total


def solve_counts_for_target(
    model: Module,
    target_ratio: float,
    counts_at: Callable[[float], dict[str, int]],
) -> dict[str, int]:
    """Bisect a scalar knob in [0, 1] so the weight ratio reaches the target.

    ``counts_at(t)`` maps the knob (a uniform prune fraction for FT, an
    error budget for PFP) to cumulative per-layer channel counts; counts
    must be non-decreasing in ``t``.  Returns the counts of the smallest
    knob whose predicted ratio >= target, or the maximum-prune counts if the
    target is unreachable (structured methods cannot touch every weight).
    """
    layers = dict(structured_prunable_layers(model))
    costs = {name: channel_weight_cost(layer) for name, layer in layers.items()}

    if _achieved_ratio(model, counts_at(1.0), costs) < target_ratio:
        return counts_at(1.0)

    lo, hi = 0.0, 1.0
    for _ in range(50):
        mid = 0.5 * (lo + hi)
        if _achieved_ratio(model, counts_at(mid), costs) >= target_ratio:
            hi = mid
        else:
            lo = mid
    return counts_at(hi)
