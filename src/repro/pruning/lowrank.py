"""ALDS-style low-rank layer decomposition (Liebenwein et al., 2021).

The torchprune/ALDS role in this registry: each conv layer's weight is
reshaped to the matrix ``M ∈ R^{F x C·KH·KW}`` and truncated-SVD'd.  With
retained rank ``k = max(1, round(rank_frac · rank(M)))``:

- **scoring** (``lowrank_energy``): channel ``j``'s sensitivity is the
  squared Frobenius mass its ``KH·KW`` columns carry inside the rank-``k``
  subspace, ``Σ_r Σ_kk (σ_r V[j·KK+kk, r])²`` — channels that live mostly
  outside the dominant singular directions score low;
- **allocation** (solver): a uniform channel fraction is bisected, exactly
  as FT, until the masked-weight ratio meets the global target;
- **decomposition** (``project=True``): after masking, each layer's
  surviving weight is replaced by its best rank-``k`` approximation
  ``U_k Σ_k V_kᵀ`` (re-masked, so pruned entries stay exactly zero).  This
  is the mask-framework rendering of ALDS's two-factor replacement: the
  network enters retraining spectrally compressed, while the parameter
  accounting stays in terms of masked weights like every other structured
  method.

Data-free and structured; the prune *ratio* semantics are identical to
FT/PFP so all downstream accounting (PR/FR tables, FLOP reductions,
verify invariants) applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.pruning.base import PruneMethod
from repro.pruning.mask import structured_prunable_layers
from repro.pruning.registry import register_method
from repro.pruning.spec import HyperParam
from repro.pruning.structured import (
    apply_channel_counts,
    pruned_channels,
    solve_counts_for_target,
)


def retained_rank(weight: np.ndarray, rank_frac: float) -> int:
    """``max(1, round(rank_frac · min(F, C·KH·KW)))`` for a conv weight."""
    f = weight.shape[0]
    cols = int(np.prod(weight.shape[1:]))
    return max(1, int(round(rank_frac * min(f, cols))))


def lowrank_channel_energy(weight: np.ndarray, rank_frac: float) -> np.ndarray:
    """Per-input-channel energy inside the truncated-SVD subspace.

    For ``M = weight.reshape(F, C·KH·KW) = U Σ Vᵀ`` the energy of column
    ``c`` under rank ``k`` is ``Σ_{r<k} (σ_r V[c, r])²``; channel ``j``
    sums its ``KH·KW`` columns.  The total over all channels equals
    ``Σ_{r<k} σ_r²``, the retained Frobenius mass.
    """
    f, c = weight.shape[0], weight.shape[1]
    per_col = int(np.prod(weight.shape[2:])) if weight.ndim > 2 else 1
    m = weight.reshape(f, c * per_col)
    _, s, vt = np.linalg.svd(m, full_matrices=False)
    k = retained_rank(weight, rank_frac)
    col_energy = ((s[:k, None] ** 2) * (vt[:k] ** 2)).sum(axis=0)
    return col_energy.reshape(c, per_col).sum(axis=1)


def project_to_rank(weight: np.ndarray, rank_frac: float) -> np.ndarray:
    """The best rank-``k`` approximation of the reshaped weight."""
    shape = weight.shape
    m = weight.reshape(shape[0], -1)
    u, s, vt = np.linalg.svd(m, full_matrices=False)
    k = retained_rank(weight, rank_frac)
    recon = (u[:, :k] * s[:k]) @ vt[:k]
    return recon.reshape(shape).astype(weight.dtype)


@register_method(
    "lowrank",
    scoring="lowrank_energy",
    allocation="solver",
    hyperparams=(
        HyperParam(
            "rank_frac", float, 0.5, low=0.0, high=1.0, low_open=True,
            doc="fraction of the full rank retained by the truncated SVD",
        ),
        HyperParam(
            "project", bool, True,
            doc="replace surviving weights by their rank-k reconstruction",
        ),
    ),
    doc="ALDS-style truncated-SVD channel decomposition (structured)",
)
class LowRankDecomposition(PruneMethod):
    """Structured low-rank decomposition via truncated SVD of conv weights."""

    structured = True
    data_informed = False

    def __init__(self, rank_frac: float = 0.5, project: bool = True, steps: int = 1):
        super().__init__(steps=steps)
        if not 0.0 < rank_frac <= 1.0:
            raise ValueError(f"rank_frac must be in (0, 1], got {rank_frac}")
        self.rank_frac = float(rank_frac)
        self.project = bool(project)

    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        layers = dict(structured_prunable_layers(model))
        if not layers:
            raise ValueError("model has no structured-prunable conv layers")
        sensitivities = {
            name: lowrank_channel_energy(layer.weight.data, self.rank_frac)
            for name, layer in layers.items()
        }
        already = {
            name: int(pruned_channels(layer).sum()) for name, layer in layers.items()
        }

        def counts_at(q: float) -> dict[str, int]:
            counts = {}
            for name, layer in layers.items():
                c = layer.in_channels
                want = int(round(q * c))
                counts[name] = int(np.clip(want, already[name], c - 1))
            return counts

        counts = solve_counts_for_target(model, target_ratio, counts_at)
        achieved = apply_channel_counts(model, sensitivities, counts)
        if self.project:
            for layer in layers.values():
                recon = project_to_rank(layer.weight.data, self.rank_frac)
                # Re-masking keeps pruned entries exactly zero, so the
                # mask/weight consistency invariant survives the projection.
                layer.weight.data[...] = recon * layer.weight_mask
        return achieved
