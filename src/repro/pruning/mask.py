"""Enumeration of prunable layers and mask bookkeeping.

Prune ratios throughout the library are *weight* ratios — the fraction of
prunable weights that are masked — for unstructured and structured methods
alike, matching the PR columns of the paper's tables.
"""

from __future__ import annotations

from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.prunable import PrunableWeightMixin


def prunable_layers(model: Module) -> list[tuple[str, PrunableWeightMixin]]:
    """All weight-bearing layers (Conv2d + Linear), in forward order."""
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, (Conv2d, Linear))
    ]


def structured_prunable_layers(
    model: Module, min_in_channels: int = 4
) -> list[tuple[str, Conv2d]]:
    """Conv layers eligible for channel pruning.

    Structured methods prune *input channels* (the ``W_:j`` columns of
    Table 1), which is equivalent to pruning the producing layer's filters.
    Layers fed directly by the image (few input channels) are skipped, as is
    every Linear layer — the classifier head's outputs are classes.
    """
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, Conv2d) and module.in_channels >= min_in_channels
    ]


def total_prunable_weights(model: Module) -> int:
    """Number of weights eligible for pruning (excludes biases and BN)."""
    return sum(module.weight.size for _, module in prunable_layers(model))


def pruned_weights(model: Module) -> int:
    """Number of currently masked weights."""
    return sum(module.num_pruned for _, module in prunable_layers(model))


def model_prune_ratio(model: Module) -> float:
    """Fraction of prunable weights that are masked, in [0, 1]."""
    total = total_prunable_weights(model)
    if total == 0:
        raise ValueError("model has no prunable layers")
    return pruned_weights(model) / total


def reset_masks(model: Module) -> None:
    """Remove all pruning from the model."""
    for _, module in prunable_layers(model):
        module.reset_weight_mask()
