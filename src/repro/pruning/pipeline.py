"""PRUNERETRAIN (Algorithm 1): iterative prune–retrain with snapshots.

The pipeline owns a trained parent model and walks an ascending list of
target prune ratios; at each step it prunes to the cumulative target and
retrains with the *original* hyperparameters, snapshotting the resulting
network.  The snapshots are the raw material of every analysis in the
paper: prune-accuracy curves, prune potential, excess error, and
functional-distance studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import observe
from repro.nn.module import Module
from repro.pruning.base import PruneMethod
from repro.pruning.mask import model_prune_ratio
from repro.training.trainer import Trainer
from repro.utils.serialization import load_state, save_state

DEFAULT_TARGET_RATIOS: tuple[float, ...] = (0.3, 0.5, 0.7, 0.85, 0.92, 0.96, 0.98)


def sample_indices(labels: np.ndarray, size: int, seed: int) -> np.ndarray:
    """A seeded shuffled sample of ``size`` indices, stratified by class.

    With 1-D integer class labels the sample interleaves the classes
    round-robin (each class's pool independently shuffled), so even
    ``size < n_classes`` samples span as many classes as possible.  Dense
    label maps (segmentation) fall back to a plain seeded shuffle.  The
    result is a pure function of ``(labels, size, seed)`` — the property
    artifact caches rely on.
    """
    labels = np.asarray(labels)
    n = len(labels)
    size = min(size, n)
    rng = np.random.default_rng(seed)
    if labels.ndim != 1 or not np.issubdtype(labels.dtype, np.integer):
        return rng.permutation(n)[:size]
    pools = []
    for cls in np.unique(labels):
        pool = np.flatnonzero(labels == cls)
        pools.append(rng.permutation(pool))
    order = rng.permutation(len(pools))
    out: list[int] = []
    depth = 0
    while len(out) < size:
        added = False
        for p in order:
            pool = pools[p]
            if depth < len(pool):
                out.append(int(pool[depth]))
                added = True
                if len(out) == size:
                    break
        if not added:  # pragma: no cover - size <= n guarantees progress
            break
        depth += 1
    return np.array(out[:size], dtype=np.intp)


@dataclass
class PruneCheckpoint:
    """One point on the prune-accuracy curve."""

    target_ratio: float
    achieved_ratio: float
    test_error: float
    state: dict[str, np.ndarray] = field(repr=False)


@dataclass
class PruneRun:
    """The artifact of one PRUNERETRAIN execution."""

    method_name: str
    parent_state: dict[str, np.ndarray] = field(repr=False)
    parent_test_error: float = float("nan")
    checkpoints: list[PruneCheckpoint] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def ratios(self) -> np.ndarray:
        return np.array([c.achieved_ratio for c in self.checkpoints])

    @property
    def test_errors(self) -> np.ndarray:
        return np.array([c.test_error for c in self.checkpoints])

    def restore_parent(self, model: Module) -> Module:
        model.load_state_dict(self.parent_state)
        return model

    def restore(self, model: Module, index: int) -> Module:
        """Load checkpoint ``index`` into ``model`` (shares architecture)."""
        model.load_state_dict(self.checkpoints[index].state)
        return model

    # ------------------------------------------------------------ disk I/O
    def save(self, path: str | Path) -> Path:
        arrays: dict[str, np.ndarray] = {}
        for key, value in self.parent_state.items():
            arrays[f"parent/{key}"] = value
        for i, ckpt in enumerate(self.checkpoints):
            for key, value in ckpt.state.items():
                arrays[f"ckpt{i}/{key}"] = value
        meta = {
            "method_name": self.method_name,
            "parent_test_error": self.parent_test_error,
            "checkpoints": [
                {
                    "target_ratio": c.target_ratio,
                    "achieved_ratio": c.achieved_ratio,
                    "test_error": c.test_error,
                }
                for c in self.checkpoints
            ],
            "meta": self.meta,
        }
        return save_state(path, arrays, meta)

    @classmethod
    def load(cls, path: str | Path) -> "PruneRun":
        arrays, meta = load_state(path)
        parent_state = {
            key.split("/", 1)[1]: value
            for key, value in arrays.items()
            if key.startswith("parent/")
        }
        checkpoints = []
        for i, info in enumerate(meta["checkpoints"]):
            prefix = f"ckpt{i}/"
            state = {
                key[len(prefix) :]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            checkpoints.append(
                PruneCheckpoint(
                    target_ratio=info["target_ratio"],
                    achieved_ratio=info["achieved_ratio"],
                    test_error=info["test_error"],
                    state=state,
                )
            )
        return cls(
            method_name=meta["method_name"],
            parent_state=parent_state,
            parent_test_error=meta["parent_test_error"],
            checkpoints=checkpoints,
            meta=meta.get("meta", {}),
        )


class PruneRetrain:
    """Algorithm 1 driver.

    Parameters
    ----------
    trainer:
        A :class:`~repro.training.trainer.Trainer` wrapping the model and
        task.  The model is assumed *already trained* (line 2 of the
        algorithm) unless ``run(train_parent=True)``.
    method:
        The pruning method to apply at each cycle.
    retrain_epochs:
        Epochs per retrain cycle; ``None`` re-uses the full training budget,
        as the paper's protocol prescribes (scaled presets shorten this).
    sample_size:
        Size of the sample batch S for data-informed methods, drawn from
        the train split and normalized.
    retrain_mode:
        How to retrain after each prune step (Renda et al., 2020):

        - ``"lr_rewind"`` (paper default): keep the pruned weights and
          re-run the training recipe, rewinding the learning-rate schedule;
        - ``"finetune"``: keep the pruned weights and train at the final
          (fully decayed) learning rate;
        - ``"weight_rewind"``: rewind the surviving weights to the parent's
          values (lottery-ticket style) before re-running the recipe.
    """

    RETRAIN_MODES = ("lr_rewind", "finetune", "weight_rewind")

    def __init__(
        self,
        trainer: Trainer,
        method: PruneMethod,
        retrain_epochs: int | None = None,
        sample_size: int = 128,
        retrain_mode: str = "lr_rewind",
    ):
        if retrain_mode not in self.RETRAIN_MODES:
            raise ValueError(
                f"retrain_mode must be one of {self.RETRAIN_MODES}, got {retrain_mode!r}"
            )
        self.trainer = trainer
        self.method = method
        self.retrain_epochs = retrain_epochs
        self.sample_size = sample_size
        self.retrain_mode = retrain_mode

    @property
    def sample_seed(self) -> int:
        """Seed of the sensitivity-sample draw (derived from the trainer's
        config seed, so it is part of the run's deterministic identity)."""
        return int(self.trainer.config.seed) + 0x5A11

    def _sample_inputs(self) -> np.ndarray:
        """The sample batch S for data-informed methods.

        A verbatim ``images[:sample_size]`` slice is biased on class-ordered
        datasets — SiPP/FT/PFP would compute sensitivities from a
        single-class sample — so the draw is a seeded shuffle, stratified
        across classes where the labels allow it.  The seed derives from
        the trainer config, keeping cached runs bit-reproducible.
        """
        train = self.trainer.task.train_set()
        idx = sample_indices(
            train.labels, min(self.sample_size, len(train)), self.sample_seed
        )
        return self.trainer.normalizer(train.images[idx])

    def _rewind_weights(self, model: Module, parent_state: dict) -> None:
        """Reset surviving weights (and all other state) to parent values,
        then re-apply the current masks."""
        from repro.pruning.mask import prunable_layers

        masks = {name: layer.weight_mask.copy() for name, layer in prunable_layers(model)}
        model.load_state_dict(parent_state)
        for name, layer in prunable_layers(model):
            layer.set_weight_mask(masks[name])

    def _finetune_lr_factor(self) -> float:
        """The schedule factor of the *last step the trainer ever took*.

        The trainer evaluates the schedule at fractional positions strictly
        below ``epochs`` (the final step sits at ``epochs - 1/n_batches``);
        evaluating at ``epochs`` itself is one step past that and, for a
        piecewise schedule with a boundary exactly at ``epochs``, lands in
        a decay region the original training never reached.
        """
        cfg = self.trainer.config
        train = self.trainer.task.train_set()
        n_batches = max(int(np.ceil(len(train) / cfg.batch_size)), 1)
        last_position = max(cfg.epochs - 1.0 / n_batches, 1.0 / n_batches)
        return cfg.schedule(last_position)

    def _retrain(self) -> None:
        if self.retrain_mode == "finetune":
            final_factor = self._finetune_lr_factor()
            self.trainer.train(
                self.retrain_epochs, schedule=lambda epoch: final_factor
            )
        else:
            self.trainer.retrain(self.retrain_epochs)

    def run(
        self,
        target_ratios: Sequence[float] = DEFAULT_TARGET_RATIOS,
        train_parent: bool = False,
    ) -> PruneRun:
        """Execute the full iterative prune–retrain schedule."""
        # Lazy: verify.invariants walks pruning.mask, so a module-level
        # import here would be circular.
        from repro.verify import runtime as verify_runtime

        ratios = sorted(target_ratios)
        if ratios and (ratios[0] <= 0 or ratios[-1] >= 1):
            raise ValueError(f"target ratios must lie in (0, 1), got {target_ratios}")
        duplicates = sorted({r for i, r in enumerate(ratios[1:]) if r == ratios[i]})
        if duplicates:
            # A repeated target silently doubles the prune-retrain work and
            # records duplicate checkpoints that skew downstream curves.
            raise ValueError(
                f"duplicate target ratios {duplicates} in {list(target_ratios)}; "
                "each prune-retrain cycle must have a distinct target"
            )
        model = self.trainer.model
        if train_parent:
            self.trainer.train()
        if model_prune_ratio(model) > 0:
            raise ValueError("model is already pruned; start from a dense parent")

        parent_error = self.trainer.evaluate()["error"]
        run = PruneRun(
            method_name=self.method.name,
            parent_state=model.state_dict(),
            parent_test_error=parent_error,
            meta={
                "target_ratios": list(ratios),
                # The full method identity: canonical spec string plus the
                # resolved hyperparameter bindings.  Saved runs are thereby
                # reproducible from their metadata alone, and two
                # hyperparameter settings can never share one artifact.
                "method_spec": self.method.spec_string(),
                "method_hyperparams": self.method.hyperparameters(),
                "retrain_mode": self.retrain_mode,
                "sample_size": self.sample_size,
                "sample_seed": self.sample_seed,
            },
        )
        observing = observe.enabled()
        base_flops = self._count_flops(model) if observing else 0
        with observe.span(
            "prune_retrain",
            method=self.method.name,
            mode=self.retrain_mode,
            targets=list(ratios),
        ):
            for step, target in enumerate(ratios):
                with observe.span(
                    "prune_step", method=self.method.name, step=step, target=target
                ) as sp:
                    sample = (
                        self._sample_inputs() if self.method.data_informed else None
                    )
                    achieved = self.method.prune(model, target, sample)
                    if observing:
                        self._observe_step(sp, model, achieved, base_flops)
                    verify_runtime.verify_prune_step(
                        model,
                        achieved,
                        target,
                        self.method.name,
                        self.method.structured,
                        step,
                    )
                    if self.retrain_mode == "weight_rewind":
                        self._rewind_weights(model, run.parent_state)
                    self._retrain()
                    verify_runtime.verify_retrained(model, self.method.name, step)
                    error = self.trainer.evaluate()["error"]
                    sp.set(test_error=error)
                    run.checkpoints.append(
                        PruneCheckpoint(
                            target_ratio=target,
                            achieved_ratio=achieved,
                            test_error=error,
                            state=model.state_dict(),
                        )
                    )
        verify_runtime.verify_run_curve(run)
        return run

    # ------------------------------------------------------- observability
    def _count_flops(self, model: Module) -> int:
        from repro.nn.flops import count_flops

        return count_flops(model, self.trainer.task.input_shape)

    def _observe_step(self, sp, model: Module, achieved: float, base_flops: int) -> None:
        """Attach the sparsity/FLOP accounting of one prune step to its span."""
        from repro.pruning.mask import prunable_layers

        flops = self._count_flops(model)
        sparsity = model_prune_ratio(model)
        sp.set(
            achieved=achieved,
            sparsity=sparsity,
            flop_reduction=1.0 - flops / base_flops if base_flops else 0.0,
        )
        for name, layer in prunable_layers(model):
            observe.hist(
                "prune.layer_ratio",
                float(1.0 - layer.weight_mask.mean()),
                layer=name,
            )
