"""The declarative pruning-method registry.

Methods register themselves with the :func:`register_method` decorator,
declaring the axes of their spec — scoring family x allocation policy x
schedule — plus typed hyperparameters (see :mod:`repro.pruning.spec`).
Everything downstream enumerates *this* registry instead of hard-coding
method lists: the experiment grids, the CLI, the benchmark zoo manifest,
and the serve registry all pick up a newly registered method with zero
per-method special-casing.

Methods are addressable as spec strings::

    build_method("wt")                       # registered defaults
    build_method("pfp(gamma=1e-12)")         # hyperparameter override
    build_method("lowrank", rank_frac=0.25)  # kwargs merge into the spec

``canonical_spec`` maps any accepted spelling onto the unique canonical
string (lower-case, sorted kwargs, defaults omitted) used for artifact
cache keys and ``PruneRun`` metadata.
"""

from __future__ import annotations

from typing import Any

from repro.pruning.spec import HyperParam, MethodSpec, SpecError, parse_spec

_REGISTRY: dict[str, MethodSpec] = {}

#: Every method shares the schedule knob: ``steps=1`` is one-shot within a
#: single prune call; ``steps=N`` walks to the target in N equal fractions,
#: re-scoring between sub-steps (the outer PRUNERETRAIN ladder remains the
#: paper's iterative prune–retrain schedule).
STEPS_PARAM = HyperParam(
    "steps", int, 1, low=1, doc="sub-steps per prune call (re-scored)"
)


def register_method(
    name: str,
    *,
    scoring: str,
    allocation: str,
    schedule: str = "oneshot",
    hyperparams: tuple[HyperParam, ...] = (),
    doc: str = "",
):
    """Class decorator registering a :class:`PruneMethod` under ``name``.

    ``structured`` / ``data_informed`` are read off the class; the shared
    ``steps`` schedule knob is appended to every spec automatically.
    Each hyperparameter must be stored by ``__init__`` as an instance
    attribute of the same name — that is how a live method instance is
    serialized back into its spec string.
    """

    def deco(cls):
        if name in _REGISTRY:
            raise SpecError(f"method {name!r} is already registered")
        params = tuple(hyperparams)
        if all(hp.name != STEPS_PARAM.name for hp in params):
            params += (STEPS_PARAM,)
        spec = MethodSpec(
            name=name,
            scoring=scoring,
            allocation=allocation,
            schedule=schedule,
            structured=bool(getattr(cls, "structured", False)),
            data_informed=bool(getattr(cls, "data_informed", False)),
            hyperparams=params,
            factory=cls,
            doc=doc or (cls.__doc__ or "").strip().split("\n", 1)[0],
        )
        cls.name = name
        cls.spec = spec
        _REGISTRY[name] = spec
        return cls

    return deco


def unregister_method(name: str) -> None:
    """Remove a registration (test hygiene for ad-hoc registrations)."""
    _REGISTRY.pop(name, None)


def available_methods() -> list[str]:
    """Canonical names of all registered pruning methods, sorted."""
    return sorted(_REGISTRY)


def available_specs() -> list[MethodSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in available_methods()]


def method_spec(name_or_spec: str) -> MethodSpec:
    """The :class:`MethodSpec` behind a name or spec string."""
    name, _ = parse_spec(name_or_spec)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pruning method {name!r}; available: {available_methods()}"
        ) from None


def build_method(name_or_spec: str, **kwargs):
    """Instantiate a pruning method from a name or spec string.

    Spec-string kwargs and explicit ``**kwargs`` are merged (explicit
    kwargs win); every binding is validated against the spec's typed
    hyperparameters.
    """
    name, spec_kwargs = parse_spec(name_or_spec)
    spec = method_spec(name)
    spec_kwargs.update(kwargs)
    return spec.build(**spec_kwargs)


def canonical_spec(name_or_spec: str, **kwargs) -> str:
    """The unique canonical string for any accepted spec spelling.

    ``canonical_spec("PFP(gamma=1e-16)")`` → ``"pfp"`` (the default is
    elided); ``canonical_spec("lowrank", rank_frac=0.25)`` →
    ``"lowrank(rank_frac=0.25)"``.  This is the form used in artifact
    cache keys, ``PruneRun.meta``, and the serve registry.
    """
    name, spec_kwargs = parse_spec(name_or_spec)
    spec = method_spec(name)
    spec_kwargs.update(kwargs)
    return spec.canonical(spec_kwargs)


def spec_of(method) -> str:
    """Canonical spec string of a *live* method instance.

    Reads each declared hyperparameter back from the instance attribute
    of the same name, so a directly constructed method (no registry
    involved) still serializes to its exact spec.
    """
    spec: MethodSpec | None = getattr(type(method), "spec", None)
    if spec is None:
        return method.name
    bound: dict[str, Any] = {}
    for hp in spec.hyperparams:
        if hasattr(method, hp.name):
            bound[hp.name] = getattr(method, hp.name)
    return spec.canonical(bound)


def describe_methods() -> str:
    """A rendered table of every registered spec (the ``methods`` CLI)."""
    from repro.utils.tables import format_table

    rows = []
    for spec in available_specs():
        params = ", ".join(
            f"{hp.name}:{hp.kind.__name__}={hp.default!r}" for hp in spec.hyperparams
        )
        rows.append(
            [
                spec.name,
                spec.scoring,
                spec.allocation,
                spec.schedule,
                "structured" if spec.structured else "unstructured",
                "yes" if spec.data_informed else "no",
                params,
            ]
        )
    return format_table(
        ["Method", "Scoring", "Allocation", "Schedule", "Type", "Data", "Hyperparameters"],
        rows,
        title="Registered pruning methods (spec grammar: name(key=value, ...))",
    )


# The built-in registrations are side effects of importing the method
# modules, which ``repro.pruning.__init__`` performs; importing this module
# directly triggers the package __init__ first, so the registry is always
# fully populated by the time any of the functions above run.
