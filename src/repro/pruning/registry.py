"""Name-based construction of pruning methods."""

from __future__ import annotations

from repro.pruning.base import PruneMethod
from repro.pruning.ft import FilterThresholding
from repro.pruning.pfp import ProvableFilterPruning
from repro.pruning.sipp import SiPP
from repro.pruning.wt import WeightThresholding

_METHODS = {
    "wt": WeightThresholding,
    "sipp": SiPP,
    "ft": FilterThresholding,
    "pfp": ProvableFilterPruning,
}


def available_methods() -> list[str]:
    """Paper abbreviations of all registered pruning methods."""
    return sorted(_METHODS)


def build_method(name: str, **kwargs) -> PruneMethod:
    """Instantiate a pruning method by its paper abbreviation."""
    try:
        cls = _METHODS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown pruning method {name!r}; available: {available_methods()}"
        ) from None
    return cls(**kwargs)
