"""Weight Thresholding (WT): global magnitude pruning.

Han et al. (2015) as re-purposed by Renda et al. (2020): the sensitivity of
a weight is its magnitude, sorted globally across all prunable layers.  In
registry terms WT *is* the global-magnitude spec — scoring ``magnitude`` x
allocation ``global``; its per-layer-uniform sibling is the ``uniform``
baseline (:mod:`repro.pruning.baselines`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.pruning.base import PruneMethod, global_threshold_prune
from repro.pruning.mask import prunable_layers
from repro.pruning.registry import register_method


@register_method(
    "wt",
    scoring="magnitude",
    allocation="global",
    doc="global |W_ij| magnitude pruning (unstructured, data-free)",
)
class WeightThresholding(PruneMethod):
    """Global ``|W_ij|`` pruning (unstructured, data-free)."""

    structured = False
    data_informed = False

    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        sensitivities = {
            name: np.abs(layer.weight.data) for name, layer in prunable_layers(model)
        }
        return global_threshold_prune(model, sensitivities, target_ratio)
