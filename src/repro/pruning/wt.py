"""Weight Thresholding (WT): global magnitude pruning.

Han et al. (2015) as re-purposed by Renda et al. (2020): the sensitivity of
a weight is its magnitude, sorted globally across all prunable layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.pruning.base import PruneMethod, global_threshold_prune
from repro.pruning.mask import prunable_layers


class WeightThresholding(PruneMethod):
    """Global ``|W_ij|`` pruning (unstructured, data-free)."""

    name = "wt"
    structured = False
    data_informed = False

    def prune(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None = None,
    ) -> float:
        self._validate(model, target_ratio)
        sensitivities = {
            name: np.abs(layer.weight.data) for name, layer in prunable_layers(model)
        }
        return global_threshold_prune(model, sensitivities, target_ratio)
