"""Pruning method interface and activation capture for data-informed methods.

A :class:`PruneMethod` installs masks so the model's *cumulative* weight
prune ratio reaches a target.  Methods are monotone by construction: already
masked weights are never revived, so iterative pruning (Algorithm 1) only
ever removes more.

:meth:`PruneMethod.prune` is a template method: it validates the target,
expands the method's schedule (``steps=1`` is one-shot; ``steps=N`` walks
to the target in N equal sub-steps, re-scoring between them) and calls the
family-specific :meth:`PruneMethod._prune_step` per sub-target.  The
allocation helpers shared by the unstructured families live here too:
:func:`global_threshold_prune` (one threshold across all layers) and
:func:`uniform_threshold_prune` (the same fraction in every layer).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.nn.module import Module
from repro.pruning.mask import model_prune_ratio, prunable_layers, total_prunable_weights


@dataclass
class ActivationStats:
    """Per-layer mean absolute input activation per input feature/channel.

    For a conv layer the vector has one entry per input channel; for a
    linear layer one per input feature.  Computed from a small sample batch
    S ⊆ validation set, as SiPP/PFP prescribe.
    """

    per_layer: dict[str, np.ndarray]

    def __getitem__(self, layer_name: str) -> np.ndarray:
        return self.per_layer[layer_name]

    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self.per_layer


def collect_activation_stats(model: Module, sample_inputs: np.ndarray) -> ActivationStats:
    """Run ``sample_inputs`` through the model, capturing layer inputs.

    ``sample_inputs`` must already be normalized the way the model is
    trained.  Returns mean |activation| per input channel for every
    prunable layer.
    """
    stats: dict[str, np.ndarray] = {}
    removers = []
    for name, layer in prunable_layers(model):

        def hook(module, args, out, _name=name):
            x = args[0]
            data = x.data if isinstance(x, Tensor) else np.asarray(x)
            if data.ndim == 4:  # (N, C, H, W) -> per channel
                stats[_name] = np.abs(data).mean(axis=(0, 2, 3))
            else:  # (N, F) -> per feature
                stats[_name] = np.abs(data).mean(axis=0)

        removers.append(layer.register_forward_hook(hook))

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(sample_inputs))
    finally:
        model.train(was_training)
        for remove in removers:
            remove()
    return ActivationStats(stats)


class PruneMethod(abc.ABC):
    """Interface shared by all pruning methods.

    Subclasses implement :meth:`_prune_step`; the public :meth:`prune`
    handles validation and the schedule.  Registered methods (see
    :mod:`repro.pruning.registry`) must store each declared hyperparameter
    as an instance attribute of the same name so live instances serialize
    back to their exact spec string.
    """

    name: str = "base"
    structured: bool = False
    data_informed: bool = False

    def __init__(self, steps: int = 1):
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.steps = int(steps)

    def prune(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None = None,
    ) -> float:
        """Prune ``model`` to a cumulative weight ratio of ``target_ratio``.

        ``sample_inputs`` (normalized) is required by data-informed methods.
        Returns the achieved ratio.
        """
        self._validate(model, target_ratio)
        sample = self._require_sample(sample_inputs)
        achieved = current = model_prune_ratio(model)
        for sub_target in self._schedule(current, target_ratio):
            achieved = self._prune_step(model, sub_target, sample)
        return achieved

    @abc.abstractmethod
    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        """One scored prune step to cumulative ``target_ratio``."""

    def _schedule(self, current: float, target: float) -> list[float]:
        """The sub-targets of one prune call (linear in the weight ratio)."""
        if self.steps == 1 or target <= current:
            return [target]
        return [
            current + (target - current) * (k / self.steps)
            for k in range(1, self.steps + 1)
        ]

    def spec_string(self) -> str:
        """Canonical spec string of this instance (see the registry)."""
        from repro.pruning.registry import spec_of

        return spec_of(self)

    def hyperparameters(self) -> dict:
        """The instance's resolved hyperparameter bindings (incl. defaults)."""
        spec = getattr(type(self), "spec", None)
        if spec is None:
            return {}
        return {
            hp.name: getattr(self, hp.name)
            for hp in spec.hyperparams
            if hasattr(self, hp.name)
        }

    def _validate(self, model: Module, target_ratio: float) -> None:
        if not 0.0 <= target_ratio < 1.0:
            raise ValueError(f"target_ratio must be in [0, 1), got {target_ratio}")
        current = model_prune_ratio(model)
        if target_ratio < current - 1e-9:
            raise ValueError(
                f"target ratio {target_ratio:.3f} below current ratio "
                f"{current:.3f}; pruning is monotone"
            )

    def _require_sample(self, sample_inputs: np.ndarray | None) -> np.ndarray:
        if self.data_informed and sample_inputs is None:
            raise ValueError(f"{self.name} is data-informed and needs sample_inputs")
        return sample_inputs

    def __repr__(self) -> str:
        kind = "structured" if self.structured else "unstructured"
        return f"{type(self).__name__}(name={self.name!r}, {kind})"


def global_threshold_prune(
    model: Module, sensitivities: dict[str, np.ndarray], target_ratio: float
) -> float:
    """Shared global unstructured step: mask lowest-sensitivity weights.

    ``sensitivities`` maps layer name -> array shaped like the layer weight.
    Already-masked weights are forced to the bottom of the ordering so the
    step is monotone.  Returns the achieved ratio.
    """
    layers = dict(prunable_layers(model))
    total = total_prunable_weights(model)
    n_prune = int(round(target_ratio * total))

    scores = []
    for name, layer in layers.items():
        s = sensitivities[name].reshape(-1).astype(np.float64).copy()
        s[layer.weight_mask.reshape(-1) == 0] = -np.inf  # keep pruned pruned
        scores.append(s)
    flat = np.concatenate(scores)
    if n_prune > 0:
        threshold_idx = np.argpartition(flat, n_prune - 1)[:n_prune]
        to_prune = np.zeros(total, dtype=bool)
        to_prune[threshold_idx] = True
    else:
        to_prune = np.zeros(total, dtype=bool)

    offset = 0
    for name, layer in layers.items():
        size = layer.weight.size
        mask = (~to_prune[offset : offset + size]).astype(np.float32)
        mask = mask.reshape(layer.weight.shape)
        layer.set_weight_mask(mask * layer.weight_mask)
        offset += size
    return model_prune_ratio(model)


def uniform_threshold_prune(
    model: Module, sensitivities: dict[str, np.ndarray], target_ratio: float
) -> float:
    """Shared per-layer unstructured step: the same fraction in every layer.

    Each layer independently masks its ``round(target * size)``
    lowest-sensitivity weights (already-masked weights sort to the bottom,
    keeping the step monotone), so layerwise sparsity is uniform — the
    "uniform" allocation policy of the registry.  Returns the achieved
    model ratio, which can differ from the target only by per-layer
    rounding.
    """
    for name, layer in prunable_layers(model):
        size = layer.weight.size
        n_prune = int(round(target_ratio * size))
        if n_prune <= 0:
            continue
        s = sensitivities[name].reshape(-1).astype(np.float64).copy()
        s[layer.weight_mask.reshape(-1) == 0] = -np.inf
        drop = np.argpartition(s, n_prune - 1)[:n_prune]
        mask = np.ones(size, dtype=np.float32)
        mask[drop] = 0.0
        layer.set_weight_mask(mask.reshape(layer.weight.shape) * layer.weight_mask)
    return model_prune_ratio(model)
