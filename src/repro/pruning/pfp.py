"""Provable Filter Pruning (PFP) (Liebenwein et al., 2020).

Channel sensitivity is data-informed: the ℓ∞ norm over the consuming
weights of the SiPP-style relative sensitivities ``ŝ_ij ∝ |W_ij| a_j(x)``
(Table 1).  Layer allocation follows PFP's error-budget scheme: given a
budget ``ε``, each layer keeps the smallest top set of channels whose
relative sensitivity mass is at least ``1 - ε``; the budget is bisected to
meet the global prune target.  The failure probability ``γ`` of the
original randomized construction enters as a smoothing term on the kept
mass, mirroring the sample-complexity factor ``log(1/γ)`` — with the
deterministic top-set rule used here it only perturbs tiny sensitivities,
so we keep the paper's default ``γ = 1e-16``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.pruning.base import PruneMethod, collect_activation_stats
from repro.pruning.mask import structured_prunable_layers
from repro.pruning.registry import register_method
from repro.pruning.sipp import relative_weight_sensitivity
from repro.pruning.spec import HyperParam
from repro.pruning.structured import (
    apply_channel_counts,
    pruned_channels,
    solve_counts_for_target,
)


def channel_linf_sensitivity(weight: np.ndarray, activation: np.ndarray) -> np.ndarray:
    """``max_i ŝ_ij`` per input channel: the ℓ∞ of relative sensitivities."""
    rel = relative_weight_sensitivity(weight, activation)
    return rel.max(axis=(0, 2, 3))


@register_method(
    "pfp",
    scoring="channel_linf",
    allocation="solver",
    hyperparams=(
        HyperParam(
            "gamma", float, 1e-16, low=0.0, high=1.0, low_open=True, high_open=True,
            doc="failure probability of the randomized construction",
        ),
    ),
    doc="structured data-informed channel pruning, ε-budget allocation",
)
class ProvableFilterPruning(PruneMethod):
    """Structured, data-informed channel pruning with ε-budget allocation."""

    structured = True
    data_informed = True

    def __init__(self, gamma: float = 1e-16, steps: int = 1):
        super().__init__(steps=steps)
        if not 0 < gamma < 1:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        self.gamma = gamma

    def _prune_step(
        self,
        model: Module,
        target_ratio: float,
        sample_inputs: np.ndarray | None,
    ) -> float:
        layers = dict(structured_prunable_layers(model))
        if not layers:
            raise ValueError("model has no structured-prunable conv layers")
        stats = collect_activation_stats(model, sample_inputs)
        smoothing = 1.0 / np.log(1.0 / self.gamma)
        sensitivities = {}
        for name, layer in layers.items():
            s = channel_linf_sensitivity(layer.weight.data, stats[name])
            sensitivities[name] = s + smoothing * s.mean() * 1e-6

        already = {
            name: int(pruned_channels(layer).sum()) for name, layer in layers.items()
        }

        def counts_at(eps: float) -> dict[str, int]:
            counts = {}
            for name, layer in layers.items():
                s = sensitivities[name].astype(np.float64).copy()
                s[pruned_channels(layer)] = 0.0
                order = np.argsort(s)[::-1]  # descending sensitivity
                mass = np.cumsum(s[order])
                total = mass[-1]
                if total <= 0:
                    counts[name] = already[name]
                    continue
                # Keep the smallest prefix with mass >= (1 - eps) * total.
                keep = int(np.searchsorted(mass, (1.0 - eps) * total) + 1)
                keep = int(np.clip(keep, 1, layer.in_channels - already[name]))
                counts[name] = max(layer.in_channels - keep, already[name])
            return counts

        counts = solve_counts_for_target(model, target_ratio, counts_at)
        return apply_channel_counts(model, sensitivities, counts)
