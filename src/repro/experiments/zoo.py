"""Disk-cached model zoo: trained parents and prune runs.

Every experiment needs (model, method, repetition) triples produced by
PRUNERETRAIN.  Training them is the dominant cost, so the zoo caches two
artifact kinds under ``REPRO_CACHE_DIR`` (default ``./.cache/repro``):

- parent states, keyed by (task, model, repetition, robust, scale digest) —
  shared across all pruning methods, as in the paper where each network is
  trained once before pruning;
- prune runs, additionally keyed by method.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.datasets import TaskSuite, cifar_like, imagenet_like, voc_like
from repro.experiments.config import ExperimentScale
from repro.models import build_model
from repro.nn.module import Module
from repro.optim import MultiStepLR
from repro.pruning import PruneRetrain, PruneRun, build_method
from repro.training import TrainConfig, Trainer, default_robust_protocol
from repro.utils.rng import as_rng
from repro.utils.serialization import load_state, save_state


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".cache/repro"))


def clear_cache() -> None:
    """Delete all cached zoo artifacts."""
    root = cache_dir()
    if root.exists():
        for path in root.glob("*.npz"):
            path.unlink()


@dataclass(frozen=True)
class ZooSpec:
    """Identity of one zoo artifact."""

    task_name: str = "cifar"  # cifar | imagenet | voc
    model_name: str = "resnet20"
    method_name: str | None = None
    repetition: int = 0
    robust: bool = False

    def key(self, scale: ExperimentScale) -> str:
        method = self.method_name or "parent"
        robust = "robust" if self.robust else "nominal"
        return (
            f"{self.task_name}-{self.model_name}-{method}-rep{self.repetition}"
            f"-{robust}-{scale.digest()}"
        )


def make_suite(task_name: str, scale: ExperimentScale) -> TaskSuite:
    """The task suite for one of the paper's three data-set roles."""
    if task_name == "cifar":
        return cifar_like(
            seed=scale.base_seed,
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size,
            num_classes=scale.num_classes,
        )
    if task_name == "imagenet":
        return imagenet_like(
            seed=scale.base_seed,
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size + 8,
            num_classes=2 * scale.num_classes,
        )
    if task_name == "voc":
        return voc_like(
            seed=scale.base_seed,
            n_train=max(scale.n_train // 2, 100),
            n_test=max(scale.n_test // 2, 50),
            image_size=scale.image_size + 8,
        )
    raise ValueError(f"unknown task {task_name!r}; choose cifar, imagenet, or voc")


def make_model(spec: ZooSpec, suite: TaskSuite, scale: ExperimentScale) -> Module:
    """Freshly initialized model for ``spec`` (deterministic per repetition)."""
    seed = scale.seed_for(spec.repetition)
    return build_model(
        spec.model_name,
        num_classes=suite.num_classes,
        base_width=scale.base_width,
        rng=as_rng(seed),
    )


def make_trainer(
    model: Module, suite: TaskSuite, scale: ExperimentScale, spec: ZooSpec
) -> Trainer:
    """Trainer with the scale's recipe; robust specs get corruption augmentation."""
    parent_epochs = scale.parent_epochs
    if spec.robust:
        parent_epochs = int(round(parent_epochs * scale.robust_epochs_factor))
    config = TrainConfig(
        epochs=parent_epochs,
        batch_size=scale.batch_size,
        lr=scale.lr,
        momentum=scale.momentum,
        weight_decay=scale.weight_decay,
        warmup_epochs=scale.warmup_epochs,
        schedule=MultiStepLR(
            [m * parent_epochs for m in scale.lr_decay_milestones],
            scale.lr_decay_gamma,
        ),
        retrain_schedule=MultiStepLR(
            [m * scale.retrain_epochs for m in scale.lr_decay_milestones],
            scale.lr_decay_gamma,
        ),
        seed=scale.seed_for(spec.repetition) + 17,
    )
    augment_fn = None
    if spec.robust:
        protocol = default_robust_protocol(scale.severity)
        augment_fn = protocol.augmenter(rng=scale.seed_for(spec.repetition) + 29)
    return Trainer(model, suite, config, augment_fn=augment_fn)


def get_parent_state(spec: ZooSpec, scale: ExperimentScale) -> dict[str, np.ndarray]:
    """Trained parent weights (cached)."""
    parent_spec = ZooSpec(
        spec.task_name, spec.model_name, None, spec.repetition, spec.robust
    )
    path = cache_dir() / f"{parent_spec.key(scale)}.npz"
    if path.exists():
        arrays, _ = load_state(path)
        return arrays
    suite = make_suite(spec.task_name, scale)
    model = make_model(parent_spec, suite, scale)
    trainer = make_trainer(model, suite, scale, parent_spec)
    trainer.train()
    state = model.state_dict()
    save_state(path, state, {"spec": parent_spec.key(scale)})
    return state


def get_prune_run(spec: ZooSpec, scale: ExperimentScale) -> PruneRun:
    """A complete PRUNERETRAIN run (cached); requires ``method_name``."""
    if spec.method_name is None:
        raise ValueError("get_prune_run needs a method_name")
    path = cache_dir() / f"{spec.key(scale)}.npz"
    if path.exists():
        return PruneRun.load(path)

    suite = make_suite(spec.task_name, scale)
    model = make_model(spec, suite, scale)
    model.load_state_dict(get_parent_state(spec, scale))
    trainer = make_trainer(model, suite, scale, spec)
    pipeline = PruneRetrain(
        trainer,
        build_method(spec.method_name),
        retrain_epochs=scale.retrain_epochs,
        sample_size=scale.sample_size,
    )
    run = pipeline.run(target_ratios=scale.target_ratios)
    run.meta.update(
        {
            "task": spec.task_name,
            "model": spec.model_name,
            "repetition": spec.repetition,
            "robust": spec.robust,
        }
    )
    run.save(path)
    return run
