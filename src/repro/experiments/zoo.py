"""Disk-cached model zoo: trained parents and prune runs.

Every experiment needs (model, method, repetition) triples produced by
PRUNERETRAIN.  Training them is the dominant cost, so the zoo caches two
artifact kinds under ``REPRO_CACHE_DIR`` (default ``./.cache/repro``):

- parent states, keyed by (task, model, repetition, robust, scale digest) —
  shared across all pruning methods, as in the paper where each network is
  trained once before pruning;
- prune runs, additionally keyed by method.

The cache is safe under concurrent builders: artifacts are published
atomically (see :mod:`repro.utils.serialization`), every train-on-miss is
guarded by a per-artifact file lock with a double-checked reload, and a
corrupt archive is treated as a cache miss (unlinked and recomputed)
rather than a permanent failure.  :func:`build_zoo` fans a spec list out
across worker processes, parents first so prune runs never race their own
dependency.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro import observe
from repro.data.datasets import TaskSuite, cifar_like, imagenet_like, voc_like
from repro.experiments.config import ExperimentScale
from repro.models import build_model
from repro.nn.module import Module
from repro.optim import MultiStepLR
from repro.parallel import (
    CellTiming,
    GridTiming,
    artifact_lock,
    parallel_map,
    resolve_jobs,
    stopwatch,
)
from repro.pruning import PruneRetrain, PruneRun, build_method, canonical_spec
from repro.training import TrainConfig, Trainer, default_robust_protocol
from repro.utils.rng import as_rng
from repro.utils.serialization import save_state, try_load_state
from repro.verify import runtime as verify_runtime


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".cache/repro"))


def clear_cache() -> None:
    """Delete all cached zoo artifacts (and their lock files)."""
    root = cache_dir()
    if root.exists():
        for pattern in ("*.npz", "*.lock"):
            for path in root.glob(pattern):
                path.unlink()


@dataclass(frozen=True)
class ZooSpec:
    """Identity of one zoo artifact.

    ``method_name`` accepts any registry spec string (``"wt"``,
    ``"lowrank(rank_frac=0.25)"``) and is normalized to its canonical form
    at construction, so equal method configurations always share one cache
    artifact and distinct hyperparameter settings never collide.
    """

    task_name: str = "cifar"  # cifar | imagenet | voc
    model_name: str = "resnet20"
    method_name: str | None = None
    repetition: int = 0
    robust: bool = False

    def __post_init__(self) -> None:
        if self.method_name is not None:
            object.__setattr__(self, "method_name", canonical_spec(self.method_name))

    def key(self, scale: ExperimentScale) -> str:
        method = self.method_name or "parent"
        robust = "robust" if self.robust else "nominal"
        return (
            f"{self.task_name}-{self.model_name}-{method}-rep{self.repetition}"
            f"-{robust}-{scale.digest()}"
        )


def make_suite(task_name: str, scale: ExperimentScale) -> TaskSuite:
    """The task suite for one of the paper's three data-set roles."""
    if task_name == "cifar":
        return cifar_like(
            seed=scale.base_seed,
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size,
            num_classes=scale.num_classes,
        )
    if task_name == "imagenet":
        return imagenet_like(
            seed=scale.base_seed,
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size + 8,
            num_classes=2 * scale.num_classes,
        )
    if task_name == "voc":
        return voc_like(
            seed=scale.base_seed,
            n_train=max(scale.n_train // 2, 100),
            n_test=max(scale.n_test // 2, 50),
            image_size=scale.image_size + 8,
        )
    raise ValueError(f"unknown task {task_name!r}; choose cifar, imagenet, or voc")


@functools.lru_cache(maxsize=8)
def cached_suite(task_name: str, scale: ExperimentScale) -> TaskSuite:
    """Per-process cache of :func:`make_suite`.

    Suites are deterministic in (task, scale), so grid cells dispatched to
    worker processes share one suite per process instead of regenerating
    the synthetic data per cell.
    """
    return make_suite(task_name, scale)


def make_model(spec: ZooSpec, suite: TaskSuite, scale: ExperimentScale) -> Module:
    """Freshly initialized model for ``spec`` (deterministic per repetition)."""
    seed = scale.seed_for(spec.repetition)
    return build_model(
        spec.model_name,
        num_classes=suite.num_classes,
        base_width=scale.base_width,
        rng=as_rng(seed),
    )


def make_trainer(
    model: Module, suite: TaskSuite, scale: ExperimentScale, spec: ZooSpec
) -> Trainer:
    """Trainer with the scale's recipe; robust specs get corruption augmentation."""
    parent_epochs = scale.parent_epochs
    if spec.robust:
        parent_epochs = int(round(parent_epochs * scale.robust_epochs_factor))
    config = TrainConfig(
        epochs=parent_epochs,
        batch_size=scale.batch_size,
        lr=scale.lr,
        momentum=scale.momentum,
        weight_decay=scale.weight_decay,
        warmup_epochs=scale.warmup_epochs,
        schedule=MultiStepLR(
            [m * parent_epochs for m in scale.lr_decay_milestones],
            scale.lr_decay_gamma,
        ),
        retrain_schedule=MultiStepLR(
            [m * scale.retrain_epochs for m in scale.lr_decay_milestones],
            scale.lr_decay_gamma,
        ),
        seed=scale.seed_for(spec.repetition) + 17,
    )
    augment_fn = None
    if spec.robust:
        protocol = default_robust_protocol(scale.severity)
        augment_fn = protocol.augmenter(rng=scale.seed_for(spec.repetition) + 29)
    return Trainer(model, suite, config, augment_fn=augment_fn)


def artifact_path(spec: ZooSpec, scale: ExperimentScale) -> Path:
    """Cache location of one zoo artifact."""
    return cache_dir() / f"{spec.key(scale)}.npz"


def _load_cached_state(
    path: Path, unlink_corrupt: bool = False
) -> dict[str, np.ndarray] | None:
    """Cached arrays, or ``None`` (treating a corrupt archive as a miss).

    ``unlink_corrupt`` may only be passed while holding the artifact lock:
    unlinking from the lock-free fast path can delete the *complete*
    archive a concurrent publisher just promoted over the torn one via
    ``os.replace`` (the corrupt read and the unlink are not atomic).
    """
    loaded = try_load_state(path)
    if loaded is not None:
        return loaded[0]
    if unlink_corrupt and path.exists():
        path.unlink(missing_ok=True)
    return None


def _load_cached_run(path: Path, unlink_corrupt: bool = False) -> PruneRun | None:
    """Cached :class:`PruneRun`, or ``None`` (corrupt archives are misses).

    Corruption can also live in the metadata (e.g. truncated JSON), so the
    full reconstruction is attempted, not just the array load.  As with
    :func:`_load_cached_state`, ``unlink_corrupt`` is only safe under the
    artifact lock — a lock-free unlink races the atomic republish of a
    concurrent builder and can destroy its freshly published archive.
    """
    if not path.exists():
        return None
    try:
        return PruneRun.load(path)
    except Exception:
        if unlink_corrupt:
            path.unlink(missing_ok=True)
        return None


def _train_parent(parent_spec: ZooSpec, scale: ExperimentScale) -> dict[str, np.ndarray]:
    suite = make_suite(parent_spec.task_name, scale)
    model = make_model(parent_spec, suite, scale)
    trainer = make_trainer(model, suite, scale, parent_spec)
    trainer.train()
    return model.state_dict()


def get_parent_state(spec: ZooSpec, scale: ExperimentScale) -> dict[str, np.ndarray]:
    """Trained parent weights (cached, concurrency-safe).

    The fast path reads the cache without locking; on a miss the artifact
    lock is taken and the cache re-checked (another process may have
    finished training while we waited), so racing builders produce exactly
    one training run.
    """
    parent_spec = ZooSpec(
        spec.task_name, spec.model_name, None, spec.repetition, spec.robust
    )
    path = artifact_path(parent_spec, scale)
    state = _load_cached_state(path)
    if state is not None:
        return state
    with artifact_lock(path):
        # Under the lock it is safe to unlink a corrupt archive: no
        # concurrent publisher can be mid-replace on this path.
        state = _load_cached_state(path, unlink_corrupt=True)
        if state is not None:
            return state
        state = _train_parent(parent_spec, scale)
        save_state(path, state, {"spec": parent_spec.key(scale)})
    return state


def _train_prune_run(spec: ZooSpec, scale: ExperimentScale) -> PruneRun:
    suite = make_suite(spec.task_name, scale)
    model = make_model(spec, suite, scale)
    model.load_state_dict(get_parent_state(spec, scale))
    trainer = make_trainer(model, suite, scale, spec)
    pipeline = PruneRetrain(
        trainer,
        build_method(spec.method_name),
        retrain_epochs=scale.retrain_epochs,
        sample_size=scale.sample_size,
    )
    run = pipeline.run(target_ratios=scale.target_ratios)
    run.meta.update(
        {
            "task": spec.task_name,
            "model": spec.model_name,
            "repetition": spec.repetition,
            "robust": spec.robust,
        }
    )
    return run


def get_prune_run(spec: ZooSpec, scale: ExperimentScale) -> PruneRun:
    """A complete PRUNERETRAIN run (cached, concurrency-safe); requires
    ``method_name``.  Same fast-path / lock / re-check discipline as
    :func:`get_parent_state`."""
    if spec.method_name is None:
        raise ValueError("get_prune_run needs a method_name")
    path = artifact_path(spec, scale)
    run = _load_cached_run(path)
    if run is not None:
        verify_runtime.verify_loaded_run(run, path.name)
        return run
    with artifact_lock(path):
        run = _load_cached_run(path, unlink_corrupt=True)
        if run is not None:
            verify_runtime.verify_loaded_run(run, path.name)
            return run
        run = _train_prune_run(spec, scale)
        run.save(path)
    return run


# ----------------------------------------------------------- zoo building


def _build_cell(payload: tuple[ZooSpec, ExperimentScale]) -> CellTiming:
    """Materialize one artifact (worker-side); must stay module-level."""
    spec, scale = payload
    path = artifact_path(spec, scale)
    cached = path.exists()
    kind = "parent" if spec.method_name is None else "prune_run"
    t0 = time.perf_counter()
    with observe.span("zoo_cell", key=spec.key(scale), kind=kind, cached=cached):
        if spec.method_name is None:
            get_parent_state(spec, scale)
        else:
            get_prune_run(spec, scale)
    observe.incr("zoo.cache_hit" if cached else "zoo.cache_miss")
    return CellTiming(
        key=spec.key(scale), seconds=time.perf_counter() - t0, cached=cached
    )


def parent_specs(specs: Iterable[ZooSpec]) -> list[ZooSpec]:
    """Unique parent specs underlying ``specs`` (order-preserving)."""
    out: dict[ZooSpec, None] = {}
    for spec in specs:
        parent = ZooSpec(
            spec.task_name, spec.model_name, None, spec.repetition, spec.robust
        )
        out.setdefault(parent, None)
    return list(out)


def _zoo_payload(spec: ZooSpec) -> dict:
    """Manifest payload reconstructing ``spec`` (see ``repro.resilience.resume``)."""
    return {
        "kind": "zoo",
        "task": spec.task_name,
        "model": spec.model_name,
        "method": spec.method_name,
        "repetition": spec.repetition,
        "robust": spec.robust,
    }


def _parent_of(spec: ZooSpec) -> ZooSpec:
    return ZooSpec(spec.task_name, spec.model_name, None, spec.repetition, spec.robust)


def build_zoo(
    specs: Sequence[ZooSpec],
    scale: ExperimentScale,
    jobs: int | None = None,
    start_method: str | None = None,
    *,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    manifest_dir: str | Path | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> GridTiming:
    """Materialize every artifact in ``specs`` across ``jobs`` processes.

    Dependency-aware fan-out: all (deduplicated) parent states are built
    first, then the prune runs — so parallel prune workers always find
    their parent in the cache instead of serializing on its lock.
    Idempotent; cached artifacts are cheap cache probes.  Returns the
    per-artifact and end-to-end wall-clock record.

    With ``on_error="collect"`` a dead cell (exception, worker crash, or
    deadline blown — after ``max_retries`` attempts, see
    :mod:`repro.resilience`) no longer aborts the build: surviving cells
    complete, prune runs whose parent failed are skipped as
    ``dependency`` failures instead of retraining the parent under a
    worker lock, and every failure is recorded in a
    :class:`~repro.resilience.failures.FailureManifest` persisted under
    ``manifest_dir`` (default: the cache dir).  The returned
    :class:`GridTiming` carries the failures and the manifest path;
    ``python -m repro zoo --resume <manifest>`` recomputes only those
    cells.

    ``executor="queue"`` (or ``REPRO_EXECUTOR=queue``) routes both
    fan-outs through the durable work queue (:mod:`repro.queue`): the
    build survives driver and worker crashes, a re-run resumes from the
    journal, and extra ``python -m repro worker`` processes on any host
    sharing ``queue_dir`` can help drain the grid.  Parents and prune
    runs use distinct queue namespaces (``queue_dir/parents`` and
    ``queue_dir/prune``) so the two phases' journals never mix.
    """
    from repro.experiments.grid import persist_manifest
    from repro.resilience import CellFailure
    from repro.resilience.failures import KIND_DEPENDENCY

    specs = list(specs)
    collect = on_error == "collect"
    failures: list[CellFailure] = []
    parents_queue_dir = prune_queue_dir = None
    if queue_dir is not None:
        parents_queue_dir = Path(queue_dir) / "parents"
        prune_queue_dir = Path(queue_dir) / "prune"
    with observe.span(
        "build_zoo", specs=len(specs), jobs=resolve_jobs(jobs), on_error=on_error
    ) as span:
        with stopwatch() as elapsed:
            parents = parent_specs(specs)
            parent_by_key = {s.key(scale): s for s in parents}
            outcome = parallel_map(
                _build_cell,
                [(s, scale) for s in parents],
                jobs=jobs,
                start_method=start_method,
                on_error=on_error,
                max_retries=max_retries,
                timeout=cell_timeout,
                keys=[s.key(scale) for s in parents],
                executor=executor,
                queue_dir=parents_queue_dir,
            )
            if collect:
                cells = [c for c in outcome.results if c is not None]
                failures += [
                    f.with_payload(_zoo_payload(parent_by_key[f.key]))
                    for f in outcome.failures
                ]
            else:
                cells = list(outcome)
            # Prune runs whose parent failed would retrain it inline under
            # the artifact lock (and likely die the same way); skip them as
            # dependency failures instead.
            dead_parents = {parent_by_key[f.key] for f in failures}
            prune = [s for s in specs if s.method_name is not None]
            runnable = [s for s in prune if _parent_of(s) not in dead_parents]
            for index, spec in enumerate(prune):
                if _parent_of(spec) in dead_parents:
                    parent_key = _parent_of(spec).key(scale)
                    failures.append(
                        CellFailure(
                            key=spec.key(scale),
                            index=index,
                            kind=KIND_DEPENDENCY,
                            error_type="DependencyFailed",
                            message=f"parent cell {parent_key} failed",
                            attempts=0,
                            payload=_zoo_payload(spec),
                        )
                    )
            prune_by_key = {s.key(scale): s for s in runnable}
            outcome = parallel_map(
                _build_cell,
                [(s, scale) for s in runnable],
                jobs=jobs,
                start_method=start_method,
                on_error=on_error,
                max_retries=max_retries,
                timeout=cell_timeout,
                keys=[s.key(scale) for s in runnable],
                executor=executor,
                queue_dir=prune_queue_dir,
            )
            if collect:
                cells += [c for c in outcome.results if c is not None]
                failures += [
                    f.with_payload(_zoo_payload(prune_by_key[f.key]))
                    for f in outcome.failures
                ]
            else:
                cells += list(outcome)
            wall = elapsed()
        manifest_path = persist_manifest(
            "build_zoo", failures, len(parents) + len(prune), scale, manifest_dir
        )
        if manifest_path is not None:
            span.set(failed=len(failures), manifest=manifest_path)
    return GridTiming(
        label="build_zoo",
        jobs=resolve_jobs(jobs),
        wall_seconds=wall,
        cells=cells,
        failures=failures,
        manifest_path=manifest_path,
    ).record()
