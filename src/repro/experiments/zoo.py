"""Disk-cached model zoo: trained parents and prune runs.

Every experiment needs (model, method, repetition) triples produced by
PRUNERETRAIN.  Training them is the dominant cost, so the zoo caches two
artifact kinds under ``REPRO_CACHE_DIR`` (default ``./.cache/repro``):

- parent states, keyed by (task, model, repetition, robust, scale digest) —
  shared across all pruning methods, as in the paper where each network is
  trained once before pruning;
- prune runs, additionally keyed by method.

The cache is safe under concurrent builders: artifacts are published
atomically (see :mod:`repro.utils.serialization`), every train-on-miss is
guarded by a per-artifact file lock with a double-checked reload, and a
corrupt archive is treated as a cache miss (unlinked and recomputed)
rather than a permanent failure.  :func:`build_zoo` fans a spec list out
across worker processes, parents first so prune runs never race their own
dependency.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro import observe
from repro.data.datasets import TaskSuite, cifar_like, imagenet_like, voc_like
from repro.experiments.config import ExperimentScale
from repro.models import build_model
from repro.nn.module import Module
from repro.optim import MultiStepLR
from repro.parallel import (
    CellTiming,
    GridTiming,
    artifact_lock,
    parallel_map,
    resolve_jobs,
    stopwatch,
)
from repro.pruning import PruneRetrain, PruneRun, build_method
from repro.training import TrainConfig, Trainer, default_robust_protocol
from repro.utils.rng import as_rng
from repro.utils.serialization import save_state, try_load_state
from repro.verify import runtime as verify_runtime


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".cache/repro"))


def clear_cache() -> None:
    """Delete all cached zoo artifacts (and their lock files)."""
    root = cache_dir()
    if root.exists():
        for pattern in ("*.npz", "*.lock"):
            for path in root.glob(pattern):
                path.unlink()


@dataclass(frozen=True)
class ZooSpec:
    """Identity of one zoo artifact."""

    task_name: str = "cifar"  # cifar | imagenet | voc
    model_name: str = "resnet20"
    method_name: str | None = None
    repetition: int = 0
    robust: bool = False

    def key(self, scale: ExperimentScale) -> str:
        method = self.method_name or "parent"
        robust = "robust" if self.robust else "nominal"
        return (
            f"{self.task_name}-{self.model_name}-{method}-rep{self.repetition}"
            f"-{robust}-{scale.digest()}"
        )


def make_suite(task_name: str, scale: ExperimentScale) -> TaskSuite:
    """The task suite for one of the paper's three data-set roles."""
    if task_name == "cifar":
        return cifar_like(
            seed=scale.base_seed,
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size,
            num_classes=scale.num_classes,
        )
    if task_name == "imagenet":
        return imagenet_like(
            seed=scale.base_seed,
            n_train=scale.n_train,
            n_test=scale.n_test,
            image_size=scale.image_size + 8,
            num_classes=2 * scale.num_classes,
        )
    if task_name == "voc":
        return voc_like(
            seed=scale.base_seed,
            n_train=max(scale.n_train // 2, 100),
            n_test=max(scale.n_test // 2, 50),
            image_size=scale.image_size + 8,
        )
    raise ValueError(f"unknown task {task_name!r}; choose cifar, imagenet, or voc")


@functools.lru_cache(maxsize=8)
def cached_suite(task_name: str, scale: ExperimentScale) -> TaskSuite:
    """Per-process cache of :func:`make_suite`.

    Suites are deterministic in (task, scale), so grid cells dispatched to
    worker processes share one suite per process instead of regenerating
    the synthetic data per cell.
    """
    return make_suite(task_name, scale)


def make_model(spec: ZooSpec, suite: TaskSuite, scale: ExperimentScale) -> Module:
    """Freshly initialized model for ``spec`` (deterministic per repetition)."""
    seed = scale.seed_for(spec.repetition)
    return build_model(
        spec.model_name,
        num_classes=suite.num_classes,
        base_width=scale.base_width,
        rng=as_rng(seed),
    )


def make_trainer(
    model: Module, suite: TaskSuite, scale: ExperimentScale, spec: ZooSpec
) -> Trainer:
    """Trainer with the scale's recipe; robust specs get corruption augmentation."""
    parent_epochs = scale.parent_epochs
    if spec.robust:
        parent_epochs = int(round(parent_epochs * scale.robust_epochs_factor))
    config = TrainConfig(
        epochs=parent_epochs,
        batch_size=scale.batch_size,
        lr=scale.lr,
        momentum=scale.momentum,
        weight_decay=scale.weight_decay,
        warmup_epochs=scale.warmup_epochs,
        schedule=MultiStepLR(
            [m * parent_epochs for m in scale.lr_decay_milestones],
            scale.lr_decay_gamma,
        ),
        retrain_schedule=MultiStepLR(
            [m * scale.retrain_epochs for m in scale.lr_decay_milestones],
            scale.lr_decay_gamma,
        ),
        seed=scale.seed_for(spec.repetition) + 17,
    )
    augment_fn = None
    if spec.robust:
        protocol = default_robust_protocol(scale.severity)
        augment_fn = protocol.augmenter(rng=scale.seed_for(spec.repetition) + 29)
    return Trainer(model, suite, config, augment_fn=augment_fn)


def artifact_path(spec: ZooSpec, scale: ExperimentScale) -> Path:
    """Cache location of one zoo artifact."""
    return cache_dir() / f"{spec.key(scale)}.npz"


def _load_cached_state(path: Path) -> dict[str, np.ndarray] | None:
    """Cached arrays, or ``None``; a corrupt archive is unlinked (miss)."""
    loaded = try_load_state(path)
    if loaded is not None:
        return loaded[0]
    path.unlink(missing_ok=True)
    return None


def _load_cached_run(path: Path) -> PruneRun | None:
    """Cached :class:`PruneRun`, or ``None``; corrupt archives are unlinked.

    Corruption can also live in the metadata (e.g. truncated JSON), so the
    full reconstruction is attempted, not just the array load.
    """
    if not path.exists():
        return None
    try:
        return PruneRun.load(path)
    except Exception:
        path.unlink(missing_ok=True)
        return None


def _train_parent(parent_spec: ZooSpec, scale: ExperimentScale) -> dict[str, np.ndarray]:
    suite = make_suite(parent_spec.task_name, scale)
    model = make_model(parent_spec, suite, scale)
    trainer = make_trainer(model, suite, scale, parent_spec)
    trainer.train()
    return model.state_dict()


def get_parent_state(spec: ZooSpec, scale: ExperimentScale) -> dict[str, np.ndarray]:
    """Trained parent weights (cached, concurrency-safe).

    The fast path reads the cache without locking; on a miss the artifact
    lock is taken and the cache re-checked (another process may have
    finished training while we waited), so racing builders produce exactly
    one training run.
    """
    parent_spec = ZooSpec(
        spec.task_name, spec.model_name, None, spec.repetition, spec.robust
    )
    path = artifact_path(parent_spec, scale)
    state = _load_cached_state(path)
    if state is not None:
        return state
    with artifact_lock(path):
        state = _load_cached_state(path)
        if state is not None:
            return state
        state = _train_parent(parent_spec, scale)
        save_state(path, state, {"spec": parent_spec.key(scale)})
    return state


def _train_prune_run(spec: ZooSpec, scale: ExperimentScale) -> PruneRun:
    suite = make_suite(spec.task_name, scale)
    model = make_model(spec, suite, scale)
    model.load_state_dict(get_parent_state(spec, scale))
    trainer = make_trainer(model, suite, scale, spec)
    pipeline = PruneRetrain(
        trainer,
        build_method(spec.method_name),
        retrain_epochs=scale.retrain_epochs,
        sample_size=scale.sample_size,
    )
    run = pipeline.run(target_ratios=scale.target_ratios)
    run.meta.update(
        {
            "task": spec.task_name,
            "model": spec.model_name,
            "repetition": spec.repetition,
            "robust": spec.robust,
        }
    )
    return run


def get_prune_run(spec: ZooSpec, scale: ExperimentScale) -> PruneRun:
    """A complete PRUNERETRAIN run (cached, concurrency-safe); requires
    ``method_name``.  Same fast-path / lock / re-check discipline as
    :func:`get_parent_state`."""
    if spec.method_name is None:
        raise ValueError("get_prune_run needs a method_name")
    path = artifact_path(spec, scale)
    run = _load_cached_run(path)
    if run is not None:
        verify_runtime.verify_loaded_run(run, path.name)
        return run
    with artifact_lock(path):
        run = _load_cached_run(path)
        if run is not None:
            verify_runtime.verify_loaded_run(run, path.name)
            return run
        run = _train_prune_run(spec, scale)
        run.save(path)
    return run


# ----------------------------------------------------------- zoo building


def _build_cell(payload: tuple[ZooSpec, ExperimentScale]) -> CellTiming:
    """Materialize one artifact (worker-side); must stay module-level."""
    spec, scale = payload
    path = artifact_path(spec, scale)
    cached = path.exists()
    kind = "parent" if spec.method_name is None else "prune_run"
    t0 = time.perf_counter()
    with observe.span("zoo_cell", key=spec.key(scale), kind=kind, cached=cached):
        if spec.method_name is None:
            get_parent_state(spec, scale)
        else:
            get_prune_run(spec, scale)
    observe.incr("zoo.cache_hit" if cached else "zoo.cache_miss")
    return CellTiming(
        key=spec.key(scale), seconds=time.perf_counter() - t0, cached=cached
    )


def parent_specs(specs: Iterable[ZooSpec]) -> list[ZooSpec]:
    """Unique parent specs underlying ``specs`` (order-preserving)."""
    out: dict[ZooSpec, None] = {}
    for spec in specs:
        parent = ZooSpec(
            spec.task_name, spec.model_name, None, spec.repetition, spec.robust
        )
        out.setdefault(parent, None)
    return list(out)


def build_zoo(
    specs: Sequence[ZooSpec],
    scale: ExperimentScale,
    jobs: int | None = None,
    start_method: str | None = None,
) -> GridTiming:
    """Materialize every artifact in ``specs`` across ``jobs`` processes.

    Dependency-aware fan-out: all (deduplicated) parent states are built
    first, then the prune runs — so parallel prune workers always find
    their parent in the cache instead of serializing on its lock.
    Idempotent; cached artifacts are cheap cache probes.  Returns the
    per-artifact and end-to-end wall-clock record.
    """
    specs = list(specs)
    with observe.span("build_zoo", specs=len(specs), jobs=resolve_jobs(jobs)):
        with stopwatch() as elapsed:
            parents = parent_specs(specs)
            cells = parallel_map(
                _build_cell,
                [(s, scale) for s in parents],
                jobs=jobs,
                start_method=start_method,
            )
            prune = [s for s in specs if s.method_name is not None]
            cells += parallel_map(
                _build_cell,
                [(s, scale) for s in prune],
                jobs=jobs,
                start_method=start_method,
            )
            wall = elapsed()
    return GridTiming(
        label="build_zoo", jobs=resolve_jobs(jobs), wall_seconds=wall, cells=cells
    ).record()
