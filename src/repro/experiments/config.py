"""Experiment scale presets.

The paper's experiments train to completion on GPUs; ours run on CPU, so
every experiment takes an :class:`ExperimentScale` controlling data size,
training budget, and analysis sample counts.  ``SMOKE`` keeps each bench in
the tens-of-seconds range; ``FULL`` is a longer configuration for offline
runs.  Both preserve the protocol (iterative targets, δ = 0.5%, corruption
severity 3, 2–3 repetitions with error bars).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs that trade fidelity for compute."""

    # task
    n_train: int = 1000
    n_test: int = 400
    image_size: int = 16
    num_classes: int = 10
    # models
    base_width: int = 4
    # training (Tables 3/5/7 analog)
    parent_epochs: int = 15
    retrain_epochs: int = 3
    # Corruption-augmented (robust) training converges more slowly; its
    # budget is the nominal budget times this factor (Appendix E trains
    # robust networks with the full recipe on the augmented distribution).
    robust_epochs_factor: float = 2.0
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    warmup_epochs: float = 1.0
    lr_decay_milestones: tuple[float, ...] = (0.5, 0.8)  # fractions of epochs
    lr_decay_gamma: float = 0.1
    # pipeline
    target_ratios: tuple[float, ...] = (0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.96)
    sample_size: int = 128
    # analysis protocol
    n_repetitions: int = 2
    delta: float = 0.005
    severity: int = 3
    noise_levels: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    noise_trials: int = 5
    noise_images: int = 200
    backselect_images: int = 8
    backselect_pixels_per_step: int = 8
    backselect_keep_fraction: float = 0.1
    base_seed: int = 0

    # Fields that do NOT change trained artifacts (analysis protocol only);
    # excluded from the cache digest so tuning them never retrains the zoo.
    _ANALYSIS_FIELDS = (
        "n_repetitions",
        "delta",
        "noise_levels",
        "noise_trials",
        "noise_images",
        "backselect_images",
        "backselect_pixels_per_step",
        "backselect_keep_fraction",
    )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    def digest(self) -> str:
        """Short stable hash of the *training-relevant* configuration.

        Used in zoo cache keys: two scales that train identical artifacts
        (same task, model width, recipe, prune schedule) share a digest even
        if their analysis protocol (noise levels, repetitions, δ) differs.
        """
        fields = {
            k: v for k, v in asdict(self).items() if k not in self._ANALYSIS_FIELDS
        }
        return hashlib.sha1(json.dumps(fields, sort_keys=True).encode()).hexdigest()[:12]

    def seed_for(self, repetition: int) -> int:
        return self.base_seed + 1009 * repetition

    def with_(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


SMOKE = ExperimentScale()

FULL = ExperimentScale(
    n_train=4000,
    n_test=1000,
    parent_epochs=30,
    retrain_epochs=10,
    base_width=8,
    target_ratios=(0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.96, 0.98),
    n_repetitions=3,
    noise_trials=20,
    noise_images=1000,
    backselect_images=50,
    backselect_pixels_per_step=4,
)
