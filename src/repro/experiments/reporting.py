"""Plain-text reporting helpers for experiment results.

Benches and the EXPERIMENTS.md generator render curves as unicode
sparklines and tables via :mod:`repro.utils.tables`.
"""

from __future__ import annotations

import numpy as np

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values, lo: float | None = None, hi: float | None = None) -> str:
    """Render a sequence as a unicode sparkline.

    ``lo``/``hi`` pin the scale (default: data range); constant input
    renders mid-level bars.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        return _BARS[3] * arr.size
    scaled = (arr - lo) / (hi - lo)
    idx = np.clip((scaled * (len(_BARS) - 1)).round().astype(int), 0, len(_BARS) - 1)
    return "".join(_BARS[i] for i in idx)


def curve_line(label: str, xs, ys, fmt: str = "{:.2f}") -> str:
    """One labelled sparkline row with endpoint annotations.

    An empty series renders as a labelled ``(no data)`` row instead of
    raising, so one empty cell cannot abort a whole report.
    """
    ys = list(ys)
    if not ys:
        return f"{label:<24s} (no data)"
    spark = sparkline(ys)
    return (
        f"{label:<24s} {spark}  "
        f"[{fmt.format(ys[0])} → {fmt.format(ys[-1])}] over x={list(np.round(xs, 2))}"
    )


def percent(value: float, digits: int = 1) -> str:
    return f"{100 * value:.{digits}f}%"
