"""δ-sensitivity of the prune potential (Appendix D.4, Fig. 38)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.config import ExperimentScale
from repro.experiments.corruption_study import corruption_potential_experiment

DEFAULT_DELTAS: tuple[float, ...] = (0.0, 0.005, 0.01, 0.02, 0.05)


@dataclass
class DeltaSweepResult:
    """Prune potential per (δ, distribution)."""

    task_name: str
    model_name: str
    method_name: str
    deltas: np.ndarray  # (J,)
    distributions: list[str]
    potentials: np.ndarray  # (J, R, D)

    def mean(self) -> np.ndarray:
        """(J, D) potentials averaged over repetitions."""
        return self.potentials.mean(axis=1)


def delta_sweep_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    corruptions: Sequence[str] | None = None,
) -> DeltaSweepResult:
    """Re-extract prune potentials from the same curves at several δ."""
    base = corruption_potential_experiment(
        task_name, model_name, method_name, scale, corruptions
    )
    potentials = np.zeros((len(deltas), scale.n_repetitions, len(base.distributions)))
    for ji, delta in enumerate(deltas):
        for di, dist in enumerate(base.distributions):
            for rep, curve in enumerate(base.curves[dist]):
                potentials[ji, rep, di] = curve.potential(delta)
    return DeltaSweepResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        deltas=np.asarray(deltas, dtype=float),
        distributions=base.distributions,
        potentials=potentials,
    )
