"""Robust-training experiments (Section 6, Fig. 8, Appendix E).

Networks are trained *and retrained* with the Table-11 corruption
augmentation; evaluation separates corruptions seen during training (train
distribution) from held-out ones (test distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import observe
from repro.experiments.config import ExperimentScale
from repro.experiments.corruption_study import (
    CorruptionPotentialResult,
    ExcessErrorStudyResult,
    corruption_excess_error_experiment,
    corruption_potential_experiment,
)
from repro.training.robust import RobustProtocol, default_robust_protocol


@dataclass
class RobustPotentialResult:
    """Fig. 8b: potential split into train-dist vs test-dist corruptions."""

    base: CorruptionPotentialResult
    protocol: RobustProtocol

    def train_dist_potentials(self) -> np.ndarray:
        """(R, |train corruptions| + 1) including nominal data."""
        names = ["nominal", *self.protocol.train_corruptions]
        cols = [self.base.distributions.index(n) for n in names]
        return self.base.potentials[:, cols]

    def test_dist_potentials(self) -> np.ndarray:
        """(R, |test corruptions| + 1) including the shifted set (CIFAR10.1 role)."""
        names = [*self.protocol.test_corruptions]
        if "shifted" in self.base.distributions:
            names = ["shifted", *names]
        cols = [self.base.distributions.index(n) for n in names]
        return self.base.potentials[:, cols]


def robust_potential_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    protocol: RobustProtocol | None = None,
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> RobustPotentialResult:
    """Per-corruption potential of robustly (re-)trained networks."""
    protocol = protocol or default_robust_protocol(scale.severity)
    corruptions = [*protocol.train_corruptions, *protocol.test_corruptions]
    with observe.span(
        "robust_potential", task=task_name, model=model_name, method=method_name
    ):
        base = corruption_potential_experiment(
            task_name, model_name, method_name, scale,
            corruptions=corruptions, robust=True, jobs=jobs,
            on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
            executor=executor, queue_dir=queue_dir,
        )
    return RobustPotentialResult(base=base, protocol=protocol)


def robust_excess_error_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    protocol: RobustProtocol | None = None,
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> ExcessErrorStudyResult:
    """``ê − e`` of robustly trained networks over the held-out corruptions."""
    protocol = protocol or default_robust_protocol(scale.severity)
    with observe.span(
        "robust_excess_error", task=task_name, model=model_name, method=method_name
    ):
        return corruption_excess_error_experiment(
            task_name,
            model_name,
            method_name,
            scale,
            corruptions=list(protocol.test_corruptions),
            robust=True,
            jobs=jobs,
            on_error=on_error,
            max_retries=max_retries,
            cell_timeout=cell_timeout,
            executor=executor,
            queue_dir=queue_dir,
        )
