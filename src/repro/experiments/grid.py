"""Shared graceful-degradation plumbing for experiment grids.

Every study grid (corruption, noise, prune curves, robust) follows the
same resilient dispatch shape: build the zoo artifacts it needs, skip
evaluation cells whose zoo dependency died (``dependency`` failures
instead of retraining a doomed parent inline), fan the surviving cells
out with ``on_error="collect"``, and persist one
:class:`~repro.resilience.failures.FailureManifest` covering both
phases.  This module holds the pieces those grids compose so the policy
lives in one place.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Sequence

from repro import observe
from repro.parallel import GridTiming, parallel_map
from repro.resilience import CellFailure, FailureManifest
from repro.resilience.failures import KIND_DEPENDENCY, default_manifest_path


def dispatch_cells(
    fn: Callable,
    payloads: Sequence,
    keys: Sequence[str],
    *,
    jobs: int | None = None,
    start_method: str | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> tuple[list, list[CellFailure]]:
    """Fan a grid's evaluation cells out; returns ``(results, failures)``.

    ``results`` is always aligned with ``payloads``: in collect mode a
    dead cell leaves a ``None`` hole (and one :class:`CellFailure`), in
    raise mode the first failure propagates so there are no holes.
    ``executor="queue"`` routes the cells through the durable work queue
    (:mod:`repro.queue`) instead of the in-process pool.
    """
    out = parallel_map(
        fn,
        list(payloads),
        jobs=jobs,
        start_method=start_method,
        on_error=on_error,
        max_retries=max_retries,
        timeout=cell_timeout,
        keys=list(keys),
        executor=executor,
        queue_dir=queue_dir,
    )
    if on_error == "collect":
        return list(out.results), list(out.failures)
    return list(out), []


def dependency_failure(
    key: str, index: int, upstream: str, payload: dict[str, Any] | None = None
) -> CellFailure:
    """A cell skipped because an upstream cell (e.g. its zoo artifact) died."""
    return CellFailure(
        key=key,
        index=index,
        kind=KIND_DEPENDENCY,
        error_type="DependencyFailed",
        message=f"upstream cell {upstream} failed",
        attempts=0,
        payload=payload,
    )


def failed_repetitions(zoo_timing: GridTiming) -> set[int]:
    """Repetitions with at least one dead zoo artifact in a degraded build.

    Evaluation cells of these repetitions would call ``get_prune_run``
    inline and re-attempt the training that just failed; grids skip them
    as ``dependency`` failures instead.
    """
    reps: set[int] = set()
    for failure in zoo_timing.failures:
        payload = failure.payload or {}
        if payload.get("kind") == "zoo":
            reps.add(int(payload.get("repetition", -1)))
    return reps


def persist_manifest(
    label: str,
    failures: Sequence[CellFailure],
    total_cells: int,
    scale,
    manifest_dir: str | Path | None = None,
) -> str | None:
    """Persist a degraded grid's manifest next to the artifacts.

    Returns the manifest path, or ``None`` for a clean grid.  The scale
    digest is recorded so ``--resume`` refuses to replay the manifest
    against a different cache namespace.
    """
    if not failures:
        return None
    # Lazy import: repro.experiments.zoo imports this module.
    from repro.experiments.zoo import cache_dir

    manifest = FailureManifest(
        label=label,
        failures=list(failures),
        total_cells=total_cells,
        scale_digest=scale.digest(),
    )
    directory = Path(manifest_dir) if manifest_dir else cache_dir()
    path = manifest.save(default_manifest_path(directory, label))
    observe.event(
        "degraded",
        label=label,
        failed=len(failures),
        total=total_cells,
        manifest=str(path),
    )
    return str(path)
