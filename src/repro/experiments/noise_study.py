"""Noise experiments: prune potential vs noise level (Fig. 1/28) and
functional similarity under noise (Fig. 4, Appendix C.2).

The (repetition × noise level) potential grid dispatches through
:mod:`repro.parallel`; every cell derives its own rng from (rep, level),
so the parallel results are identical to the serial ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import observe
from repro.analysis.functional_distance import noise_similarity
from repro.analysis.prune_potential import evaluate_curve
from repro.data.noise import add_uniform_noise
from repro.experiments.config import ExperimentScale
from repro.experiments.grid import (
    dependency_failure,
    dispatch_cells,
    failed_repetitions,
    persist_manifest,
)
from repro.experiments.zoo import (
    ZooSpec,
    build_zoo,
    cached_suite,
    get_parent_state,
    get_prune_run,
    make_model,
    make_suite,
)
from repro.parallel import CellTiming, GridTiming, resolve_jobs, stopwatch
from repro.utils.rng import as_rng


@dataclass
class NoisePotentialResult:
    """Prune potential per noise level (Fig. 1)."""

    task_name: str
    model_name: str
    method_name: str
    noise_levels: np.ndarray  # (L,)
    potentials: np.ndarray  # (R, L)
    timing: GridTiming | None = None

    @property
    def mean(self) -> np.ndarray:
        return self.potentials.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        return self.potentials.std(axis=0)


def _noise_cell(payload) -> tuple[int, int, float, CellTiming]:
    """Evaluate one (repetition, noise level) cell (worker-side).

    The noisy copy is regenerated per cell from the (rep, level) seed, so
    the parent and every checkpoint are compared on *identical* noisy
    inputs (noise is injected in normalized space per Section 4.1) and
    serial/parallel execution see the same bytes.
    """
    from repro.data.datasets import Dataset

    task_name, model_name, method_name, scale, rep, li = payload
    t0 = time.perf_counter()
    eps = scale.noise_levels[li]
    with observe.span("eval_cell", grid="noise", rep=rep, noise_level=eps):
        suite = cached_suite(task_name, scale)
        test = suite.test_set()
        images_norm = suite.normalizer()(test.images)
        rng = as_rng(scale.seed_for(rep) + 100 + li)
        noisy = Dataset(
            add_uniform_noise(images_norm, eps, rng),
            test.labels,
            name=f"{test.name}+noise{eps:.2f}",
        )
        spec = ZooSpec(task_name, model_name, method_name, rep)
        run = get_prune_run(spec, scale)
        model = make_model(spec, suite, scale)
        curve = evaluate_curve(run, model, noisy, normalizer=None)
    observe.incr("eval.cells")
    timing = CellTiming(
        key=f"rep{rep}/noise{eps:.2f}", seconds=time.perf_counter() - t0
    )
    return rep, li, curve.potential(scale.delta), timing


def noise_potential_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> NoisePotentialResult:
    """Evaluate Definition 1 under ℓ∞ noise of growing magnitude.

    Under ``on_error="collect"`` failed cells become NaN entries in
    ``potentials`` and the grid's failure manifest is persisted (see
    :mod:`repro.resilience`).
    """
    label = f"noise_potential[{task_name}/{model_name}/{method_name}]"
    failures = []
    with stopwatch() as elapsed:
        zoo_specs = [
            ZooSpec(task_name, model_name, method_name, rep)
            for rep in range(scale.n_repetitions)
        ]
        zoo_timing = build_zoo(
            zoo_specs, scale, jobs=jobs,
            on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
            executor=executor, queue_dir=queue_dir,
        )
        failures += zoo_timing.failures
        dead_reps = failed_repetitions(zoo_timing)
        payloads, keys = [], []
        index = 0
        for rep in range(scale.n_repetitions):
            for li in range(len(scale.noise_levels)):
                key = f"rep{rep}/noise{scale.noise_levels[li]:.2f}"
                if rep in dead_reps:
                    failures.append(
                        dependency_failure(key, index, f"zoo repetition {rep}")
                    )
                else:
                    payloads.append((task_name, model_name, method_name, scale, rep, li))
                    keys.append(key)
                index += 1
        results, eval_failures = dispatch_cells(
            _noise_cell, payloads, keys, jobs=jobs,
            on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
            executor=executor, queue_dir=queue_dir,
        )
        failures += eval_failures
        wall = elapsed()
    cells = [r for r in results if r is not None]
    potentials = np.full((scale.n_repetitions, len(scale.noise_levels)), np.nan)
    for rep, li, potential, _ in cells:
        potentials[rep, li] = potential
    total = len(zoo_timing.cells) + len(zoo_timing.failures)
    total += scale.n_repetitions * len(scale.noise_levels)
    manifest_path = persist_manifest(label, failures, total, scale)
    return NoisePotentialResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        noise_levels=np.asarray(scale.noise_levels),
        potentials=potentials,
        timing=GridTiming(
            label=label,
            jobs=resolve_jobs(jobs),
            wall_seconds=wall,
            cells=zoo_timing.cells + [t for *_, t in cells],
            failures=failures,
            manifest_path=manifest_path,
        ).record(),
    )


@dataclass
class NoiseSimilarityResult:
    """Matching predictions / softmax distance vs parent (Fig. 4)."""

    task_name: str
    model_name: str
    method_name: str
    noise_levels: np.ndarray  # (L,)
    ratios: np.ndarray  # (K,)
    match_rates: np.ndarray  # (K, L) pruned-vs-parent
    l2_distances: np.ndarray  # (K, L)
    separate_match_rates: np.ndarray  # (L,) separately trained net vs parent
    separate_l2_distances: np.ndarray  # (L,)


def noise_similarity_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    repetition: int = 0,
) -> NoiseSimilarityResult:
    """Compare pruned networks and a separately trained network to the parent."""
    suite = make_suite(task_name, scale)
    normalizer = suite.normalizer()
    test = suite.test_set()
    images = normalizer(test.images[: scale.noise_images])

    spec = ZooSpec(task_name, model_name, method_name, repetition)
    run = get_prune_run(spec, scale)
    parent = make_model(spec, suite, scale)
    parent.load_state_dict(run.parent_state)

    # The "separately trained, unpruned network": the parent of another
    # repetition (different init and data order, same recipe).
    sep_spec = ZooSpec(task_name, model_name, None, repetition + 1)
    separate = make_model(sep_spec, suite, scale)
    separate.load_state_dict(get_parent_state(sep_spec, scale))

    pruned = make_model(spec, suite, scale)
    levels = np.asarray(scale.noise_levels)
    k = len(run.checkpoints)
    match = np.zeros((k, len(levels)))
    l2 = np.zeros((k, len(levels)))
    for ki, ckpt in enumerate(run.checkpoints):
        pruned.load_state_dict(ckpt.state)
        for li, eps in enumerate(levels):
            sim = noise_similarity(
                parent,
                pruned,
                images,
                eps,
                n_trials=scale.noise_trials,
                rng=scale.seed_for(repetition) + 300 + li,
            )
            match[ki, li] = sim.match_rate
            l2[ki, li] = sim.l2_distance

    sep_match = np.zeros(len(levels))
    sep_l2 = np.zeros(len(levels))
    for li, eps in enumerate(levels):
        sim = noise_similarity(
            parent,
            separate,
            images,
            eps,
            n_trials=scale.noise_trials,
            rng=scale.seed_for(repetition) + 400 + li,
        )
        sep_match[li] = sim.match_rate
        sep_l2[li] = sim.l2_distance

    return NoiseSimilarityResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        noise_levels=levels,
        ratios=run.ratios,
        match_rates=match,
        l2_distances=l2,
        separate_match_rates=sep_match,
        separate_l2_distances=sep_l2,
    )
