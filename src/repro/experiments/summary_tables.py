"""Composed paper tables.

- :func:`pr_fr_table` — Tables 4/6/8: PR and FR at commensurate accuracy.
- :func:`overparam_table` — Tables 2/9/10 (nominal training) and 12/13
  (robust training): average and minimum prune potential on the train vs
  test distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.overparam import PotentialSummary, summarize_potentials
from repro.experiments.config import ExperimentScale
from repro.experiments.prune_curves import (
    PruneSummaryRow,
    prune_curve_experiment,
    prune_summary_row,
)
from repro.experiments.corruption_study import corruption_potential_experiment
from repro.experiments.robust_study import robust_potential_experiment
from repro.pruning import available_methods, canonical_spec
from repro.training.robust import default_robust_protocol
from repro.utils.tables import format_table


def resolve_method_names(method_names: Sequence[str] | None) -> list[str]:
    """Canonical spec strings, defaulting to every registered method."""
    if method_names is None:
        return available_methods()
    return [canonical_spec(name) for name in method_names]


def pr_fr_table(
    task_name: str,
    model_names: Sequence[str],
    method_names: Sequence[str] | None = None,
    scale: ExperimentScale = ExperimentScale(),
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> tuple[list[PruneSummaryRow], str]:
    """Rows + rendered text of the Table 4/6/8 analog.

    ``method_names=None`` enumerates every registered pruning method; an
    explicit list may use any registry spec strings.
    """
    method_names = resolve_method_names(method_names)
    rows = []
    for model_name in model_names:
        for method_name in method_names:
            result = prune_curve_experiment(
                task_name, model_name, method_name, scale,
                jobs=jobs, on_error=on_error,
                max_retries=max_retries, cell_timeout=cell_timeout,
                executor=executor, queue_dir=queue_dir,
            )
            rows.append(prune_summary_row(result, scale.delta))
    text = format_table(
        ["Model", "Method", "Orig. Err (%)", "ΔErr (%)", "PR (%)", "FR (%)"],
        [
            [
                r.model_name,
                r.method_name.upper(),
                f"{100 * r.orig_error:.2f}",
                f"{100 * r.error_delta:+.2f}",
                f"{100 * r.prune_ratio:.2f}",
                f"{100 * r.flop_reduction:.2f}",
            ]
            for r in rows
        ],
        title=f"PR/FR at commensurate accuracy — {task_name}",
    )
    return rows, text


@dataclass
class OverparamRow:
    """One row of Tables 9/10/12/13."""

    model_name: str
    method_name: str
    train_dist: PotentialSummary
    test_dist: PotentialSummary


def overparam_table(
    task_name: str,
    model_names: Sequence[str],
    method_names: Sequence[str] | None = None,
    scale: ExperimentScale = ExperimentScale(),
    robust: bool = False,
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> tuple[list[OverparamRow], str]:
    """Average/minimum prune potential on the train vs test distribution.

    Nominal training (Tables 9/10): train distribution = {nominal test
    data}; test distribution = all corruptions.  Robust training (Tables
    12/13): train distribution = nominal + Table-11 train corruptions; test
    distribution = shifted set + held-out corruptions.

    ``method_names=None`` enumerates every registered pruning method.
    """
    method_names = resolve_method_names(method_names)
    rows = []
    protocol = default_robust_protocol(scale.severity)
    for model_name in model_names:
        for method_name in method_names:
            knobs = dict(
                jobs=jobs, on_error=on_error,
                max_retries=max_retries, cell_timeout=cell_timeout,
                executor=executor, queue_dir=queue_dir,
            )
            if robust:
                result = robust_potential_experiment(
                    task_name, model_name, method_name, scale, protocol, **knobs
                )
                train_matrix = result.train_dist_potentials()
                test_matrix = result.test_dist_potentials()
            else:
                base = corruption_potential_experiment(
                    task_name, model_name, method_name, scale, **knobs
                )
                train_matrix = base.potentials[
                    :, [base.distributions.index("nominal")]
                ]
                corruption_cols = [
                    i
                    for i, name in enumerate(base.distributions)
                    if name not in ("nominal", "shifted")
                ]
                test_matrix = base.potentials[:, corruption_cols]
            rows.append(
                OverparamRow(
                    model_name=model_name,
                    method_name=method_name,
                    train_dist=summarize_potentials(train_matrix),
                    test_dist=summarize_potentials(test_matrix),
                )
            )

    cells = []
    for r in rows:
        avg_train, min_train = r.train_dist.row()
        avg_test, min_test = r.test_dist.row()
        cells.append(
            [r.model_name, r.method_name.upper(), avg_train, avg_test, min_train, min_test]
        )
    regime = "robust" if robust else "nominal"
    text = format_table(
        [
            "Model",
            "Method",
            "Avg PP Train (%)",
            "Avg PP Test (%)",
            "Min PP Train (%)",
            "Min PP Test (%)",
        ],
        cells,
        title=f"Prune potential, train vs test distribution — {task_name} ({regime} training)",
    )
    return rows, text
