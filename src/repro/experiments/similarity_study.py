"""Informative-feature transfer heatmaps (Fig. 3, Appendix C.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.backselect import cross_model_confidence_matrix
from repro.experiments.config import ExperimentScale
from repro.experiments.zoo import ZooSpec, get_parent_state, get_prune_run, make_model, make_suite


@dataclass
class BackselectHeatmapResult:
    """Cross-model confidence heatmap over [parent, pruned..., separate]."""

    task_name: str
    model_name: str
    method_name: str
    labels: list[str]  # row/column names
    heatmap: np.ndarray  # (M, M); rows = pixel source, cols = evaluator

    def parent_row(self) -> np.ndarray:
        """Confidence of every model on the parent's informative pixels."""
        return self.heatmap[0]

    def separate_index(self) -> int:
        return len(self.labels) - 1


def backselect_heatmap_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    repetition: int = 0,
    n_pruned: int = 5,
    corrupted: str | None = None,
) -> BackselectHeatmapResult:
    """Fig. 3: parent, ``n_pruned`` pruned nets of growing ratio, separate net.

    ``corrupted`` selects a corruption name to draw the probe images from
    (Appendix C.1.2); ``None`` uses nominal test images.
    """
    suite = make_suite(task_name, scale)
    normalizer = suite.normalizer()
    if corrupted is None:
        test = suite.test_set()
    else:
        test = suite.corrupted_test_set(corrupted, scale.severity)
    images = normalizer(test.images[: scale.backselect_images])
    labels = test.labels[: scale.backselect_images]

    spec = ZooSpec(task_name, model_name, method_name, repetition)
    run = get_prune_run(spec, scale)

    models, names = [], []
    parent = make_model(spec, suite, scale)
    parent.load_state_dict(run.parent_state)
    models.append(parent)
    names.append("parent (PR=0)")

    k = len(run.checkpoints)
    picks = np.unique(np.linspace(0, k - 1, min(n_pruned, k)).round().astype(int))
    for idx in picks:
        pruned = make_model(spec, suite, scale)
        pruned.load_state_dict(run.checkpoints[idx].state)
        models.append(pruned)
        names.append(f"PR={run.checkpoints[idx].achieved_ratio:.2f}")

    sep_spec = ZooSpec(task_name, model_name, None, repetition + 1)
    separate = make_model(sep_spec, suite, scale)
    separate.load_state_dict(get_parent_state(sep_spec, scale))
    models.append(separate)
    names.append("separate")

    heat = cross_model_confidence_matrix(
        models,
        images,
        labels,
        keep_fraction=scale.backselect_keep_fraction,
        pixels_per_step=scale.backselect_pixels_per_step,
    )
    return BackselectHeatmapResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        labels=names,
        heatmap=heat,
    )
