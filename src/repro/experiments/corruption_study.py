"""Corruption experiments: per-corruption prune potential (Fig. 6b/6e, 7,
Appendix D.2/D.3) and the difference in excess error (Fig. 6c/6f, D.5).

The (repetition × distribution) evaluation grid is embarrassingly
parallel, so the cells are dispatched through :mod:`repro.parallel`;
``jobs`` (or ``REPRO_NUM_WORKERS``) controls the fan-out and ``jobs=1``
reproduces the serial path bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import observe
from repro.analysis.prune_potential import PruneAccuracyCurve, evaluate_curve
from repro.analysis.regression import bootstrap_slope_ci, ols_slope_through_origin
from repro.data.corruptions import available_corruptions
from repro.data.datasets import Dataset, TaskSuite
from repro.experiments.config import ExperimentScale
from repro.experiments.grid import (
    dependency_failure,
    dispatch_cells,
    failed_repetitions,
    persist_manifest,
)
from repro.experiments.memo import memoize
from repro.pruning import canonical_spec
from repro.experiments.zoo import (
    ZooSpec,
    build_zoo,
    cached_suite,
    get_prune_run,
    make_model,
    make_suite,
)
from repro.parallel import CellTiming, GridTiming, resolve_jobs, stopwatch

# A distribution spec is a compact, picklable recipe for one evaluation
# set: ("nominal",), ("shifted",), or ("corruption", name, severity).
DistributionSpec = tuple


def distribution_specs(
    suite: TaskSuite,
    scale: ExperimentScale,
    corruptions: Sequence[str] | None = None,
    include_shifted: bool = True,
) -> list[tuple[str, DistributionSpec]]:
    """Named evaluation distributions: nominal + shifted + corruptions."""
    names = list(corruptions) if corruptions is not None else available_corruptions()
    specs: list[tuple[str, DistributionSpec]] = [("nominal", ("nominal",))]
    if include_shifted and not suite.is_segmentation:
        specs.append(("shifted", ("shifted",)))
    specs.extend((n, ("corruption", n, scale.severity)) for n in names)
    return specs


def _distribution_dataset(suite: TaskSuite, dist_spec: DistributionSpec) -> Dataset:
    kind = dist_spec[0]
    if kind == "nominal":
        return suite.test_set()
    if kind == "shifted":
        return suite.shifted_test_set()
    if kind == "corruption":
        _, name, severity = dist_spec
        return suite.corrupted_test_set(name, severity)
    raise ValueError(f"unknown distribution spec {dist_spec!r}")


def corruption_datasets(
    suite: TaskSuite,
    scale: ExperimentScale,
    corruptions: Sequence[str] | None = None,
    include_shifted: bool = True,
) -> dict[str, Dataset]:
    """Named evaluation distributions as materialized datasets."""
    return {
        name: _distribution_dataset(suite, spec)
        for name, spec in distribution_specs(suite, scale, corruptions, include_shifted)
    }


def _curve_cell(payload) -> tuple[int, str, PruneAccuracyCurve, CellTiming]:
    """Evaluate one (repetition, distribution) grid cell (worker-side)."""
    task_name, model_name, method_name, scale, robust, rep, name, dist_spec = payload
    t0 = time.perf_counter()
    with observe.span(
        "eval_cell", grid="corruption", rep=rep, distribution=name
    ):
        suite = cached_suite(task_name, scale)
        dataset = _distribution_dataset(suite, dist_spec)
        spec = ZooSpec(task_name, model_name, method_name, rep, robust)
        run = get_prune_run(spec, scale)
        model = make_model(spec, suite, scale)
        curve = evaluate_curve(run, model, dataset, suite.normalizer())
    observe.incr("eval.cells")
    timing = CellTiming(
        key=f"rep{rep}/{name}", seconds=time.perf_counter() - t0
    )
    return rep, name, curve, timing


def _evaluate_grid(
    label: str,
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    robust: bool,
    named_specs: list[tuple[str, DistributionSpec]],
    jobs: int | None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> tuple[dict[tuple[int, str], PruneAccuracyCurve], GridTiming]:
    """Build required artifacts, then fan the evaluation cells out.

    With ``on_error="collect"`` the grid degrades instead of aborting:
    repetitions whose zoo artifact died are skipped as ``dependency``
    failures (their eval cells would just retrain the dead artifact
    inline), dead eval cells leave holes in the returned curve dict, and
    one manifest covering the zoo and eval phases is persisted.
    """
    failures = []
    with stopwatch() as elapsed:
        zoo_specs = [
            ZooSpec(task_name, model_name, method_name, rep, robust)
            for rep in range(scale.n_repetitions)
        ]
        zoo_timing = build_zoo(
            zoo_specs, scale, jobs=jobs,
            on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
            executor=executor, queue_dir=queue_dir,
        )
        failures += zoo_timing.failures
        dead_reps = failed_repetitions(zoo_timing)
        payloads, keys = [], []
        for index, (rep, (name, dist_spec)) in enumerate(
            (rep, named)
            for rep in range(scale.n_repetitions)
            for named in named_specs
        ):
            key = f"rep{rep}/{name}"
            if rep in dead_reps:
                failures.append(dependency_failure(key, index, f"zoo repetition {rep}"))
                continue
            payloads.append(
                (task_name, model_name, method_name, scale, robust, rep, name, dist_spec)
            )
            keys.append(key)
        results, eval_failures = dispatch_cells(
            _curve_cell, payloads, keys, jobs=jobs,
            on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
            executor=executor, queue_dir=queue_dir,
        )
        failures += eval_failures
        wall = elapsed()
    cells = [r for r in results if r is not None]
    curves = {(rep, name): curve for rep, name, curve, _ in cells}
    total = len(zoo_timing.cells) + len(zoo_timing.failures)
    total += scale.n_repetitions * len(named_specs)
    manifest_path = persist_manifest(label, failures, total, scale)
    timing = GridTiming(
        label=label,
        jobs=resolve_jobs(jobs),
        wall_seconds=wall,
        cells=zoo_timing.cells + [t for *_, t in cells],
        failures=failures,
        manifest_path=manifest_path,
    ).record()
    return curves, timing


@dataclass
class CorruptionPotentialResult:
    """Prune potential per distribution (Fig. 6b/6e bars)."""

    task_name: str
    model_name: str
    method_name: str
    distributions: list[str]
    potentials: np.ndarray  # (R, D)
    curves: dict[str, list[PruneAccuracyCurve]]  # per distribution, per rep
    timing: GridTiming | None = None

    @property
    def mean(self) -> np.ndarray:
        return self.potentials.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        return self.potentials.std(axis=0)

    def potential_of(self, distribution: str) -> np.ndarray:
        return self.potentials[:, self.distributions.index(distribution)]


@memoize(
    ignore=("jobs", "max_retries", "cell_timeout", "executor", "queue_dir"),
    normalize={"method_name": canonical_spec},
)
def corruption_potential_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    corruptions: Sequence[str] | None = None,
    robust: bool = False,
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> CorruptionPotentialResult:
    """Prune potential on nominal, shifted, and every corrupted test set.

    Under ``on_error="collect"`` a failed cell becomes a NaN in
    ``potentials`` and a ``None`` hole in its ``curves`` list (keeping
    the per-repetition indices aligned); the failures live on
    ``timing.failures``.
    """
    suite = make_suite(task_name, scale)
    named_specs = distribution_specs(suite, scale, corruptions)
    names = [n for n, _ in named_specs]
    grid, timing = _evaluate_grid(
        f"corruption_potential[{task_name}/{model_name}/{method_name}]",
        task_name, model_name, method_name, scale, robust, named_specs, jobs,
        on_error, max_retries, cell_timeout, executor, queue_dir,
    )
    potentials = np.full((scale.n_repetitions, len(names)), np.nan)
    curves: dict[str, list[PruneAccuracyCurve]] = {n: [] for n in names}
    for rep in range(scale.n_repetitions):
        for di, dist_name in enumerate(names):
            curve = grid.get((rep, dist_name))
            curves[dist_name].append(curve)
            if curve is not None:
                potentials[rep, di] = curve.potential(scale.delta)
    return CorruptionPotentialResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        distributions=names,
        potentials=potentials,
        curves=curves,
        timing=timing,
    )


@dataclass
class SeveritySweepResult:
    """Prune potential per corruption severity level (an ablation on the
    paper's fixed choice of severity 3)."""

    task_name: str
    model_name: str
    method_name: str
    corruption: str
    severities: tuple[int, ...]
    potentials: np.ndarray  # (R, S)
    timing: GridTiming | None = None

    @property
    def mean(self) -> np.ndarray:
        return self.potentials.mean(axis=0)


@memoize(
    ignore=("jobs", "max_retries", "cell_timeout", "executor", "queue_dir"),
    normalize={"method_name": canonical_spec},
)
def severity_sweep_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    corruption: str = "gaussian_noise",
    severities: tuple[int, ...] = (1, 2, 3, 4, 5),
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> SeveritySweepResult:
    """Prune potential of one corruption across severity levels."""
    named_specs = [
        (f"{corruption}@{severity}", ("corruption", corruption, severity))
        for severity in severities
    ]
    grid, timing = _evaluate_grid(
        f"severity_sweep[{task_name}/{model_name}/{method_name}/{corruption}]",
        task_name, model_name, method_name, scale, False, named_specs, jobs,
        on_error, max_retries, cell_timeout, executor, queue_dir,
    )
    potentials = np.full((scale.n_repetitions, len(severities)), np.nan)
    for rep in range(scale.n_repetitions):
        for si, (name, _) in enumerate(named_specs):
            curve = grid.get((rep, name))
            if curve is not None:
                potentials[rep, si] = curve.potential(scale.delta)
    return SeveritySweepResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        corruption=corruption,
        severities=tuple(severities),
        potentials=potentials,
        timing=timing,
    )


@dataclass
class ExcessErrorStudyResult:
    """Difference in excess error with its OLS fit (Fig. 6c/6f)."""

    task_name: str
    model_name: str
    method_name: str
    ratios: np.ndarray  # (K,)
    differences: np.ndarray  # (R, K)
    slope: float
    slope_ci: tuple[float, float]
    timing: GridTiming | None = None


def corruption_excess_error_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    corruptions: Sequence[str] | None = None,
    robust: bool = False,
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> ExcessErrorStudyResult:
    """``ê − e`` per prune ratio, averaged over the corruption suite.

    Built from the (memoized) per-distribution curves of
    :func:`corruption_potential_experiment`, so sharing a bench process with
    the potential experiments costs no extra model evaluations.  A degraded
    base grid contributes only its complete repetitions (every needed curve
    present); with none left the study cannot be fit and raises.
    """
    base = corruption_potential_experiment(
        task_name, model_name, method_name, scale,
        corruptions=corruptions, robust=robust, jobs=jobs,
        on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
        executor=executor, queue_dir=queue_dir,
    )
    corruption_names = [
        n for n in base.distributions if n not in ("nominal", "shifted")
    ]
    all_ratios, all_diffs = [], []
    for rep in range(scale.n_repetitions):
        nominal_curve = base.curves["nominal"][rep]
        rep_curves = [base.curves[n][rep] for n in corruption_names]
        if nominal_curve is None or any(c is None for c in rep_curves):
            continue
        ood_errors = np.mean([c.errors for c in rep_curves], axis=0)
        ood_parent = float(np.mean([c.parent_error for c in rep_curves]))
        parent_excess = ood_parent - nominal_curve.parent_error
        all_ratios.append(nominal_curve.ratios)
        all_diffs.append((ood_errors - nominal_curve.errors) - parent_excess)

    if not all_ratios:
        raise RuntimeError(
            f"corruption_excess_error[{task_name}/{model_name}/{method_name}]: "
            "no complete repetition survived the degraded base grid "
            f"(manifest: {base.timing.manifest_path if base.timing else None})"
        )
    ratios = np.mean(all_ratios, axis=0)
    diffs = np.array(all_diffs)
    x = np.tile(ratios, diffs.shape[0])
    y = diffs.reshape(-1)
    slope = ols_slope_through_origin(x, y)
    ci = bootstrap_slope_ci(x, y, rng=scale.base_seed)
    return ExcessErrorStudyResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        ratios=ratios,
        differences=diffs,
        slope=slope,
        slope_ci=ci,
        timing=base.timing,
    )
