"""Corruption experiments: per-corruption prune potential (Fig. 6b/6e, 7,
Appendix D.2/D.3) and the difference in excess error (Fig. 6c/6f, D.5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.prune_potential import PruneAccuracyCurve, evaluate_curve
from repro.analysis.regression import bootstrap_slope_ci, ols_slope_through_origin
from repro.data.corruptions import available_corruptions
from repro.data.datasets import Dataset, TaskSuite
from repro.experiments.config import ExperimentScale
from repro.experiments.memo import memoize
from repro.experiments.zoo import ZooSpec, get_prune_run, make_model, make_suite


def corruption_datasets(
    suite: TaskSuite,
    scale: ExperimentScale,
    corruptions: Sequence[str] | None = None,
    include_shifted: bool = True,
) -> dict[str, Dataset]:
    """Named evaluation distributions: nominal + shifted + corruptions."""
    names = list(corruptions) if corruptions is not None else available_corruptions()
    out: dict[str, Dataset] = {"nominal": suite.test_set()}
    if include_shifted and not suite.is_segmentation:
        out["shifted"] = suite.shifted_test_set()
    for name in names:
        out[name] = suite.corrupted_test_set(name, scale.severity)
    return out


@dataclass
class CorruptionPotentialResult:
    """Prune potential per distribution (Fig. 6b/6e bars)."""

    task_name: str
    model_name: str
    method_name: str
    distributions: list[str]
    potentials: np.ndarray  # (R, D)
    curves: dict[str, list[PruneAccuracyCurve]]  # per distribution, per rep

    @property
    def mean(self) -> np.ndarray:
        return self.potentials.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        return self.potentials.std(axis=0)

    def potential_of(self, distribution: str) -> np.ndarray:
        return self.potentials[:, self.distributions.index(distribution)]


@memoize
def corruption_potential_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    corruptions: Sequence[str] | None = None,
    robust: bool = False,
) -> CorruptionPotentialResult:
    """Prune potential on nominal, shifted, and every corrupted test set."""
    suite = make_suite(task_name, scale)
    normalizer = suite.normalizer()
    datasets = corruption_datasets(suite, scale, corruptions)
    names = list(datasets)
    potentials = np.zeros((scale.n_repetitions, len(names)))
    curves: dict[str, list[PruneAccuracyCurve]] = {n: [] for n in names}
    for rep in range(scale.n_repetitions):
        spec = ZooSpec(task_name, model_name, method_name, rep, robust)
        run = get_prune_run(spec, scale)
        model = make_model(spec, suite, scale)
        for di, dist_name in enumerate(names):
            curve = evaluate_curve(run, model, datasets[dist_name], normalizer)
            curves[dist_name].append(curve)
            potentials[rep, di] = curve.potential(scale.delta)
    return CorruptionPotentialResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        distributions=names,
        potentials=potentials,
        curves=curves,
    )


@dataclass
class SeveritySweepResult:
    """Prune potential per corruption severity level (an ablation on the
    paper's fixed choice of severity 3)."""

    task_name: str
    model_name: str
    method_name: str
    corruption: str
    severities: tuple[int, ...]
    potentials: np.ndarray  # (R, S)

    @property
    def mean(self) -> np.ndarray:
        return self.potentials.mean(axis=0)


@memoize
def severity_sweep_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    corruption: str = "gaussian_noise",
    severities: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> SeveritySweepResult:
    """Prune potential of one corruption across severity levels."""
    suite = make_suite(task_name, scale)
    normalizer = suite.normalizer()
    potentials = np.zeros((scale.n_repetitions, len(severities)))
    for rep in range(scale.n_repetitions):
        spec = ZooSpec(task_name, model_name, method_name, rep)
        run = get_prune_run(spec, scale)
        model = make_model(spec, suite, scale)
        for si, severity in enumerate(severities):
            dataset = suite.corrupted_test_set(corruption, severity)
            curve = evaluate_curve(run, model, dataset, normalizer)
            potentials[rep, si] = curve.potential(scale.delta)
    return SeveritySweepResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        corruption=corruption,
        severities=tuple(severities),
        potentials=potentials,
    )


@dataclass
class ExcessErrorStudyResult:
    """Difference in excess error with its OLS fit (Fig. 6c/6f)."""

    task_name: str
    model_name: str
    method_name: str
    ratios: np.ndarray  # (K,)
    differences: np.ndarray  # (R, K)
    slope: float
    slope_ci: tuple[float, float]


def corruption_excess_error_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    corruptions: Sequence[str] | None = None,
    robust: bool = False,
) -> ExcessErrorStudyResult:
    """``ê − e`` per prune ratio, averaged over the corruption suite.

    Built from the (memoized) per-distribution curves of
    :func:`corruption_potential_experiment`, so sharing a bench process with
    the potential experiments costs no extra model evaluations.
    """
    base = corruption_potential_experiment(
        task_name, model_name, method_name, scale,
        corruptions=tuple(corruptions) if corruptions is not None else None,
        robust=robust,
    )
    corruption_names = [
        n for n in base.distributions if n not in ("nominal", "shifted")
    ]
    all_ratios, all_diffs = [], []
    for rep in range(scale.n_repetitions):
        nominal_curve = base.curves["nominal"][rep]
        ood_errors = np.mean(
            [base.curves[n][rep].errors for n in corruption_names], axis=0
        )
        ood_parent = float(
            np.mean([base.curves[n][rep].parent_error for n in corruption_names])
        )
        parent_excess = ood_parent - nominal_curve.parent_error
        all_ratios.append(nominal_curve.ratios)
        all_diffs.append((ood_errors - nominal_curve.errors) - parent_excess)

    ratios = np.mean(all_ratios, axis=0)
    diffs = np.array(all_diffs)
    x = np.tile(ratios, diffs.shape[0])
    y = diffs.reshape(-1)
    slope = ols_slope_through_origin(x, y)
    ci = bootstrap_slope_ci(x, y, rng=scale.base_seed)
    return ExcessErrorStudyResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        ratios=ratios,
        differences=diffs,
        slope=slope,
        slope_ci=ci,
    )
