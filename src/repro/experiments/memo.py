"""In-process memoization for experiment entry points.

Benches compose experiments (e.g. the overparameterization table reuses the
corruption-potential curves), so top-level experiment functions are memoized
for the lifetime of the process.  Arguments are normalized recursively —
lists/tuples become tuples, dicts and sets become sorted tuples — so e.g. a
``corruptions`` list and the equal tuple hit the same cache entry instead of
silently missing.  Anything else must be hashable (``ExperimentScale`` is a
frozen dataclass).

Execution knobs that cannot change the result (``jobs``, the worker count)
are excluded from the key via ``memoize(ignore=...)``: re-running an
experiment with a different parallelism must hit the cache.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Mapping, TypeVar

F = TypeVar("F", bound=Callable)


def _normalize(value):
    """Recursively convert containers into hashable, order-canonical keys."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        # Tag the shape so {"a": 1} and (("a", 1),) cannot collide.
        return ("__dict__", tuple(sorted(
            ((k, _normalize(v)) for k, v in value.items()), key=repr
        )))
    if isinstance(value, (set, frozenset)):
        return ("__set__", tuple(sorted((_normalize(v) for v in value), key=repr)))
    return value


def cache_key(args: tuple, kwargs: dict, ignore: tuple[str, ...] = ()) -> tuple:
    """The memoization key for one call: normalized args + sorted kwargs.

    Exposed separately from :func:`memoize` so the key can be inspected and
    regression-tested: it must be a pure function of the call's values —
    stable across processes and sessions — or process-parallel experiment
    grids would silently recompute (or worse, collide on) cells.
    """
    return (
        tuple(_normalize(a) for a in args),
        tuple(sorted(
            (k, _normalize(v)) for k, v in kwargs.items() if k not in ignore
        )),
    )


def memoize(
    fn: F | None = None,
    *,
    ignore: tuple[str, ...] = (),
    normalize: Mapping[str, Callable] | None = None,
) -> F:
    """Cache results keyed by :func:`cache_key` over the call's arguments.

    ``ignore`` names keyword arguments left out of the cache key (pass
    result-neutral knobs like ``jobs`` there as keywords, not
    positionally).

    ``normalize`` maps parameter names to canonicalizers applied before
    keying *and* before the call — e.g. a pruning-method spec string is
    rewritten to its canonical form, so ``"WT(steps=1)"`` and ``"wt"``
    share one cache entry (and one result label) instead of recomputing.
    """
    if fn is None:
        return functools.partial(  # type: ignore[return-value]
            memoize, ignore=ignore, normalize=normalize
        )
    cache: dict = {}
    sig = inspect.signature(fn) if normalize else None

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        # Lazy import: repro.experiments re-exports through packages that
        # may still be initializing when memoized functions are defined.
        from repro import observe

        if normalize:
            bound = sig.bind(*args, **kwargs)
            for name, canon in normalize.items():
                if name in bound.arguments:
                    bound.arguments[name] = canon(bound.arguments[name])
            args, kwargs = bound.args, bound.kwargs
        key = cache_key(args, kwargs, ignore)
        if key not in cache:
            observe.incr("memo.miss", fn=fn.__name__)
            result = fn(*args, **kwargs)
            # A degraded grid (its timing carries failures, its arrays NaN
            # holes) must not be pinned for the process lifetime: a retry
            # in the same process — e.g. after resuming the failed zoo
            # cells — should recompute, not replay the holes.
            timing = getattr(result, "timing", None)
            if timing is not None and getattr(timing, "degraded", False):
                observe.incr("memo.degraded_skip", fn=fn.__name__)
                return result
            cache[key] = result
        else:
            observe.incr("memo.hit", fn=fn.__name__)
        return cache[key]

    wrapper.cache_clear = cache.clear  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]
