"""In-process memoization for experiment entry points.

Benches compose experiments (e.g. the overparameterization table reuses the
corruption-potential curves), so top-level experiment functions are memoized
for the lifetime of the process.  Arguments are normalized — lists become
tuples — and must otherwise be hashable (``ExperimentScale`` is a frozen
dataclass).
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def _normalize(value):
    if isinstance(value, list):
        return tuple(value)
    return value


def memoize(fn: F) -> F:
    """Cache results keyed by normalized positional + keyword arguments."""
    cache: dict = {}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        key = (
            tuple(_normalize(a) for a in args),
            tuple(sorted((k, _normalize(v)) for k, v in kwargs.items())),
        )
        if key not in cache:
            cache[key] = fn(*args, **kwargs)
        return cache[key]

    wrapper.cache_clear = cache.clear  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]
