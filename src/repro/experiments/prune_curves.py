"""Prune-accuracy curves and PR/FR summaries (Fig. 2/9/10/11, Tables 4/6/8).

Repetitions are independent, so the per-repetition cells (curve + FLOP
accounting) dispatch through :mod:`repro.parallel` under a ``jobs`` knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import observe
from repro.analysis.prune_potential import prune_potential_from_curve
from repro.experiments.config import ExperimentScale
from repro.experiments.grid import (
    dependency_failure,
    dispatch_cells,
    failed_repetitions,
    persist_manifest,
)
from repro.experiments.memo import memoize
from repro.experiments.zoo import (
    ZooSpec,
    build_zoo,
    cached_suite,
    get_prune_run,
    make_model,
    make_suite,
)
from repro.nn.flops import count_flops
from repro.nn.module import preserve_state
from repro.parallel import CellTiming, GridTiming, resolve_jobs, stopwatch
from repro.pruning import canonical_spec
from repro.pruning.pipeline import PruneRun
from repro.verify import runtime as verify_runtime


@dataclass
class PruneCurveResult:
    """Prune-accuracy curve of one (task, model, method) over repetitions."""

    task_name: str
    model_name: str
    method_name: str
    ratios: np.ndarray  # (K,) mean achieved ratios over repetitions
    errors: np.ndarray  # (R, K) nominal test error per repetition/checkpoint
    parent_errors: np.ndarray  # (R,)
    flop_reductions: np.ndarray  # (R, K)
    timing: GridTiming | None = None

    @property
    def error_mean(self) -> np.ndarray:
        return self.errors.mean(axis=0)

    @property
    def error_std(self) -> np.ndarray:
        return self.errors.std(axis=0)

    @property
    def accuracy_drop(self) -> np.ndarray:
        """Mean (error - parent error) per checkpoint, the Fig. 9 y-axis."""
        return (self.errors - self.parent_errors[:, None]).mean(axis=0)


def _flop_reductions(
    run: PruneRun, spec: ZooSpec, scale: ExperimentScale
) -> np.ndarray:
    suite = cached_suite(spec.task_name, scale)
    model = make_model(spec, suite, scale)
    with preserve_state(model):
        model.load_state_dict(run.parent_state)
        base = count_flops(model, suite.input_shape)
        out = []
        for ckpt in run.checkpoints:
            model.load_state_dict(ckpt.state)
            out.append(1.0 - count_flops(model, suite.input_shape) / base)
    return np.array(out)


def _rep_cell(payload):
    """Load one repetition's run and account its FLOPs (worker-side)."""
    task_name, model_name, method_name, scale, robust, rep = payload
    t0 = time.perf_counter()
    with observe.span("eval_cell", grid="prune_curve", rep=rep):
        spec = ZooSpec(task_name, model_name, method_name, rep, robust)
        run = get_prune_run(spec, scale)
        frs = _flop_reductions(run, spec, scale)
    observe.incr("eval.cells")
    timing = CellTiming(key=f"rep{rep}", seconds=time.perf_counter() - t0)
    return run.ratios, run.test_errors, run.parent_test_error, frs, timing


@memoize(
    ignore=("jobs", "max_retries", "cell_timeout", "executor", "queue_dir"),
    normalize={"method_name": canonical_spec},
)
def prune_curve_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    robust: bool = False,
    *,
    jobs: int | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> PruneCurveResult:
    """Build (or load) all repetitions and collect the nominal curve.

    Under ``on_error="collect"`` a failed repetition becomes a NaN row
    in ``errors``/``flop_reductions`` (and a NaN ``parent_errors``
    entry); at least one repetition must survive or the curve cannot be
    assembled and the experiment raises.
    """
    label = f"prune_curve[{task_name}/{model_name}/{method_name}]"
    failures = []
    with stopwatch() as elapsed:
        zoo_specs = [
            ZooSpec(task_name, model_name, method_name, rep, robust)
            for rep in range(scale.n_repetitions)
        ]
        zoo_timing = build_zoo(
            zoo_specs, scale, jobs=jobs,
            on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
            executor=executor, queue_dir=queue_dir,
        )
        failures += zoo_timing.failures
        dead_reps = failed_repetitions(zoo_timing)
        payloads, keys = [], []
        for rep in range(scale.n_repetitions):
            if rep in dead_reps:
                failures.append(
                    dependency_failure(f"rep{rep}", rep, f"zoo repetition {rep}")
                )
                continue
            payloads.append((task_name, model_name, method_name, scale, robust, rep))
            keys.append(f"rep{rep}")
        results, eval_failures = dispatch_cells(
            _rep_cell, payloads, keys, jobs=jobs,
            on_error=on_error, max_retries=max_retries, cell_timeout=cell_timeout,
            executor=executor, queue_dir=queue_dir,
        )
        failures += eval_failures
        wall = elapsed()
    rep_cells = {
        payload[-1]: cell
        for payload, cell in zip(payloads, results)
        if cell is not None
    }
    if not rep_cells:
        raise RuntimeError(
            f"{label}: every repetition failed; see the failure manifest"
        )
    n_ckpt = len(next(iter(rep_cells.values()))[0])
    ratios = np.mean([rep_cells[r][0] for r in sorted(rep_cells)], axis=0)
    errors = np.full((scale.n_repetitions, n_ckpt), np.nan)
    parents = np.full(scale.n_repetitions, np.nan)
    frs = np.full((scale.n_repetitions, n_ckpt), np.nan)
    for rep, cell in rep_cells.items():
        errors[rep] = cell[1]
        parents[rep] = cell[2]
        frs[rep] = cell[3]
    total = len(zoo_timing.cells) + len(zoo_timing.failures) + scale.n_repetitions
    manifest_path = persist_manifest(label, failures, total, scale)
    result = PruneCurveResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        ratios=ratios,
        errors=errors,
        parent_errors=parents,
        flop_reductions=frs,
        timing=GridTiming(
            label=label,
            jobs=resolve_jobs(jobs),
            wall_seconds=wall,
            cells=zoo_timing.cells + [c[4] for c in rep_cells.values()],
            failures=failures,
            manifest_path=manifest_path,
        ).record(),
    )
    if not failures:
        # The runtime oracles assume a complete grid; NaN rows from a
        # degraded run would trip them spuriously.
        verify_runtime.verify_curve_result(result)
    return result


@dataclass
class PruneSummaryRow:
    """One row of Table 4/6/8: best commensurate-accuracy operating point."""

    model_name: str
    method_name: str
    orig_error: float
    error_delta: float  # pruned error - original error at the chosen point
    prune_ratio: float  # PR (%)
    flop_reduction: float  # FR (%)
    commensurate: bool = field(default=True)


def prune_summary_row(
    result: PruneCurveResult, delta: float = 0.005
) -> PruneSummaryRow:
    """The maximal PR (and its FR) with error within ``delta`` of the parent.

    Falls back to the closest-error checkpoint when no checkpoint is
    commensurate, as the paper's table captions describe.
    """
    err_mean = result.error_mean
    parent = float(result.parent_errors.mean())
    ok = err_mean <= parent + delta
    if ok.any():
        idx = int(np.where(ok)[0].max())
        commensurate = True
    else:
        idx = int(np.argmin(err_mean))
        commensurate = False
    return PruneSummaryRow(
        model_name=result.model_name,
        method_name=result.method_name,
        orig_error=parent,
        error_delta=float(err_mean[idx] - parent),
        prune_ratio=float(result.ratios[idx]),
        flop_reduction=float(result.flop_reductions.mean(axis=0)[idx]),
        commensurate=commensurate,
    )


def nominal_potential(result: PruneCurveResult, delta: float = 0.005) -> np.ndarray:
    """Per-repetition prune potential on the nominal test distribution."""
    return np.array(
        [
            prune_potential_from_curve(
                result.ratios, result.errors[r], result.parent_errors[r], delta
            )
            for r in range(result.errors.shape[0])
        ]
    )
