"""Prune-accuracy curves and PR/FR summaries (Fig. 2/9/10/11, Tables 4/6/8).

Repetitions are independent, so the per-repetition cells (curve + FLOP
accounting) dispatch through :mod:`repro.parallel` under a ``jobs`` knob.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import observe
from repro.analysis.prune_potential import prune_potential_from_curve
from repro.experiments.config import ExperimentScale
from repro.experiments.memo import memoize
from repro.experiments.zoo import (
    ZooSpec,
    build_zoo,
    cached_suite,
    get_prune_run,
    make_model,
    make_suite,
)
from repro.nn.flops import count_flops
from repro.nn.module import preserve_state
from repro.parallel import CellTiming, GridTiming, parallel_map, resolve_jobs, stopwatch
from repro.pruning.pipeline import PruneRun
from repro.verify import runtime as verify_runtime


@dataclass
class PruneCurveResult:
    """Prune-accuracy curve of one (task, model, method) over repetitions."""

    task_name: str
    model_name: str
    method_name: str
    ratios: np.ndarray  # (K,) mean achieved ratios over repetitions
    errors: np.ndarray  # (R, K) nominal test error per repetition/checkpoint
    parent_errors: np.ndarray  # (R,)
    flop_reductions: np.ndarray  # (R, K)
    timing: GridTiming | None = None

    @property
    def error_mean(self) -> np.ndarray:
        return self.errors.mean(axis=0)

    @property
    def error_std(self) -> np.ndarray:
        return self.errors.std(axis=0)

    @property
    def accuracy_drop(self) -> np.ndarray:
        """Mean (error - parent error) per checkpoint, the Fig. 9 y-axis."""
        return (self.errors - self.parent_errors[:, None]).mean(axis=0)


def _flop_reductions(
    run: PruneRun, spec: ZooSpec, scale: ExperimentScale
) -> np.ndarray:
    suite = cached_suite(spec.task_name, scale)
    model = make_model(spec, suite, scale)
    with preserve_state(model):
        model.load_state_dict(run.parent_state)
        base = count_flops(model, suite.input_shape)
        out = []
        for ckpt in run.checkpoints:
            model.load_state_dict(ckpt.state)
            out.append(1.0 - count_flops(model, suite.input_shape) / base)
    return np.array(out)


def _rep_cell(payload):
    """Load one repetition's run and account its FLOPs (worker-side)."""
    task_name, model_name, method_name, scale, robust, rep = payload
    t0 = time.perf_counter()
    with observe.span("eval_cell", grid="prune_curve", rep=rep):
        spec = ZooSpec(task_name, model_name, method_name, rep, robust)
        run = get_prune_run(spec, scale)
        frs = _flop_reductions(run, spec, scale)
    observe.incr("eval.cells")
    timing = CellTiming(key=f"rep{rep}", seconds=time.perf_counter() - t0)
    return run.ratios, run.test_errors, run.parent_test_error, frs, timing


@memoize(ignore=("jobs",))
def prune_curve_experiment(
    task_name: str,
    model_name: str,
    method_name: str,
    scale: ExperimentScale,
    robust: bool = False,
    *,
    jobs: int | None = None,
) -> PruneCurveResult:
    """Build (or load) all repetitions and collect the nominal curve."""
    with stopwatch() as elapsed:
        zoo_specs = [
            ZooSpec(task_name, model_name, method_name, rep, robust)
            for rep in range(scale.n_repetitions)
        ]
        zoo_timing = build_zoo(zoo_specs, scale, jobs=jobs)
        cells = parallel_map(
            _rep_cell,
            [
                (task_name, model_name, method_name, scale, robust, rep)
                for rep in range(scale.n_repetitions)
            ],
            jobs=jobs,
        )
        wall = elapsed()
    ratios = [c[0] for c in cells]
    errors = [c[1] for c in cells]
    parents = [c[2] for c in cells]
    frs = [c[3] for c in cells]
    result = PruneCurveResult(
        task_name=task_name,
        model_name=model_name,
        method_name=method_name,
        ratios=np.mean(ratios, axis=0),
        errors=np.array(errors),
        parent_errors=np.array(parents),
        flop_reductions=np.array(frs),
        timing=GridTiming(
            label=f"prune_curve[{task_name}/{model_name}/{method_name}]",
            jobs=resolve_jobs(jobs),
            wall_seconds=wall,
            cells=zoo_timing.cells + [c[4] for c in cells],
        ).record(),
    )
    verify_runtime.verify_curve_result(result)
    return result


@dataclass
class PruneSummaryRow:
    """One row of Table 4/6/8: best commensurate-accuracy operating point."""

    model_name: str
    method_name: str
    orig_error: float
    error_delta: float  # pruned error - original error at the chosen point
    prune_ratio: float  # PR (%)
    flop_reduction: float  # FR (%)
    commensurate: bool = field(default=True)


def prune_summary_row(
    result: PruneCurveResult, delta: float = 0.005
) -> PruneSummaryRow:
    """The maximal PR (and its FR) with error within ``delta`` of the parent.

    Falls back to the closest-error checkpoint when no checkpoint is
    commensurate, as the paper's table captions describe.
    """
    err_mean = result.error_mean
    parent = float(result.parent_errors.mean())
    ok = err_mean <= parent + delta
    if ok.any():
        idx = int(np.where(ok)[0].max())
        commensurate = True
    else:
        idx = int(np.argmin(err_mean))
        commensurate = False
    return PruneSummaryRow(
        model_name=result.model_name,
        method_name=result.method_name,
        orig_error=parent,
        error_delta=float(err_mean[idx] - parent),
        prune_ratio=float(result.ratios[idx]),
        flop_reduction=float(result.flop_reductions.mean(axis=0)[idx]),
        commensurate=commensurate,
    )


def nominal_potential(result: PruneCurveResult, delta: float = 0.005) -> np.ndarray:
    """Per-repetition prune potential on the nominal test distribution."""
    return np.array(
        [
            prune_potential_from_curve(
                result.ratios, result.errors[r], result.parent_errors[r], delta
            )
            for r in range(result.errors.shape[0])
        ]
    )
