"""Experiment harness: one entry point per paper table / figure.

Experiments are parameterized by an :class:`ExperimentScale` (``SMOKE`` for
benches/tests, ``FULL`` for longer runs) and share a disk-cached model zoo
so parents and prune runs are trained once and reused across artifacts.

See DESIGN.md §4 for the experiment index mapping paper artifacts to the
functions in this package.
"""

from repro.experiments.config import FULL, SMOKE, ExperimentScale
from repro.experiments.zoo import (
    ZooSpec,
    build_zoo,
    cached_suite,
    clear_cache,
    get_parent_state,
    get_prune_run,
    make_model,
    make_suite,
    make_trainer,
    parent_specs,
)
from repro.experiments.prune_curves import (
    PruneCurveResult,
    prune_curve_experiment,
    prune_summary_row,
)
from repro.experiments.noise_study import (
    noise_potential_experiment,
    noise_similarity_experiment,
)
from repro.experiments.similarity_study import backselect_heatmap_experiment
from repro.experiments.corruption_study import (
    corruption_excess_error_experiment,
    corruption_potential_experiment,
)
from repro.experiments.robust_study import (
    robust_excess_error_experiment,
    robust_potential_experiment,
)
from repro.experiments.summary_tables import overparam_table, pr_fr_table
from repro.experiments.delta_study import delta_sweep_experiment

__all__ = [
    "ExperimentScale",
    "SMOKE",
    "FULL",
    "ZooSpec",
    "build_zoo",
    "cached_suite",
    "make_suite",
    "make_model",
    "make_trainer",
    "get_parent_state",
    "get_prune_run",
    "parent_specs",
    "clear_cache",
    "PruneCurveResult",
    "prune_curve_experiment",
    "prune_summary_row",
    "noise_potential_experiment",
    "noise_similarity_experiment",
    "backselect_heatmap_experiment",
    "corruption_potential_experiment",
    "corruption_excess_error_experiment",
    "robust_potential_experiment",
    "robust_excess_error_experiment",
    "pr_fr_table",
    "overparam_table",
    "delta_sweep_experiment",
]
