""":func:`queue_map` — grid dispatch through the durable queue.

This is the ``executor="queue"`` backend of
:func:`repro.parallel.parallel_map`: the same (fn, items, keys) contract
and the same ``list`` / :class:`~repro.parallel.pool.MapOutcome` result
shapes, but the cells flow through a :class:`~repro.queue.core.WorkQueue`
on disk instead of an in-memory pool, which changes what survives:

- the **driver** can die and re-run: the queue directory is derived
  deterministically from the function path and the cell keys, so the
  restarted call re-attaches to the same journal, skips everything
  already ``done``, and loads published results instead of recomputing;
- **workers** can die (SIGKILL, OOM, host loss): their leases expire and
  the supervision loop reclaims them, respawning local workers while
  undone work remains;
- **extra hosts** can help: any ``python -m repro worker --queue <dir>``
  pointed at the shared directory drains the same grid.

``jobs=1`` runs one inline worker in the calling process — no
subprocess, no sleeps, fully driveable on a
:class:`~repro.serve.clock.VirtualClock` — which is both the debug path
and what tier-1 tests exercise.  ``jobs>1`` spawns local worker
processes and babysits them on the wall clock (tier-2 territory).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro import observe
from repro.parallel.pool import MapOutcome, WorkerError, resolve_jobs
from repro.queue.core import QUEUE_DIR_ENV, TaskSpec, WorkQueue
from repro.queue.worker import run_worker, task_fn_path
from repro.resilience.retry import resolve_max_retries
from repro.serve.clock import Clock


def resolve_queue_dir(
    queue_dir: str | Path | None,
    fn_path: str,
    keys: Sequence[str],
) -> Path:
    """Explicit arg > ``REPRO_QUEUE_DIR`` > a deterministic per-grid dir.

    The derived default hashes the function path and the sorted cell
    keys under ``<cache>/queue/``, so re-running the identical grid
    (same cells, same function) resumes its journal, while any change to
    the cell set gets a fresh queue.  Explicit directories are for
    multi-host runs, where every participant must name the same shared
    path.
    """
    if queue_dir is not None:
        return Path(queue_dir)
    env = os.environ.get(QUEUE_DIR_ENV, "").strip()
    if env:
        return Path(env)
    from repro.experiments.zoo import cache_dir

    digest = hashlib.sha256(
        "\n".join([fn_path, *sorted(keys)]).encode("utf-8")
    ).hexdigest()[:16]
    return cache_dir() / "queue" / f"grid-{digest}"


def _worker_env(directory: Path) -> dict[str, str]:
    """Subprocess environment: inherit everything (chaos spec, ledger
    path, cache dir all ride the environment) plus an import path that
    guarantees ``repro`` resolves in the child."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env[QUEUE_DIR_ENV] = str(directory)
    return env


def _spawn_worker(directory: Path, worker_id: str) -> subprocess.Popen:
    observe.incr("queue.workers_spawned")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--queue",
            str(directory),
            "--worker-id",
            worker_id,
        ],
        env=_worker_env(directory),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _supervise(
    queue: WorkQueue, jobs: int, poll_seconds: float, label: str
) -> None:
    """Run ``jobs`` local workers to drain ``queue``, respawning losses.

    The loop is intentionally dumb: reclaim expired leases, make sure
    ``jobs`` workers are alive while undone work remains, sleep, repeat.
    All the correctness lives in the journal — a worker SIGKILLed
    mid-lease needs no special handling here beyond the reclaim that
    every iteration already does.
    """
    workers: dict[str, subprocess.Popen] = {}
    spawn_seq = 0
    try:
        while not queue.drained():
            queue.reclaim_expired()
            for wid in list(workers):
                proc = workers[wid]
                if proc.poll() is not None:
                    del workers[wid]
                    if proc.returncode not in (0, None):
                        observe.incr("queue.worker_deaths")
                        observe.event(
                            "queue.worker_died",
                            worker=wid,
                            returncode=proc.returncode,
                            label=label,
                        )
            counts = queue.counts()
            undone = counts["pending"] + counts["leased"]
            if undone == 0:
                break
            while len(workers) < min(jobs, max(undone, 1)):
                spawn_seq += 1
                wid = f"{label}-w{spawn_seq}"
                workers[wid] = _spawn_worker(queue.directory, wid)
            queue.clock.sleep(poll_seconds)
    finally:
        for proc in workers.values():
            # Workers exit on their own once the queue drains; anything
            # still running when we leave (error paths) is terminated so
            # its lease expires and a future run reclaims cleanly.
            if proc.poll() is None:
                proc.terminate()
        for proc in workers.values():
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


def queue_map(
    fn: Callable,
    items: Iterable,
    jobs: int | None = None,
    *,
    keys: Sequence[str] | Callable | None = None,
    queue_dir: str | Path | None = None,
    clock: Clock | None = None,
    on_error: str = "raise",
    max_retries: int | None = None,
    lease_seconds: float | None = None,
    ordered: bool = True,
    poll_seconds: float = 0.5,
) -> list | MapOutcome:
    """Map ``fn`` over ``items`` through a durable on-disk work queue.

    Result-shape compatible with :func:`repro.parallel.parallel_map`
    (call it with ``executor="queue"`` rather than calling this
    directly).  ``max_retries`` maps onto the lease budget — a task may
    burn ``max_retries + 1`` leases before quarantine, mirroring the
    pool's "initial attempt plus N retries".  Timeouts are expressed by
    the lease itself: a worker that stops heartbeating forfeits the cell.

    At-least-once note: a cell may execute more than once (stale lease
    reclaimed from a live-but-slow worker).  That is safe for the
    experiment grids because every cell publishes through the memo
    layer's atomic, locked writes — duplicated work converges on
    identical artifacts.  Do not route non-idempotent functions here.
    """
    from repro.parallel.pool import _resolve_keys  # shared key semantics

    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    items = list(items)
    cell_keys = _resolve_keys(keys, items)
    if len(set(cell_keys)) != len(cell_keys):
        raise ValueError(
            "queue executor requires unique cell keys "
            "(keys are task identities in the journal)"
        )
    fn_path = task_fn_path(fn)
    directory = resolve_queue_dir(queue_dir, fn_path, cell_keys)
    max_leases = resolve_max_retries(max_retries) + 1
    queue = WorkQueue(
        directory,
        clock=clock,
        lease_seconds=lease_seconds,
        max_leases=max_leases,
    )
    jobs = resolve_jobs(jobs)

    with observe.span(
        "queue_map",
        items=len(items),
        jobs=jobs,
        directory=str(directory),
    ) as span:
        added = queue.enqueue(
            TaskSpec(key=key, fn=fn_path, payload=item)
            for key, item in zip(cell_keys, items)
        )
        resumed = len(items) - added
        if resumed:
            observe.incr("queue.resumed_tasks", value=resumed)
            observe.event(
                "queue.resume", directory=str(directory), already_known=resumed
            )
        if jobs == 1:
            # Inline worker: claims, heartbeats, and completions run in
            # this process on the injected clock.  Loop because the
            # inline worker can exhaust lease budgets only through
            # fail/quarantine, never by dying — one pass drains fully
            # unless quarantines end it early.
            run_worker(queue, poll_seconds=poll_seconds)
        else:
            _supervise(queue, jobs, poll_seconds, label=directory.name)
        queue.reclaim_expired()  # sweep leases orphaned at the very end

        index_of = {key: i for i, key in enumerate(cell_keys)}
        failures = queue.failures(index_of=lambda k: index_of.get(k, -1))
        failures = [f for f in failures if f.key in index_of]
        failures.sort(key=lambda f: f.index)
        results: list[Any] = [None] * len(items)
        missing: list[int] = []
        failed = {f.index for f in failures}
        for i, key in enumerate(cell_keys):
            if i in failed:
                continue
            if queue.has_result(key):
                results[i] = queue.load_result(key)
            else:
                missing.append(i)
        for i in missing:
            # Terminal-done without a result should be impossible (results
            # publish before ``done``), but a hand-deleted results dir or
            # cross-version journal must degrade, not silently hand back
            # ``None``.
            from repro.resilience.failures import KIND_CRASH, CellFailure

            failures.append(
                CellFailure(
                    key=cell_keys[i],
                    index=i,
                    kind=KIND_CRASH,
                    error_type="MissingResult",
                    message="task is done in the journal but its result "
                    "file is missing",
                    retryable=True,
                )
            )
        retries = max(0, queue.total_claims() - len(items))
        span.set(
            failed=len(failures),
            retries=retries,
            resumed=resumed,
        )

    if failures and on_error == "raise":
        first = min(failures, key=lambda f: f.index)
        raise WorkerError(
            f"queue task {first.key!r} failed with "
            f"{first.error_type}: {first.message}",
            first.remote_traceback,
        )
    if on_error == "collect":
        if not ordered:
            failed = {f.index for f in failures}
            return MapOutcome(
                results=[r for i, r in enumerate(results) if i not in failed],
                failures=failures,
                retries=retries,
            )
        return MapOutcome(results=results, failures=failures, retries=retries)
    return results
