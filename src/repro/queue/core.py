""":class:`WorkQueue` — the lease-based task state machine over the journal.

State per task (a pure fold over journal records)::

                 claim                    done
    pending  ───────────►  leased  ───────────►  done
       ▲                     │
       │   fail / reclaim    │  claims < max_leases
       └─────────────────────┤
                             │  claims >= max_leases
                             ▼
                        quarantined

- ``claim`` hands the oldest pending task to a worker with a lease that
  expires ``lease_seconds`` into the future; ``renew`` (the heartbeat)
  pushes the expiry out while the worker is alive and making progress.
- ``fail`` (the task function raised) and ``reclaim`` (the lease expired
  — worker crash, SIGKILL, host loss) return the task to pending, unless
  the task has already burned ``max_leases`` leases, in which case it is
  **quarantined** as poison: recorded with the failing error (or the
  lease loss), surfaced as a
  :class:`~repro.resilience.failures.CellFailure` so ``--resume``
  semantics carry over unchanged, and never dispatched again.
- ``complete`` is accepted even from an expired or reclaimed lease: the
  worker *did* publish its artifact through the atomic memo layer before
  calling, so the work exists and marking it done is strictly correct
  (at-least-once execution; the journal's first ``done`` wins).

Every mutation runs under one per-queue file lock: refresh state from the
journal's new records, apply, append.  Clocks are injectable
(:mod:`repro.serve.clock`); production uses the epoch wall clock so
expiries are comparable across hosts, tests use ``VirtualClock``.
"""

from __future__ import annotations

import os
import pickle
import socket
import zlib
from base64 import b64decode, b64encode
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro import observe
from repro.parallel.locks import FileLock, atomic_write
from repro.queue.journal import JOURNAL_NAME, Journal
from repro.resilience.failures import KIND_QUARANTINE, CellFailure
from repro.serve.clock import Clock, WallClock

QUEUE_DIR_ENV = "REPRO_QUEUE_DIR"
LEASE_SECONDS_ENV = "REPRO_LEASE_SECONDS"

#: Task states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"

_RESULTS_DIR = "results"


def resolve_lease_seconds(lease_seconds: float | None = None) -> float:
    """Explicit arg > ``REPRO_LEASE_SECONDS`` > 60 seconds."""
    if lease_seconds is None:
        raw = os.environ.get(LEASE_SECONDS_ENV, "").strip()
        if raw:
            try:
                lease_seconds = float(raw)
            except ValueError:
                raise ValueError(
                    f"{LEASE_SECONDS_ENV} must be a number, got {raw!r}"
                ) from None
        else:
            lease_seconds = 60.0
    lease_seconds = float(lease_seconds)
    if lease_seconds <= 0:
        raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
    return lease_seconds


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class TaskSpec:
    """What the enqueuer provides: a keyed, importable, picklable cell.

    ``fn`` is a module-level callable path (``"module:qualname"``, see
    :func:`repro.queue.worker.task_fn_path`) so any worker process can
    resolve it; ``payload`` is its single argument (pickled into the
    journal — workers on other hosts need the same code version, which
    the artifact cache already requires).
    """

    key: str
    fn: str
    payload: Any = None


@dataclass(frozen=True)
class Lease:
    """One claimed task: the worker's permit to run it until ``expires``."""

    key: str
    lease_id: str
    worker: str
    fn: str
    payload: Any
    attempt: int  # 0-based lease number for this task
    expires: float


@dataclass
class TaskView:
    """Mutable replay state of one task (internal; snapshots copy it)."""

    key: str
    fn: str
    payload_b64: str
    order: int
    status: str = PENDING
    claims: int = 0
    lease_id: str | None = None
    worker: str | None = None
    expires: float | None = None
    error_type: str = ""
    error_message: str = ""
    error_traceback: str = ""
    reclaims: int = 0

    @property
    def terminal(self) -> bool:
        return self.status in (DONE, QUARANTINED)


def _sanitize(key: str) -> str:
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
    return f"{safe[:120]}-{zlib.adler32(key.encode()):08x}"


class WorkQueue:
    """A durable work queue rooted at one directory on a shared filesystem.

    Layout::

        <directory>/journal.jsonl    the record of every transition
        <directory>/queue.lock       the mutation lock
        <directory>/results/*.pkl    atomically published task results

    Several :class:`WorkQueue` instances (across processes and hosts) may
    point at the same directory; each folds the journal independently and
    serializes mutations through the lock.
    """

    def __init__(
        self,
        directory: str | Path,
        clock: Clock | None = None,
        *,
        lease_seconds: float | None = None,
        max_leases: int = 3,
        lock_timeout: float | None = 60.0,
    ):
        if max_leases < 1:
            raise ValueError(f"max_leases must be >= 1, got {max_leases}")
        self.directory = Path(directory)
        self.clock = clock if clock is not None else WallClock()
        self.lease_seconds = resolve_lease_seconds(lease_seconds)
        self.max_leases = int(max_leases)
        self.journal = Journal(self.directory / JOURNAL_NAME)
        self._lock = FileLock(self.directory / "queue.lock", timeout=lock_timeout)
        self._tasks: dict[str, TaskView] = {}
        self._order = 0
        self._lease_seq = 0

    # ----------------------------------------------------------- folding
    def _apply(self, record: dict) -> None:
        op = record.get("op")
        key = record.get("task", "")
        if op == "add":
            if key not in self._tasks:
                self._tasks[key] = TaskView(
                    key=key,
                    fn=str(record.get("fn", "")),
                    payload_b64=str(record.get("payload", "")),
                    order=self._order,
                )
                self._order += 1
            return
        task = self._tasks.get(key)
        if task is None:
            return  # record for a task whose `add` was torn away
        if op == "claim":
            task.status = LEASED
            task.claims += 1
            task.lease_id = record.get("lease")
            task.worker = record.get("worker")
            task.expires = float(record.get("expires", 0.0))
        elif op == "renew":
            if task.status == LEASED and task.lease_id == record.get("lease"):
                task.expires = float(record.get("expires", 0.0))
        elif op == "done":
            if not task.terminal:
                task.status = DONE
                task.lease_id = None
                task.expires = None
        elif op == "fail":
            if task.status == LEASED and task.lease_id == record.get("lease"):
                task.status = PENDING
                task.lease_id = None
                task.expires = None
            task.error_type = str(record.get("error_type", ""))
            task.error_message = str(record.get("message", ""))
            task.error_traceback = str(record.get("traceback", ""))
        elif op == "reclaim":
            if task.status == LEASED and task.lease_id == record.get("lease"):
                task.status = PENDING
                task.lease_id = None
                task.expires = None
                task.reclaims += 1
        elif op == "quarantine":
            if not task.terminal:
                task.status = QUARANTINED
                task.lease_id = None
                task.expires = None
                if record.get("error_type"):
                    task.error_type = str(record.get("error_type", ""))
                    task.error_message = str(record.get("message", ""))
                    task.error_traceback = str(record.get("traceback", ""))

    def _refresh(self) -> None:
        for record in self.journal.read_new():
            self._apply(record)

    def _append(self, record: dict) -> None:
        record.setdefault("ts", self.clock.now())
        self.journal.append(record)
        self._apply(record)
        # Keep the reader offset in step so the next refresh does not
        # re-apply our own record (applying twice is harmless for every
        # op, but claim counts lease burns and must stay exact).
        self.journal.read_new()

    # ----------------------------------------------------------- enqueue
    def enqueue(self, tasks: Iterable[TaskSpec]) -> int:
        """Add tasks; keys already present (any state) are skipped.

        Idempotent by key, which is what makes a driver restart safe:
        re-enqueueing a half-finished grid re-adds nothing, and cells
        already ``done`` are served from the results directory.
        Returns the number of newly added tasks.
        """
        tasks = list(tasks)
        added = 0
        with self._lock:
            self._refresh()
            for spec in tasks:
                if spec.key in self._tasks:
                    continue
                payload = b64encode(
                    pickle.dumps(spec.payload, protocol=pickle.HIGHEST_PROTOCOL)
                ).decode("ascii")
                self._append(
                    {
                        "op": "add",
                        "task": spec.key,
                        "fn": spec.fn,
                        "payload": payload,
                    }
                )
                added += 1
        if added:
            observe.incr("queue.enqueued", value=added)
        return added

    # ------------------------------------------------------------- claim
    def claim(self, worker: str | None = None) -> Lease | None:
        """Claim the oldest pending task, or ``None`` when none is pending.

        The lease expires ``lease_seconds`` from now unless renewed; an
        expired lease is reclaimable by anyone driving
        :meth:`reclaim_expired`.
        """
        worker = worker or default_worker_id()
        with self._lock:
            self._refresh()
            candidates = [t for t in self._tasks.values() if t.status == PENDING]
            if not candidates:
                return None
            task = min(candidates, key=lambda t: t.order)
            self._lease_seq += 1
            lease_id = f"{worker}.{self._lease_seq}.{task.claims}"
            now = self.clock.now()
            expires = now + self.lease_seconds
            attempt = task.claims  # 0-based: claims not yet incremented
            self._append(
                {
                    "op": "claim",
                    "task": task.key,
                    "worker": worker,
                    "lease": lease_id,
                    "expires": expires,
                }
            )
        observe.incr("queue.claims")
        return Lease(
            key=task.key,
            lease_id=lease_id,
            worker=worker,
            fn=task.fn,
            payload=pickle.loads(b64decode(task.payload_b64)),
            attempt=attempt,
            expires=expires,
        )

    def renew(self, lease: Lease) -> float | None:
        """Heartbeat: extend the lease; ``None`` if it was lost.

        A lost lease (expired and reclaimed, or the task already finished
        elsewhere) is the signal that this worker's work may be
        duplicated; it can keep going safely (idempotent cells) but must
        expect its ``complete`` to be a no-op.
        """
        with self._lock:
            self._refresh()
            task = self._tasks.get(lease.key)
            if task is None or task.status != LEASED or task.lease_id != lease.lease_id:
                return None
            expires = self.clock.now() + self.lease_seconds
            self._append(
                {
                    "op": "renew",
                    "task": lease.key,
                    "lease": lease.lease_id,
                    "expires": expires,
                }
            )
        observe.incr("queue.renewals")
        return expires

    # ------------------------------------------------------- terminality
    def complete(self, lease: Lease, seconds: float | None = None) -> bool:
        """Mark the lease's task done.  Returns False if it already was.

        Accepted even from a stale lease — the artifact was atomically
        published before this call, so the work exists regardless of who
        holds the lease now (at-least-once; first ``done`` wins).
        """
        with self._lock:
            self._refresh()
            task = self._tasks.get(lease.key)
            if task is None or task.status == DONE:
                return False
            record = {
                "op": "done",
                "task": lease.key,
                "lease": lease.lease_id,
                "worker": lease.worker,
            }
            if seconds is not None:
                record["seconds"] = round(float(seconds), 6)
            if task.lease_id != lease.lease_id:
                record["late"] = True  # finished after reclaim: duplicate-safe
            self._append(record)
        observe.incr("queue.completions")
        observe.incr(f"queue.worker_tasks.{lease.worker}")
        if seconds is not None:
            observe.hist("queue.task_seconds", float(seconds))
        return True

    def fail(self, lease: Lease, exc: BaseException | tuple) -> str:
        """Record a task-function failure; returns the task's new status.

        ``exc`` is a live exception or an ``(error_type, message,
        traceback)`` triple.  The task returns to pending unless this
        burn was its last allowed lease, in which case it is quarantined.
        """
        if isinstance(exc, BaseException):
            error = (type(exc).__name__, str(exc), "")
        else:
            error = tuple(exc)
        error_type, message, tb = (list(error) + ["", "", ""])[:3]
        with self._lock:
            self._refresh()
            task = self._tasks.get(lease.key)
            if task is None or task.terminal:
                return task.status if task else QUARANTINED
            self._append(
                {
                    "op": "fail",
                    "task": lease.key,
                    "lease": lease.lease_id,
                    "worker": lease.worker,
                    "error_type": error_type,
                    "message": message,
                    "traceback": tb,
                }
            )
            status = self._maybe_quarantine(task)
        observe.incr("queue.failures")
        return status

    def _maybe_quarantine(self, task: TaskView) -> str:
        """Under the lock: quarantine a pending task out of lease budget."""
        if task.status == PENDING and task.claims >= self.max_leases:
            self._append(
                {
                    "op": "quarantine",
                    "task": task.key,
                    "leases": task.claims,
                    "error_type": task.error_type or "LeaseExpired",
                    "message": task.error_message
                    or (
                        f"burned {task.claims} leases without completing "
                        "(worker crash or lost host)"
                    ),
                    "traceback": task.error_traceback,
                }
            )
            observe.incr("queue.quarantines")
        return task.status

    def reclaim_expired(self) -> list[tuple[str, str]]:
        """Return expired leases to pending (or quarantine); anyone may call.

        Returns ``(key, new_status)`` per reclaimed task.  Driven by the
        executor's supervision loop and by idle workers, so a dead
        worker's cells resurface even if the original driver is gone.
        """
        reclaimed: list[tuple[str, str]] = []
        with self._lock:
            self._refresh()
            now = self.clock.now()
            for task in list(self._tasks.values()):
                if task.status != LEASED:
                    continue
                if task.expires is not None and task.expires <= now:
                    self._append(
                        {
                            "op": "reclaim",
                            "task": task.key,
                            "lease": task.lease_id,
                            "worker": task.worker,
                        }
                    )
                    status = self._maybe_quarantine(task)
                    reclaimed.append((task.key, status))
        if reclaimed:
            observe.incr("queue.reclaims", value=len(reclaimed))
        return reclaimed

    # ------------------------------------------------------------ results
    def result_path(self, key: str) -> Path:
        return self.directory / _RESULTS_DIR / f"{_sanitize(key)}.pkl"

    def publish_result(self, key: str, value: Any) -> Path:
        """Atomically publish a task's result (last writer wins; identical
        for idempotent cells, so duplicated execution is invisible)."""
        path = self.result_path(key)
        with atomic_write(path) as tmp:
            tmp.write_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        return path

    def load_result(self, key: str) -> Any:
        with open(self.result_path(key), "rb") as fh:
            return pickle.load(fh)

    def has_result(self, key: str) -> bool:
        return self.result_path(key).exists()

    # ----------------------------------------------------------- queries
    def refresh(self) -> None:
        """Catch this instance up with the journal (under the lock)."""
        with self._lock:
            self._refresh()

    def snapshot(self) -> dict[str, TaskView]:
        """A consistent view of every task (refreshed first)."""
        self.refresh()
        return dict(self._tasks)

    def counts(self) -> dict[str, int]:
        snap = self.snapshot().values()
        out = {PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0}
        for task in snap:
            out[task.status] += 1
        return out

    def outstanding(self) -> int:
        """Tasks not yet terminal (pending + leased)."""
        counts = self.counts()
        return counts[PENDING] + counts[LEASED]

    def drained(self) -> bool:
        return self.outstanding() == 0

    def total_claims(self) -> int:
        return sum(t.claims for t in self.snapshot().values())

    def failures(
        self, index_of: Callable[[str], int] | None = None
    ) -> list[CellFailure]:
        """Quarantined tasks as ``CellFailure`` records (manifest-ready)."""
        out = []
        for task in self.snapshot().values():
            if task.status != QUARANTINED:
                continue
            index = index_of(task.key) if index_of is not None else -1
            out.append(
                CellFailure(
                    key=task.key,
                    index=index,
                    kind=KIND_QUARANTINE,
                    error_type=task.error_type or "LeaseExpired",
                    message=task.error_message
                    or f"burned {task.claims} leases without completing",
                    attempts=task.claims,
                    remote_traceback=task.error_traceback,
                    retryable=True,
                )
            )
        return out
