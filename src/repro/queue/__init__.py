"""Durable, lease-based work queue for crash-safe multi-worker grids.

``repro.parallel`` fans a grid out across the worker processes of *one*
driver; if that driver dies, the run dies with it, and a second host has
no way to help.  This package makes the grid itself durable: every cell
becomes one idempotent task in an append-only JSONL **journal** on a
shared filesystem, and any number of workers — spawned by the driver,
started by hand (``python -m repro worker --queue <dir>``), or running
on another host — claim tasks via **leases** with heartbeat renewal.

- :mod:`repro.queue.journal` — the durable record store: atomic,
  fsync'd appends under the per-artifact file lock, torn-tail-tolerant
  replay, incremental catch-up reads;
- :mod:`repro.queue.core` — :class:`WorkQueue`, the lease state machine:
  ``pending → leased → done`` with ``fail``/``reclaim`` returning a task
  to pending until its lease budget is burned, after which it is
  **quarantined** as poison with a
  :class:`~repro.resilience.failures.CellFailure`-compatible record;
- :mod:`repro.queue.worker` — the claim → execute → heartbeat →
  complete loop behind ``python -m repro worker``;
- :mod:`repro.queue.executor` — :func:`queue_map`, the
  ``executor="queue"`` path of :func:`repro.parallel.parallel_map`:
  enqueue the cells, supervise local workers, reclaim stale leases, and
  return the same ``list`` / :class:`~repro.parallel.MapOutcome` shape
  the in-process pool produces.

Execution is **at-least-once**: a lease reclaimed from a slow-but-alive
worker can make two workers run one cell concurrently.  That is safe by
construction — every cell is idempotent and publishes through the
memo/artifact layer's per-artifact file locks and atomic, fsync'd
replaces, so duplicated work converges on identical artifacts and the
journal's first ``done`` wins.  Time only enters through the injectable
clock seam from :mod:`repro.serve.clock` (wall clock in production,
:class:`~repro.serve.clock.VirtualClock` in tests), so the whole lease
lifecycle is testable without a single wall sleep.
"""

from repro.queue.core import (
    LEASE_SECONDS_ENV,
    QUEUE_DIR_ENV,
    Lease,
    TaskSpec,
    TaskView,
    WorkQueue,
)
from repro.queue.executor import queue_map, resolve_queue_dir
from repro.queue.journal import Journal
from repro.queue.worker import WorkerReport, run_worker, task_fn_path

__all__ = [
    "Journal",
    "Lease",
    "LEASE_SECONDS_ENV",
    "QUEUE_DIR_ENV",
    "TaskSpec",
    "TaskView",
    "WorkQueue",
    "WorkerReport",
    "queue_map",
    "resolve_queue_dir",
    "run_worker",
    "task_fn_path",
]
