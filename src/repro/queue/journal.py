"""The queue's durable record store: an append-only JSONL journal.

Every queue transition — task added, lease claimed, heartbeat renewed,
task done, failed, reclaimed, quarantined — is one JSON line appended to
``journal.jsonl`` in the queue directory.  The journal is the *only*
source of truth: queue state is a pure fold over its records, so any
process (a worker on another host, a resumed driver, ``python -m repro
trace`` tooling) reconstructs the identical state by replaying it.

Durability discipline
---------------------
- Appends happen only while holding the queue's file lock (the caller's
  responsibility — :class:`repro.queue.core.WorkQueue` wraps every
  mutation), so records never interleave;
- each append writes the full line, flushes, and **fsyncs the file**;
  the first append also fsyncs the parent directory so the journal's
  *name* survives power loss (see ``repro.parallel.locks.fsync_dir``);
- a crash can still leave a torn final line (the write reached the page
  cache but not the full line).  Replay skips unparseable lines, and the
  next append **repairs** the tail first — if the file does not end in a
  newline, one is inserted so the new record never fuses with the torn
  bytes.

Readers keep a byte offset and only parse records appended since their
last look (:meth:`Journal.read_new`), so a queue with thousands of tasks
costs each heartbeat an O(new records) catch-up, not a full replay.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.parallel.locks import fsync_dir

JOURNAL_NAME = "journal.jsonl"


class Journal:
    """Append-only JSONL store with fsync'd writes and incremental reads.

    Not itself thread/process safe: callers serialize mutations under the
    queue lock.  Concurrent *readers* are always safe (appends are the
    only mutation and replay tolerates a torn tail).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._offset = 0  # bytes of the journal this reader has consumed
        self._tail = b""  # trailing partial line carried between reads

    # ------------------------------------------------------------- append
    def append(self, record: dict) -> None:
        """Durably append one record (one JSON line).

        Must be called under the queue lock.  The file is fsynced before
        returning, so an acknowledged record survives power loss; the
        directory entry is fsynced when the append creates the journal.
        """
        created = not self.path.exists()
        if created:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            # Tail repair: a previous writer may have died mid-append,
            # leaving bytes without a terminating newline.  Appending
            # directly would fuse this record onto the torn line and lose
            # both; a leading newline isolates the damage to the old one.
            size = os.fstat(fd).st_size
            payload = (line + "\n").encode("utf-8")
            if size > 0:
                with open(self.path, "rb") as fh:
                    fh.seek(size - 1)
                    if fh.read(1) != b"\n":
                        payload = b"\n" + payload
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        if created:
            fsync_dir(self.path.parent)

    # -------------------------------------------------------------- reads
    def read_new(self) -> list[dict]:
        """Records appended since this reader's last call (may be empty).

        Only complete, parseable lines are returned; a trailing partial
        line is buffered and retried on the next call (it may simply not
        be fully visible yet).  Unparseable *complete* lines — a torn
        write later repaired by :meth:`append` — are skipped.
        """
        if not self.path.exists():
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
        if not chunk:
            return []
        self._offset += len(chunk)
        data = self._tail + chunk
        lines = data.split(b"\n")
        self._tail = lines.pop()  # b"" when data ends in a newline
        records = []
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn line isolated by a later tail repair
            if isinstance(record, dict):
                records.append(record)
        return records

    def read_all(self) -> list[dict]:
        """All records from the start (independent of the reader offset)."""
        fresh = Journal(self.path)
        return fresh.read_new()
