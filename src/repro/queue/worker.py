"""The queue worker: claim → execute → heartbeat → publish → complete.

One worker is one process (or, under ``jobs=1``, an inline loop in the
driver) pointed at a queue directory.  Its loop:

1. reclaim any expired leases it can see (so a fleet of workers heals
   itself even when the driver that enqueued the grid is gone);
2. claim the oldest pending task; if none is pending, exit when the
   queue is drained, otherwise idle briefly and look again;
3. run the task function with a background **heartbeat** renewing the
   lease at a third of its duration, so a slow cell is distinguishable
   from a dead worker;
4. publish the result atomically, then mark the task done — in that
   order, so a crash between the two re-runs an idempotent cell rather
   than recording a ``done`` with no result.

A task function that raises records a ``fail`` (the queue re-pends or
quarantines it); a worker that dies records *nothing*, which is the
point — its lease expires and step 1 of any surviving worker reclaims
the task.  Chaos (:func:`repro.resilience.chaos.on_queue_task`) injects
exactly that death, SIGKILL mid-lease, to prove the claim.
"""

from __future__ import annotations

import importlib
import threading
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import observe
from repro.queue.core import Lease, WorkQueue, default_worker_id
from repro.resilience import chaos
from repro.serve.clock import Clock


def task_fn_path(fn: Callable) -> str:
    """``"module:qualname"`` for a queue-executable callable.

    The journal stores functions by import path so any worker process can
    resolve them; that rules out lambdas, closures, and methods — the
    same constraint ``multiprocessing`` spawn already imposes on pool
    workers, checked here eagerly with a round-trip import.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise ValueError(
            f"queue task functions must be module-level callables; "
            f"{fn!r} ({module}:{qualname or '?'}) cannot be imported by name"
        )
    path = f"{module}:{qualname}"
    if resolve_task_fn(path) is not fn:
        raise ValueError(
            f"{path} does not resolve back to {fn!r}; "
            "queue task functions must be importable module-level callables"
        )
    return path


def resolve_task_fn(path: str) -> Callable:
    """Import ``"module:qualname"`` back into a callable."""
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"bad task function path {path!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"{path} resolved to non-callable {obj!r}")
    return obj


class _Heartbeat:
    """Background lease renewal while a task runs (real-clock workers).

    Renews at a third of the lease duration so two consecutive misses
    still leave slack before expiry.  Virtual-clock runs skip the thread
    entirely — time there only moves when the test says so, making a
    renewal race impossible and the thread pure nondeterminism.
    """

    def __init__(self, queue: WorkQueue, lease: Lease):
        self.queue = queue
        self.lease = lease
        self.lost = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "_Heartbeat":
        if not self.queue.clock.virtual:
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _run(self) -> None:
        interval = max(self.queue.lease_seconds / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                if self.queue.renew(self.lease) is None:
                    # Lease lost (expired + reclaimed).  Keep computing —
                    # the cell is idempotent — but stop renewing a lease
                    # the journal no longer honours.
                    self.lost = True
                    observe.incr("queue.lost_leases")
                    return
            except Exception:
                # A transient lock/journal error must not kill the task
                # thread; the next beat (or lease expiry) sorts it out.
                continue


@dataclass
class WorkerReport:
    """What one worker-loop invocation did, for logs and tests."""

    worker: str
    completed: int = 0
    failed: int = 0
    reclaimed: int = 0
    duplicate: int = 0  # completions the journal rejected (someone beat us)
    keys: list[str] = field(default_factory=list)

    @property
    def tasks(self) -> int:
        return self.completed + self.failed


def run_worker(
    queue: WorkQueue | str | Path,
    *,
    worker_id: str | None = None,
    clock: Clock | None = None,
    max_tasks: int | None = None,
    idle_seconds: float = 0.0,
    poll_seconds: float = 0.2,
) -> WorkerReport:
    """Drain tasks from a queue until it is empty (or budgets run out).

    ``queue`` is a :class:`WorkQueue` or a queue directory.  The loop
    exits when every task is terminal; ``idle_seconds > 0`` additionally
    keeps the worker alive that long waiting for *new* work after a
    drain, which is how standing workers (``python -m repro worker
    --idle 30``) serve several grids back to back.  ``max_tasks`` bounds
    how many tasks this call may run (tests use it to interleave
    workers deterministically).
    """
    if not isinstance(queue, WorkQueue):
        queue = WorkQueue(queue, clock=clock)
    worker = worker_id or default_worker_id()
    report = WorkerReport(worker=worker)
    observe.event("queue.worker", worker=worker, directory=str(queue.directory))
    idle_since: float | None = None
    while True:
        if max_tasks is not None and report.tasks >= max_tasks:
            break
        report.reclaimed += len(queue.reclaim_expired())
        lease = queue.claim(worker=worker)
        if lease is None:
            if queue.drained():
                if idle_seconds <= 0:
                    break
                now = queue.clock.now()
                if idle_since is None:
                    idle_since = now
                elif now - idle_since >= idle_seconds:
                    break
            # Leased tasks are still in flight elsewhere (or new work may
            # arrive): wait for expiry/arrival instead of spinning.
            queue.clock.sleep(max(poll_seconds, 0.01))
            continue
        idle_since = None
        _run_one(queue, lease, report)
    return report


def _run_one(queue: WorkQueue, lease: Lease, report: WorkerReport) -> None:
    """Execute one leased task through heartbeat, publish, and complete."""
    started = queue.clock.now()
    try:
        # The worst moment to die: the lease is journaled and live, the
        # task not yet run.  Chaos SIGKILLs here to exercise reclamation.
        chaos.on_queue_task(lease.key, attempt=lease.attempt)
        if queue.has_result(lease.key):
            # A previous holder published but died before ``done`` (or its
            # ``done`` lost the race).  The artifact exists; re-running an
            # idempotent cell would only reproduce it byte for byte.
            value = queue.load_result(lease.key)
        else:
            fn = resolve_task_fn(lease.fn)
            with _Heartbeat(queue, lease):
                value = fn(lease.payload)
            queue.publish_result(lease.key, value)
    except BaseException as exc:  # noqa: BLE001 — every failure must journal
        status = queue.fail(
            lease, (type(exc).__name__, str(exc), traceback.format_exc())
        )
        report.failed += 1
        observe.event(
            "queue.task_failed",
            key=lease.key,
            worker=lease.worker,
            error=type(exc).__name__,
            status=status,
        )
        if not isinstance(exc, Exception):
            raise  # KeyboardInterrupt / SystemExit: record, then propagate
        return
    seconds = queue.clock.now() - started
    if queue.complete(lease, seconds=seconds):
        report.completed += 1
        report.keys.append(lease.key)
    else:
        report.duplicate += 1
        observe.incr("queue.duplicate_completions")
