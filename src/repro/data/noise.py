"""ℓ∞-bounded uniform input noise (Sections 4.1 and 5.2 of the paper).

The paper injects ``U(-eps, eps)`` noise into the *normalized* input, so the
helpers here operate on whatever representation the caller passes; the
evaluation code applies them after normalization.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng


def add_uniform_noise(
    x: np.ndarray,
    eps: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Return ``x + U(-eps, eps)`` noise of the same shape."""
    if eps < 0:
        raise ValueError(f"eps must be >= 0, got {eps}")
    if eps == 0:
        return x.copy()
    rng = as_rng(rng)
    return x + rng.uniform(-eps, eps, size=x.shape).astype(x.dtype)


def noise_sweep(eps_max: float = 0.5, n_levels: int = 6) -> np.ndarray:
    """Evenly spaced noise levels from 0 to ``eps_max`` (Fig. 1 x-axis)."""
    if n_levels < 2:
        raise ValueError(f"need at least 2 levels, got {n_levels}")
    return np.linspace(0.0, eps_max, n_levels)
