"""Data substrate: synthetic image tasks and distribution shifts.

The paper evaluates on CIFAR10 / ImageNet / Pascal VOC with the CIFAR10-C /
ImageNet-C / VOC-C corruption suites and the resampled CIFAR10.1 test set.
None of those are downloadable in this offline environment, so this package
provides procedurally generated stand-ins with the same *roles*:

- :mod:`repro.data.synthetic` — structured, learnable image classification
  and segmentation tasks, deterministic from a seed;
- :mod:`repro.data.corruptions` — a 16-corruption suite with 5 severity
  levels in the paper's four categories (noise / blur / weather / digital);
- :mod:`repro.data.shifted` — a mildly shifted resample (the CIFAR10.1 analog);
- :mod:`repro.data.noise` — ℓ∞-bounded uniform input noise;
- :mod:`repro.data.augmentation` — crop/flip and corruption-based robust
  training augmentation (Table 11 protocol).
"""

from repro.data.synthetic import (
    ClassificationTaskConfig,
    SegmentationTaskConfig,
    generate_classification,
    generate_segmentation,
)
from repro.data.datasets import Dataset, Normalizer, TaskSuite, cifar_like, imagenet_like, voc_like
from repro.data.corruptions import (
    CORRUPTION_CATEGORIES,
    available_corruptions,
    corrupt,
)
from repro.data.noise import add_uniform_noise
from repro.data.shifted import shifted_test_set
from repro.data.augmentation import CorruptionAugmenter, random_crop_flip
from repro.data.loaders import iterate_minibatches

__all__ = [
    "ClassificationTaskConfig",
    "SegmentationTaskConfig",
    "generate_classification",
    "generate_segmentation",
    "Dataset",
    "Normalizer",
    "TaskSuite",
    "cifar_like",
    "imagenet_like",
    "voc_like",
    "corrupt",
    "available_corruptions",
    "CORRUPTION_CATEGORIES",
    "add_uniform_noise",
    "shifted_test_set",
    "random_crop_flip",
    "CorruptionAugmenter",
    "iterate_minibatches",
]
